#include "pilot/unit_manager.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pilot/agent.hpp"

namespace entk::pilot {

UnitManager::UnitManager(ExecutionBackend& backend, std::string session)
    : backend_(backend),
      session_(std::move(session)),
      session_ordinal_(obs::session_ordinal(session_)),
      unit_uids_(session_.empty() ? "unit" : session_ + ".unit"),
      gate_(std::make_shared<CallbackGate>()) {
  if (!session_.empty()) {
    // Session-labelled counters in the shared registry.
    // entk-lint: allow(global-run-state)
    auto& metrics = obs::Metrics::instance();
    session_done_ = &metrics.counter("session." + session_ + ".units_done");
    session_failed_ =
        &metrics.counter("session." + session_ + ".units_failed");
    session_canceled_ =
        &metrics.counter("session." + session_ + ".units_canceled");
    session_submitted_ =
        &metrics.counter("session." + session_ + ".units_submitted");
    session_retried_ =
        &metrics.counter("session." + session_ + ".units_retried");
  }
}

UnitManager::~UnitManager() { gate_->close(); }

void UnitManager::add_pilot(PilotPtr pilot) {
  {
    MutexLock lock(mutex_);
    pilots_.push_back(pilot);
  }
  // Flush held units the moment the pilot comes up; recover stranded
  // units the moment it fails. The pilot outlives this manager (it is
  // owned by the shared PilotManager), so the callback is gated: after
  // this manager closes the gate, later pilot transitions no-op.
  std::shared_ptr<CallbackGate> gate = gate_;
  pilot->on_state_change(
      [this, gate](Pilot& changed, PilotState state) {
        if (!gate->enter()) return;
        if (state == PilotState::kActive) route_pending();
        if (state == PilotState::kFailed) recover_from_pilot(changed);
        gate->exit();
      });
  if (pilot->state() == PilotState::kActive) route_pending();
}

Result<std::vector<ComputeUnitPtr>> UnitManager::submit_units(
    std::vector<UnitDescription> descriptions) {
  std::vector<ComputeUnitPtr> units;
  units.reserve(descriptions.size());
  for (auto& description : descriptions) {
    ENTK_RETURN_IF_ERROR(description.validate());
    description.session = session_;
    auto unit = std::make_shared<ComputeUnit>(
        unit_uids_.next(), std::move(description), backend_.clock());
    unit->stamp_created();
    ENTK_TRACE_INSTANT_FLOW_S("unit.created", "unit", unit->trace_flow(),
                              0, session_ordinal_);
    ENTK_CHECK(unit->advance_state(UnitState::kPendingExecution).is_ok(),
               "fresh unit");
    std::shared_ptr<CallbackGate> gate = gate_;
    unit->on_state_change(
        [this, gate](ComputeUnit& changed, UnitState state) {
          if (!gate->enter()) return;
          handle_state_change(changed, state);
          gate->exit();
        });
    units.push_back(std::move(unit));
  }
  {
    MutexLock lock(mutex_);
    for (const auto& unit : units) {
      entries_.emplace(unit.get(), Entry{unit, false});
      unrouted_.push_back(unit);
      ++total_units_;
    }
  }
  // Aggregate metrics by design. entk-lint: allow(global-run-state)
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kUnitsSubmitted)
      .add(units.size());
  if (session_submitted_ != nullptr) session_submitted_->add(units.size());
  route_pending();
  return units;
}

// Routes every held unit to an active pilot, round-robin. Agent
// submission and state transitions happen outside the manager lock so
// their callbacks can re-enter the manager.
void UnitManager::route_pending() {
  struct Batch {
    Agent* agent;
    std::vector<ComputeUnitPtr> units;
  };
  std::vector<Batch> batches;
  std::vector<ComputeUnitPtr> oversized;
  {
    MutexLock lock(mutex_);
    std::vector<Pilot*> active;
    std::vector<Agent*> agents;
    for (const auto& pilot : pilots_) {
      if (pilot->state() == PilotState::kActive && pilot->agent()) {
        active.push_back(pilot.get());
        agents.push_back(pilot->agent());
      }
    }
    if (agents.empty()) return;
    std::unordered_map<Agent*, std::size_t> batch_of;
    while (!unrouted_.empty()) {
      ComputeUnitPtr unit = std::move(unrouted_.front());
      unrouted_.pop_front();
      // Find a pilot large enough, starting at the round-robin cursor.
      Agent* target = nullptr;
      for (std::size_t probe = 0; probe < agents.size(); ++probe) {
        Agent* candidate = agents[(next_pilot_ + probe) % agents.size()];
        if (unit->description().cores <= candidate->total_cores()) {
          target = candidate;
          next_pilot_ = (next_pilot_ + probe + 1) % agents.size();
          break;
        }
      }
      if (target == nullptr) {
        entries_[unit.get()].settled = true;
        oversized.push_back(std::move(unit));
        continue;
      }
      const auto [it, inserted] =
          batch_of.try_emplace(target, batches.size());
      if (inserted) batches.push_back({target, {}});
      batches[it->second].units.push_back(std::move(unit));
    }
  }
  for (auto& batch : batches) {
    const Status status = batch.agent->submit(std::move(batch.units));
    ENTK_CHECK(status.is_ok(),
               "agent rejected routed units: " + status.to_string());
  }
  for (const auto& unit : oversized) {
    (void)unit->advance_state(
        UnitState::kFailed,
        make_error(Errc::kResourceExhausted,
                   "unit " + unit->uid() + " needs " +
                       std::to_string(unit->description().cores) +
                       " cores; no pilot is large enough"));
  }
}

void UnitManager::handle_state_change(ComputeUnit& unit, UnitState state) {
  if (state == UnitState::kDone || state == UnitState::kCanceled) {
    settle_and_notify(unit, state);
    return;
  }
  if (state != UnitState::kFailed) return;

  const RetryPolicy& policy = unit.description().retry;
  ComputeUnitPtr retry;
  {
    MutexLock lock(mutex_);
    const auto it = entries_.find(&unit);
    if (it == entries_.end()) return;  // not managed here
    if (unit.retries() < policy.max_retries) retry = it->second.unit;
  }
  if (retry == nullptr) {  // retry budget exhausted: final failure
    settle_and_notify(unit, UnitState::kFailed);
    return;
  }
  // Reset before bumping the retry counter: observers treat "failed
  // with retries left" as not-settled, so the unit must never be
  // visible as (failed, retries == max) while a retry is coming.
  if (!unit.reset_for_retry().is_ok()) {
    settle_and_notify(unit, UnitState::kFailed);
    return;
  }
  unit.note_retry();
  // Aggregate metrics by design. entk-lint: allow(global-run-state)
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kUnitsRetried)
      .add();
  if (session_retried_ != nullptr) session_retried_->add();
  ENTK_TRACE_INSTANT_FLOW_S("unit.retry", "unit", unit.trace_flow(), 0,
                            session_ordinal_);
  Duration delay;
  {
    MutexLock lock(mutex_);
    ++total_retries_;
    const double draw =
        policy.jitter > 0.0 ? retry_rng_.uniform() : 0.5;
    delay = policy.delay_for(unit.retries(), draw);
  }
  ENTK_INFO("pilot.umgr") << unit.uid() << " retry " << unit.retries()
                          << "/" << policy.max_retries
                          << " (backoff " << delay << "s)";
  if (delay <= 0.0) {
    {
      MutexLock lock(mutex_);
      unrouted_.push_back(std::move(retry));
    }
    route_pending();
    return;
  }
  // Exponential backoff: hold the unit until the delay elapses, then
  // requeue it — unless something (cancellation, pilot recovery)
  // already moved it on.
  schedule_retry_requeue(std::move(retry), delay);
}

void UnitManager::schedule_retry_requeue(ComputeUnitPtr retry,
                                         Duration delay) {
  const ComputeUnit* key = retry.get();
  // The timer lives in the backend's engine, which outlives this
  // manager — gate the expiry so a timer firing after teardown no-ops.
  std::shared_ptr<CallbackGate> gate = gate_;
  const std::uint64_t token =
      backend_.schedule_after(delay, [this, gate, retry] {
        if (!gate->enter()) return;
        bool requeued = false;
        {
          MutexLock lock(mutex_);
          retry_timers_.erase(retry.get());
          const auto it = entries_.find(retry.get());
          if (it != entries_.end() && !it->second.settled &&
              retry->state() == UnitState::kPendingExecution) {
            unrouted_.push_back(retry);
            requeued = true;
          }
        }
        if (requeued) route_pending();
        gate->exit();
      });
  // Token 0 means the backend cannot introspect timers (local backend):
  // nothing to capture. The sim engine fires strictly later on this
  // thread, so tracking after the call cannot miss the event.
  if (token != 0) {
    MutexLock lock(mutex_);
    retry_timers_[key] = token;
  }
}

void UnitManager::settle_and_notify(ComputeUnit& unit, UnitState state) {
  ComputeUnitPtr settled;
  std::shared_ptr<const ObserverList> observers;
  {
    MutexLock lock(mutex_);
    const auto it = entries_.find(&unit);
    if (it == entries_.end()) return;  // not managed here
    it->second.settled = true;
    if (it->second.notified) return;  // already reported
    it->second.notified = true;
    settled = it->second.unit;
    // Snapshot by refcount, not by copy: the list is immutable (adds
    // and removes swap in a fresh one), so it stays valid — and any
    // observer registered mid-settle simply misses this unit, the same
    // race window the per-event copy had.
    observers = observers_;
  }
  // Aggregate metrics by design. entk-lint: allow(global-run-state)
  auto& metrics = obs::Metrics::instance();
  switch (state) {
    case UnitState::kDone:
      metrics.counter(obs::WellKnownCounter::kUnitsDone).add();
      break;
    case UnitState::kFailed:
      metrics.counter(obs::WellKnownCounter::kUnitsFailed).add();
      break;
    case UnitState::kCanceled:
      metrics.counter(obs::WellKnownCounter::kUnitsCanceled).add();
      break;
    default:
      break;
  }
  bump_session_counter(state);
  const Duration execution = settled->execution_time();
  if (execution > 0.0) {
    metrics.histogram(obs::WellKnownHistogram::kUnitExecutionSeconds)
        .observe(execution);
  }
  if (settled->submitted_at() != kNoTime &&
      settled->exec_started_at() != kNoTime) {
    metrics.histogram(obs::WellKnownHistogram::kUnitQueueWaitSeconds)
        .observe(settled->exec_started_at() - settled->submitted_at());
  }
  // Outside the lock: observers may re-enter the manager.
  if (observers == nullptr) return;
  for (const auto& [token, observer] : *observers) {
    observer(settled, state);
  }
}

void UnitManager::bump_session_counter(UnitState state) {
  switch (state) {
    case UnitState::kDone:
      if (session_done_ != nullptr) session_done_->add();
      break;
    case UnitState::kFailed:
      if (session_failed_ != nullptr) session_failed_->add();
      break;
    case UnitState::kCanceled:
      if (session_canceled_ != nullptr) session_canceled_->add();
      break;
    default:
      break;
  }
}

std::size_t UnitManager::add_settled_observer(SettledObserver observer) {
  ENTK_CHECK(static_cast<bool>(observer), "null settled observer");
  MutexLock lock(mutex_);
  const std::size_t token = next_observer_token_++;
  auto next = observers_ == nullptr
                  ? std::make_shared<ObserverList>()
                  : std::make_shared<ObserverList>(*observers_);
  next->emplace_back(token, std::move(observer));
  observers_ = std::move(next);
  return token;
}

void UnitManager::remove_settled_observer(std::size_t token) {
  MutexLock lock(mutex_);
  if (observers_ == nullptr) return;
  auto next = std::make_shared<ObserverList>(*observers_);
  next->erase(std::remove_if(next->begin(), next->end(),
                             [token](const auto& entry) {
                               return entry.first == token;
                             }),
              next->end());
  observers_ = std::move(next);
}

void UnitManager::recover_from_pilot(Pilot& pilot) {
  Agent* agent = pilot.agent();
  if (agent == nullptr) return;
  std::vector<ComputeUnitPtr> stranded = agent->evict_inflight();
  if (stranded.empty()) return;
  std::size_t requeued = 0;
  {
    MutexLock lock(mutex_);
    for (auto& unit : stranded) {
      const auto it = entries_.find(unit.get());
      if (it == entries_.end() || it->second.settled) continue;
      unrouted_.push_back(std::move(unit));
      ++requeued;
    }
    recovered_units_ += requeued;
  }
  // Aggregate metrics by design. entk-lint: allow(global-run-state)
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kUnitsRecovered)
      .add(requeued);
  ENTK_INFO("pilot.umgr") << "pilot " << pilot.uid() << " failed; "
                          << requeued << " unit(s) requeued";
  // Surviving pilots pick the units up now; otherwise they wait for a
  // replacement pilot (late binding).
  route_pending();
}

Status UnitManager::cancel_unit(const ComputeUnitPtr& unit) {
  ENTK_CHECK(unit != nullptr, "cannot cancel a null unit");
  std::vector<Agent*> agents;
  {
    MutexLock lock(mutex_);
    const auto held =
        std::find(unrouted_.begin(), unrouted_.end(), unit);
    if (held != unrouted_.end()) {
      unrouted_.erase(held);
      entries_[unit.get()].settled = true;
    } else {
      for (const auto& pilot : pilots_) {
        if (pilot->agent() != nullptr) agents.push_back(pilot->agent());
      }
    }
  }
  if (agents.empty()) {
    // Was unrouted: finalize outside the lock.
    return unit->advance_state(UnitState::kCanceled);
  }
  for (Agent* agent : agents) {
    const Status status = agent->cancel_unit(unit);
    if (status.is_ok() || status.code() == Errc::kFailedPrecondition) {
      return status;  // cancelled, or found-but-unkillable
    }
  }
  return make_error(Errc::kNotFound,
                    "unit " + unit->uid() + " is not active anywhere");
}

Status UnitManager::drain(Duration timeout) {
  std::vector<ComputeUnitPtr> open;
  {
    MutexLock lock(mutex_);
    for (const auto& [key, entry] : entries_) {
      if (!entry.settled) open.push_back(entry.unit);
    }
  }
  if (open.empty()) return Status::ok();
  // entries_ iteration order is unordered; cancel in uid order so
  // teardown is deterministic.
  std::sort(open.begin(), open.end(),
            [](const ComputeUnitPtr& a, const ComputeUnitPtr& b) {
              return a->uid() < b->uid();
            });
  for (const ComputeUnitPtr& unit : open) {
    const Status cancelled = cancel_unit(unit);
    if (cancelled.is_ok() ||
        cancelled.code() == Errc::kFailedPrecondition) {
      // Cancelled, or found-but-unkillable: wait_units rides it out.
      continue;
    }
    // kNotFound: held by nothing — the unit sits in a retry backoff
    // whose timer would requeue it. Settle it directly; the stale
    // timer no-ops against the settled entry.
    bool was_held = false;
    {
      MutexLock lock(mutex_);
      const auto it = entries_.find(unit.get());
      if (it != entries_.end() && !it->second.settled) {
        it->second.settled = true;
        retry_timers_.erase(unit.get());
        was_held = true;
      }
    }
    if (was_held) (void)unit->advance_state(UnitState::kCanceled);
  }
  return wait_units(open, timeout);
}

Status UnitManager::wait_units(const std::vector<ComputeUnitPtr>& units,
                               Duration timeout) {
  // Plain loop, not std::all_of: thread-safety analysis treats a
  // nested lambda as a separate function that does not hold mutex_.
  return backend_.drive_until(
      [&] {
        MutexLock lock(mutex_);
        for (const ComputeUnitPtr& unit : units) {
          if (!settled_locked(*unit)) return false;
        }
        return true;
      },
      timeout);
}

bool UnitManager::settled_locked(const ComputeUnit& unit) const {
  const auto it = entries_.find(&unit);
  if (it == entries_.end()) return is_final(unit.state());
  return it->second.settled;
}

std::size_t UnitManager::total_units() const {
  MutexLock lock(mutex_);
  return total_units_;
}

std::size_t UnitManager::inflight_units() const {
  MutexLock lock(mutex_);
  std::size_t count = 0;
  for (const auto& [pointer, entry] : entries_) {
    if (!entry.settled) ++count;
  }
  return count;
}

std::size_t UnitManager::total_retries() const {
  MutexLock lock(mutex_);
  return total_retries_;
}

std::size_t UnitManager::recovered_units() const {
  MutexLock lock(mutex_);
  return recovered_units_;
}

void UnitManager::seed_retry_jitter(std::uint64_t seed) {
  MutexLock lock(mutex_);
  retry_rng_ = Xoshiro256(seed);
}

UnitManager::SavedState UnitManager::save_state() const {
  MutexLock lock(mutex_);
  SavedState saved;
  saved.next_pilot = next_pilot_;
  for (const auto& unit : unrouted_) saved.unrouted.push_back(unit->uid());
  saved.total_units = total_units_;
  saved.total_retries = total_retries_;
  saved.recovered_units = recovered_units_;
  saved.retry_rng = retry_rng_.save_state();
  return saved;
}

void UnitManager::restore_state(const SavedState& saved,
                                const UnitResolver& resolve) {
  MutexLock lock(mutex_);
  next_pilot_ = saved.next_pilot;
  total_units_ = saved.total_units;
  total_retries_ = saved.total_retries;
  recovered_units_ = saved.recovered_units;
  retry_rng_.restore_state(saved.retry_rng);
  unrouted_.clear();
  for (const auto& uid : saved.unrouted) {
    ComputeUnitPtr unit = resolve(uid);
    ENTK_CHECK(unit != nullptr, "checkpoint names unknown unit " + uid);
    unrouted_.push_back(std::move(unit));
  }
}

void UnitManager::restore_unit(const ComputeUnitPtr& unit, bool settled,
                               bool notified) {
  ENTK_CHECK(unit != nullptr, "cannot restore a null unit");
  {
    MutexLock lock(mutex_);
    entries_.emplace(unit.get(), Entry{unit, settled, notified});
  }
  // Settled units refuse the callback (they can never transition
  // again); everything else re-enters the normal retry/settle flow.
  std::shared_ptr<CallbackGate> gate = gate_;
  unit->on_state_change(
      [this, gate](ComputeUnit& changed, UnitState state) {
        if (!gate->enter()) return;
        handle_state_change(changed, state);
        gate->exit();
      });
}

bool UnitManager::unit_entry(const ComputeUnit* unit, bool& settled,
                             bool& notified) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(unit);
  if (it == entries_.end()) return false;
  settled = it->second.settled;
  notified = it->second.notified;
  return true;
}

std::vector<std::pair<ComputeUnitPtr, std::uint64_t>>
UnitManager::pending_retries() const {
  std::vector<std::pair<ComputeUnitPtr, std::uint64_t>> out;
  {
    MutexLock lock(mutex_);
    out.reserve(retry_timers_.size());
    for (const auto& [key, token] : retry_timers_) {
      const auto it = entries_.find(key);
      if (it == entries_.end()) continue;
      out.emplace_back(it->second.unit, token);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              return a.first->uid() < b.first->uid();
            });
  return out;
}

void UnitManager::repost_retry(const ComputeUnitPtr& unit, Duration delay) {
  schedule_retry_requeue(unit, delay);
}

}  // namespace entk::pilot
