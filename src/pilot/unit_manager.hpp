// UnitManager: accepts compute-unit descriptions, routes them to pilot
// agents, tracks completion and drives automatic retries (the RP
// UnitManager analogue).
//
// Units submitted before any pilot is active are held and flushed the
// moment a pilot comes up — this is the late binding that lets an
// application describe more work than the resources instantaneously
// available. The same late binding powers fault tolerance: a failed
// unit with retry budget left is resubmitted after its RetryPolicy's
// backoff delay, and when a pilot fails (walltime expiry, container
// loss) its in-flight units are evicted, rewound to kPendingExecution
// and requeued onto surviving — or later-arriving replacement —
// pilots, without burning retry budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/uid.hpp"
#include "pilot/backend.hpp"
#include "pilot/pilot.hpp"

namespace entk::obs {
class Counter;
}  // namespace entk::obs

namespace entk::pilot {

/// Rundown protection for callbacks whose registrant may die first.
///
/// The UnitManager registers callbacks with objects it does not own:
/// pilots live on in the shared PilotManager after a session is torn
/// down, and retry-backoff timers live in the backend's engine. Each
/// such callback captures a shared_ptr to its manager's gate and brackets
/// its body with enter()/exit(); the manager's destructor close()s the
/// gate, which flips new entries to no-ops and blocks until every
/// in-flight body has exited. After close() returns, the manager can be
/// destroyed: no callback can touch it again.
///
/// enter/exit are two relaxed-ish atomics on the hot path; the mutex +
/// condvar are touched only during close. Entries count nesting, not
/// threads, so callbacks that re-enter the manager stay cheap.
class CallbackGate {
 public:
  /// Returns false (after undoing its entry) when the gate is closed;
  /// the caller must return without touching the manager.
  bool enter() {
    active_.fetch_add(1, std::memory_order_acquire);
    if (closed_.load(std::memory_order_acquire)) {
      exit();
      return false;
    }
    return true;
  }

  void exit() {
    if (active_.fetch_sub(1, std::memory_order_release) == 1 &&
        closed_.load(std::memory_order_acquire)) {
      MutexLock lock(mutex_);
      drained_.notify_all();
    }
  }

  /// Closes the gate and blocks until every in-flight callback body has
  /// exited. Idempotent; must not be called from inside a callback.
  void close() ENTK_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_.store(true, std::memory_order_release);
    while (active_.load(std::memory_order_acquire) != 0) {
      drained_.wait(mutex_);
    }
  }

 private:
  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> active_{0};
  Mutex mutex_{LockRank::kCallbackGate};
  CondVar drained_;
};

class UnitManager {
 public:
  /// `session` scopes the manager to one named session: unit uids draw
  /// from the "<session>.unit" counter family, submitted descriptions
  /// are stamped with the session, and settle tallies feed
  /// per-session metrics. The empty name keeps the legacy process-wide
  /// "unit" family.
  explicit UnitManager(ExecutionBackend& backend,
                       std::string session = "");

  /// Closes the callback gate: blocks until in-flight pilot/unit/timer
  /// callbacks drain, then detaches this manager from all of them.
  ~UnitManager();

  UnitManager(const UnitManager&) = delete;
  UnitManager& operator=(const UnitManager&) = delete;

  /// Owning session name; "" for legacy unnamed managers.
  const std::string& session() const { return session_; }
  /// Trace ordinal of the owning session (0 = unnamed).
  std::uint32_t session_ordinal() const { return session_ordinal_; }

  /// Registers a pilot as an execution target. Units are distributed
  /// round-robin over active pilots.
  void add_pilot(PilotPtr pilot);

  /// Creates units from descriptions and routes them. Returned units
  /// are kPendingExecution (or already kFailed if oversized).
  Result<std::vector<ComputeUnitPtr>> submit_units(
      std::vector<UnitDescription> descriptions);

  /// Drives the backend until every given unit is settled: done,
  /// cancelled, or failed with retries exhausted.
  Status wait_units(const std::vector<ComputeUnitPtr>& units,
                    Duration timeout = kTimeInfinity);

  /// Cancels every unsettled unit this manager holds — unrouted, in
  /// retry backoff, waiting in an agent, or (sim) executing — and
  /// drives the backend until all of them settle. Units the backend
  /// cannot kill (local executing) are waited out. Teardown path: a
  /// session destroyed with units in flight drains here instead of
  /// racing agent callbacks against destruction.
  Status drain(Duration timeout = kTimeInfinity) ENTK_EXCLUDES(mutex_);

  /// Kills one unit (the paper's kill/replace adaptivity): cancels it
  /// wherever it currently lives — held by this manager, waiting in an
  /// agent, or (simulated backend only) executing. See
  /// Agent::cancel_unit for backend-specific limits.
  Status cancel_unit(const ComputeUnitPtr& unit);

  /// Number of units handed to this manager over its lifetime.
  std::size_t total_units() const ENTK_EXCLUDES(mutex_);
  /// Units not yet settled.
  std::size_t inflight_units() const ENTK_EXCLUDES(mutex_);
  /// Retries performed so far (every resubmission after a failure).
  std::size_t total_retries() const ENTK_EXCLUDES(mutex_);
  /// Units requeued off failed pilots (pilot-loss recovery).
  std::size_t recovered_units() const ENTK_EXCLUDES(mutex_);

  /// Seeds the jitter stream retry backoff draws from (determinism
  /// hook for tests; the default seed is fixed anyway).
  void seed_retry_jitter(std::uint64_t seed) ENTK_EXCLUDES(mutex_);

  /// Fired exactly once per managed unit when it settles: done,
  /// cancelled, or failed with retries exhausted. A kFailed state with
  /// retry budget left never reaches observers — the retry is internal.
  /// Observers run outside the manager lock and may re-enter the
  /// manager (submit more units, cancel, ...).
  using SettledObserver = std::function<void(const ComputeUnitPtr&,
                                             UnitState)>;
  /// Registers an observer; returns a token for removal.
  std::size_t add_settled_observer(SettledObserver observer)
      ENTK_EXCLUDES(mutex_);
  void remove_settled_observer(std::size_t token) ENTK_EXCLUDES(mutex_);

  ExecutionBackend& backend() { return backend_; }

  // --- checkpoint/restart (ckpt::Coordinator only) ---
  struct SavedState {
    std::size_t next_pilot = 0;
    std::vector<std::string> unrouted;  ///< uids in queue order
    std::size_t total_units = 0;
    std::size_t total_retries = 0;
    std::size_t recovered_units = 0;
    Xoshiro256::State retry_rng;
  };
  using UnitResolver = std::function<ComputeUnitPtr(const std::string&)>;
  SavedState save_state() const ENTK_EXCLUDES(mutex_);
  /// Injects counters/cursors and rebuilds the unrouted queue. Call
  /// after every unit has been re-registered via restore_unit().
  void restore_state(const SavedState& saved, const UnitResolver& resolve)
      ENTK_EXCLUDES(mutex_);
  /// Registers a restored unit (entry bookkeeping + state-change
  /// wiring) without counting it as a new submission.
  void restore_unit(const ComputeUnitPtr& unit, bool settled,
                    bool notified) ENTK_EXCLUDES(mutex_);
  /// Entry flags for one managed unit; false when not managed here.
  bool unit_entry(const ComputeUnit* unit, bool& settled,
                  bool& notified) const ENTK_EXCLUDES(mutex_);
  /// Pending retry-backoff timers with their backend timer tokens
  /// (sim EventIds), sorted by unit uid for determinism.
  std::vector<std::pair<ComputeUnitPtr, std::uint64_t>> pending_retries()
      const ENTK_EXCLUDES(mutex_);
  /// Re-schedules a captured retry-backoff requeue after `delay`.
  void repost_retry(const ComputeUnitPtr& unit, Duration delay)
      ENTK_EXCLUDES(mutex_);

 private:
  bool settled_locked(const ComputeUnit& unit) const ENTK_REQUIRES(mutex_);
  /// Routes every held unit to an active pilot (takes the lock itself;
  /// agent submission happens outside it so callbacks can re-enter).
  void route_pending() ENTK_EXCLUDES(mutex_);
  void handle_state_change(ComputeUnit& unit, UnitState state)
      ENTK_EXCLUDES(mutex_);
  /// Marks the unit settled and fires the settled observers (outside
  /// the lock, at most once per unit). Every settle path — completion,
  /// cancellation, final failure, oversized rejection — funnels here.
  void settle_and_notify(ComputeUnit& unit, UnitState state)
      ENTK_EXCLUDES(mutex_);
  /// Evicts and requeues the units stranded on a failed pilot.
  void recover_from_pilot(Pilot& pilot) ENTK_EXCLUDES(mutex_);
  /// Schedules the backoff-expiry requeue for a retrying unit and
  /// tracks its timer token for checkpoint capture.
  void schedule_retry_requeue(ComputeUnitPtr retry, Duration delay)
      ENTK_EXCLUDES(mutex_);

  /// Bumps the per-session settle counter for `state` (named sessions
  /// only; the process-wide well-known counters are always bumped).
  void bump_session_counter(UnitState state);

  ExecutionBackend& backend_;
  const std::string session_;
  const std::uint32_t session_ordinal_;
  /// Interned handle: unit creation takes one relaxed atomic increment
  /// per uid instead of a global map lookup under a mutex. Per-manager
  /// so each session draws from its own counter family.
  const UidSource unit_uids_;
  /// Shared with every callback this manager registers on pilots,
  /// units and backend timers; closed (and drained) on destruction.
  const std::shared_ptr<CallbackGate> gate_;
  /// Per-session dynamic metric counters; nullptr for unnamed
  /// managers. Resolved once — obs::Metrics map nodes are stable.
  obs::Counter* session_done_ = nullptr;
  obs::Counter* session_failed_ = nullptr;
  obs::Counter* session_canceled_ = nullptr;
  obs::Counter* session_submitted_ = nullptr;
  obs::Counter* session_retried_ = nullptr;

  struct Entry {
    ComputeUnitPtr unit;
    bool settled = false;
    bool notified = false;  ///< Settled observers already fired.
  };

  mutable Mutex mutex_{LockRank::kUnitManager};
  std::vector<PilotPtr> pilots_ ENTK_GUARDED_BY(mutex_);
  std::size_t next_pilot_ ENTK_GUARDED_BY(mutex_) = 0;  // round-robin cursor
  std::deque<ComputeUnitPtr> unrouted_ ENTK_GUARDED_BY(mutex_);
  std::unordered_map<const ComputeUnit*, Entry> entries_
      ENTK_GUARDED_BY(mutex_);
  std::size_t total_units_ ENTK_GUARDED_BY(mutex_) = 0;
  std::size_t total_retries_ ENTK_GUARDED_BY(mutex_) = 0;
  std::size_t recovered_units_ ENTK_GUARDED_BY(mutex_) = 0;
  /// Immutable snapshot, rebuilt only when an observer is added or
  /// removed; settle_and_notify grabs the shared_ptr under the lock
  /// (one refcount bump) instead of copying the vector per settled
  /// unit — at 100k units that copy dominated the settle path.
  using ObserverList = std::vector<std::pair<std::size_t, SettledObserver>>;
  std::shared_ptr<const ObserverList> observers_ ENTK_GUARDED_BY(mutex_);
  std::size_t next_observer_token_ ENTK_GUARDED_BY(mutex_) = 0;
  Xoshiro256 retry_rng_ ENTK_GUARDED_BY(mutex_){0x7e7c1ULL};
  /// Backend timer tokens of in-flight retry backoffs (checkpointing);
  /// entries are dropped when the timer fires, stale tokens are
  /// filtered against the engine at capture time.
  std::unordered_map<const ComputeUnit*, std::uint64_t> retry_timers_
      ENTK_GUARDED_BY(mutex_);
};

}  // namespace entk::pilot
