// UnitManager: accepts compute-unit descriptions, routes them to pilot
// agents, tracks completion and drives automatic retries (the RP
// UnitManager analogue).
//
// Units submitted before any pilot is active are held and flushed the
// moment a pilot comes up — this is the late binding that lets an
// application describe more work than the resources instantaneously
// available.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "pilot/backend.hpp"
#include "pilot/pilot.hpp"

namespace entk::pilot {

class UnitManager {
 public:
  explicit UnitManager(ExecutionBackend& backend);

  /// Registers a pilot as an execution target. Units are distributed
  /// round-robin over active pilots.
  void add_pilot(PilotPtr pilot);

  /// Creates units from descriptions and routes them. Returned units
  /// are kPendingExecution (or already kFailed if oversized).
  Result<std::vector<ComputeUnitPtr>> submit_units(
      std::vector<UnitDescription> descriptions);

  /// Drives the backend until every given unit is settled: done,
  /// cancelled, or failed with retries exhausted.
  Status wait_units(const std::vector<ComputeUnitPtr>& units,
                    Duration timeout = kTimeInfinity);

  /// Kills one unit (the paper's kill/replace adaptivity): cancels it
  /// wherever it currently lives — held by this manager, waiting in an
  /// agent, or (simulated backend only) executing. See
  /// Agent::cancel_unit for backend-specific limits.
  Status cancel_unit(const ComputeUnitPtr& unit);

  /// Number of units handed to this manager over its lifetime.
  std::size_t total_units() const ENTK_EXCLUDES(mutex_);
  /// Units not yet settled.
  std::size_t inflight_units() const ENTK_EXCLUDES(mutex_);

  ExecutionBackend& backend() { return backend_; }

 private:
  bool settled_locked(const ComputeUnit& unit) const ENTK_REQUIRES(mutex_);
  /// Routes every held unit to an active pilot (takes the lock itself;
  /// agent submission happens outside it so callbacks can re-enter).
  void route_pending() ENTK_EXCLUDES(mutex_);
  void handle_state_change(ComputeUnit& unit, UnitState state)
      ENTK_EXCLUDES(mutex_);

  ExecutionBackend& backend_;

  struct Entry {
    ComputeUnitPtr unit;
    bool settled = false;
  };

  mutable Mutex mutex_;
  std::vector<PilotPtr> pilots_ ENTK_GUARDED_BY(mutex_);
  std::size_t next_pilot_ ENTK_GUARDED_BY(mutex_) = 0;  // round-robin cursor
  std::deque<ComputeUnitPtr> unrouted_ ENTK_GUARDED_BY(mutex_);
  std::unordered_map<const ComputeUnit*, Entry> entries_
      ENTK_GUARDED_BY(mutex_);
  std::size_t total_units_ ENTK_GUARDED_BY(mutex_) = 0;
};

}  // namespace entk::pilot
