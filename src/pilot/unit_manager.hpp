// UnitManager: accepts compute-unit descriptions, routes them to pilot
// agents, tracks completion and drives automatic retries (the RP
// UnitManager analogue).
//
// Units submitted before any pilot is active are held and flushed the
// moment a pilot comes up — this is the late binding that lets an
// application describe more work than the resources instantaneously
// available. The same late binding powers fault tolerance: a failed
// unit with retry budget left is resubmitted after its RetryPolicy's
// backoff delay, and when a pilot fails (walltime expiry, container
// loss) its in-flight units are evicted, rewound to kPendingExecution
// and requeued onto surviving — or later-arriving replacement —
// pilots, without burning retry budget.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "pilot/backend.hpp"
#include "pilot/pilot.hpp"

namespace entk::pilot {

class UnitManager {
 public:
  explicit UnitManager(ExecutionBackend& backend);

  /// Registers a pilot as an execution target. Units are distributed
  /// round-robin over active pilots.
  void add_pilot(PilotPtr pilot);

  /// Creates units from descriptions and routes them. Returned units
  /// are kPendingExecution (or already kFailed if oversized).
  Result<std::vector<ComputeUnitPtr>> submit_units(
      std::vector<UnitDescription> descriptions);

  /// Drives the backend until every given unit is settled: done,
  /// cancelled, or failed with retries exhausted.
  Status wait_units(const std::vector<ComputeUnitPtr>& units,
                    Duration timeout = kTimeInfinity);

  /// Kills one unit (the paper's kill/replace adaptivity): cancels it
  /// wherever it currently lives — held by this manager, waiting in an
  /// agent, or (simulated backend only) executing. See
  /// Agent::cancel_unit for backend-specific limits.
  Status cancel_unit(const ComputeUnitPtr& unit);

  /// Number of units handed to this manager over its lifetime.
  std::size_t total_units() const ENTK_EXCLUDES(mutex_);
  /// Units not yet settled.
  std::size_t inflight_units() const ENTK_EXCLUDES(mutex_);
  /// Retries performed so far (every resubmission after a failure).
  std::size_t total_retries() const ENTK_EXCLUDES(mutex_);
  /// Units requeued off failed pilots (pilot-loss recovery).
  std::size_t recovered_units() const ENTK_EXCLUDES(mutex_);

  /// Seeds the jitter stream retry backoff draws from (determinism
  /// hook for tests; the default seed is fixed anyway).
  void seed_retry_jitter(std::uint64_t seed) ENTK_EXCLUDES(mutex_);

  ExecutionBackend& backend() { return backend_; }

 private:
  bool settled_locked(const ComputeUnit& unit) const ENTK_REQUIRES(mutex_);
  /// Routes every held unit to an active pilot (takes the lock itself;
  /// agent submission happens outside it so callbacks can re-enter).
  void route_pending() ENTK_EXCLUDES(mutex_);
  void handle_state_change(ComputeUnit& unit, UnitState state)
      ENTK_EXCLUDES(mutex_);
  /// Evicts and requeues the units stranded on a failed pilot.
  void recover_from_pilot(Pilot& pilot) ENTK_EXCLUDES(mutex_);

  ExecutionBackend& backend_;

  struct Entry {
    ComputeUnitPtr unit;
    bool settled = false;
  };

  mutable Mutex mutex_;
  std::vector<PilotPtr> pilots_ ENTK_GUARDED_BY(mutex_);
  std::size_t next_pilot_ ENTK_GUARDED_BY(mutex_) = 0;  // round-robin cursor
  std::deque<ComputeUnitPtr> unrouted_ ENTK_GUARDED_BY(mutex_);
  std::unordered_map<const ComputeUnit*, Entry> entries_
      ENTK_GUARDED_BY(mutex_);
  std::size_t total_units_ ENTK_GUARDED_BY(mutex_) = 0;
  std::size_t total_retries_ ENTK_GUARDED_BY(mutex_) = 0;
  std::size_t recovered_units_ ENTK_GUARDED_BY(mutex_) = 0;
  Xoshiro256 retry_rng_ ENTK_GUARDED_BY(mutex_){0x7e7c1ULL};
};

}  // namespace entk::pilot
