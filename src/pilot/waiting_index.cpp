#include "pilot/waiting_index.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace entk::pilot {

void WaitingIndex::push(ComputeUnitPtr unit) {
  ENTK_CHECK(unit != nullptr, "cannot index a null unit");
  const Count cores = unit->description().cores;
  const ComputeUnit* key = unit.get();
  ENTK_CHECK(bucket_of_.emplace(key, cores).second,
             "unit " + unit->uid() + " is already waiting");
  ++waiting_by_session_[unit->description().session];
  buckets_[cores].push_back({next_seq_++, std::move(unit)});
  ++size_;
}

bool WaitingIndex::erase(const ComputeUnit* unit) {
  const auto where = bucket_of_.find(unit);
  if (where == bucket_of_.end()) return false;
  const auto it = buckets_.find(where->second);
  ENTK_CHECK(it != buckets_.end(), "waiting index out of sync");
  Bucket& bucket = it->second;
  const auto entry =
      std::find_if(bucket.begin(), bucket.end(),
                   [unit](const Picked& p) { return p.unit.get() == unit; });
  ENTK_CHECK(entry != bucket.end(), "waiting index out of sync");
  note_left(*entry->unit, /*picked=*/false);
  bucket.erase(entry);
  if (bucket.empty()) buckets_.erase(it);
  bucket_of_.erase(where);
  --size_;
  return true;
}

const ComputeUnitPtr* WaitingIndex::fifo_head() const {
  const Picked* head = nullptr;
  for (const auto& [cores, bucket] : buckets_) {
    const Picked& front = bucket.front();
    if (head == nullptr || front.seq < head->seq) head = &front;
  }
  return head == nullptr ? nullptr : &head->unit;
}

WaitingIndex::Picked WaitingIndex::pop_fifo_head() {
  ENTK_CHECK(!empty(), "pop from an empty waiting index");
  auto best = buckets_.end();
  for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
    if (best == buckets_.end() ||
        it->second.front().seq < best->second.front().seq) {
      best = it;
    }
  }
  Picked out;
  pop_from(best, out);
  return out;
}

bool WaitingIndex::pop_earliest_fitting(Count budget, Picked& out) {
  const auto end = buckets_.upper_bound(budget);
  auto best = end;
  for (auto it = buckets_.begin(); it != end; ++it) {
    if (best == end || it->second.front().seq < best->second.front().seq) {
      best = it;
    }
  }
  if (best == end) return false;
  pop_from(best, out);
  return true;
}

bool WaitingIndex::pop_largest_fitting(Count budget, Picked& out) {
  auto it = buckets_.upper_bound(budget);
  if (it == buckets_.begin()) return false;
  --it;
  pop_from(it, out);
  return true;
}

std::vector<ComputeUnitPtr> WaitingIndex::drain() {
  std::vector<Picked> all;
  all.reserve(size_);
  for (auto& [cores, bucket] : buckets_) {
    for (auto& entry : bucket) all.push_back(std::move(entry));
  }
  std::sort(all.begin(), all.end(),
            [](const Picked& a, const Picked& b) { return a.seq < b.seq; });
  buckets_.clear();
  bucket_of_.clear();
  waiting_by_session_.clear();
  size_ = 0;
  std::vector<ComputeUnitPtr> units;
  units.reserve(all.size());
  for (auto& entry : all) units.push_back(std::move(entry.unit));
  return units;
}

std::vector<ComputeUnitPtr> WaitingIndex::snapshot() const {
  std::vector<const Picked*> all;
  all.reserve(size_);
  for (const auto& [cores, bucket] : buckets_) {
    for (const auto& entry : bucket) all.push_back(&entry);
  }
  std::sort(all.begin(), all.end(),
            [](const Picked* a, const Picked* b) { return a->seq < b->seq; });
  std::vector<ComputeUnitPtr> units;
  units.reserve(all.size());
  for (const Picked* entry : all) units.push_back(entry->unit);
  return units;
}

void WaitingIndex::pop_from(std::map<Count, Bucket>::iterator it,
                            Picked& out) {
  Bucket& bucket = it->second;
  out = std::move(bucket.front());
  bucket.pop_front();
  if (bucket.empty()) buckets_.erase(it);
  bucket_of_.erase(out.unit.get());
  note_left(*out.unit, /*picked=*/true);
  --size_;
}

void WaitingIndex::note_left(const ComputeUnit& unit, bool picked) {
  const std::string& session = unit.description().session;
  const auto waiting = waiting_by_session_.find(session);
  ENTK_CHECK(waiting != waiting_by_session_.end(),
             "waiting index session tally out of sync");
  if (--waiting->second == 0) waiting_by_session_.erase(waiting);
  if (picked) ++picks_by_session_[session];
}

}  // namespace entk::pilot
