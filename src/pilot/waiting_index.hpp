// Core-count-bucketed index over an agent's waiting units.
//
// Agents used to keep waiting units in a flat deque and hand the whole
// thing to the scheduler every cycle; each policy then rescanned (or
// re-sorted) all n waiting units, so a scheduler cycle cost O(n) and a
// 100k-unit backlog spent most wall-clock selecting. This index keeps
// the backlog grouped by core demand instead:
//
//   buckets_:  cores -> FIFO of (arrival seq, unit)
//   bucket_of_: unit -> its bucket key, for O(bucket) cancellation
//
// Arrival seqs are monotone, so "earliest waiting unit", "earliest
// unit fitting a budget" and "largest unit fitting a budget" are all
// answered from bucket fronts in O(distinct core counts) or
// O(log distinct core counts) — never O(waiting units). Agents feed
// the index incrementally on submit/settle; nothing is rebuilt per
// cycle.
//
// The index is not thread-safe; its owner (SimAgent on the engine
// thread, LocalAgent under its mutex) serializes access.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "pilot/compute_unit.hpp"

namespace entk::pilot {

class WaitingIndex {
 public:
  /// A unit popped from the index, with its arrival seq so callers can
  /// restore global FIFO order across buckets (launch order).
  struct Picked {
    std::uint64_t seq = 0;
    ComputeUnitPtr unit;
  };

  /// Appends a unit (arrival order is the push order).
  void push(ComputeUnitPtr unit);

  /// Removes one unit wherever it waits; returns false when absent.
  bool erase(const ComputeUnit* unit);

  bool contains(const ComputeUnit* unit) const {
    return bucket_of_.count(unit) != 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Smallest core demand among waiting units (0 when empty): lets the
  /// agent skip a cycle when nothing can possibly fit.
  Count min_cores() const {
    return buckets_.empty() ? 0 : buckets_.begin()->first;
  }

  /// Earliest-arrived unit overall (FIFO head), nullptr when empty.
  const ComputeUnitPtr* fifo_head() const;
  Picked pop_fifo_head();

  /// Earliest-arrived unit with cores <= budget; false when none fits.
  bool pop_earliest_fitting(Count budget, Picked& out);

  /// Largest-cored unit with cores <= budget (FIFO among equals);
  /// false when none fits.
  bool pop_largest_fitting(Count budget, Picked& out);

  /// Removes and returns every unit in arrival order.
  std::vector<ComputeUnitPtr> drain();

  /// Every waiting unit in arrival order, without disturbing the index
  /// (checkpoint capture). Re-pushing the returned sequence into a
  /// fresh index reproduces the same relative scheduling order.
  std::vector<ComputeUnitPtr> snapshot() const;

  /// Per-session accounting (keyed by UnitDescription::session; "" =
  /// legacy unnamed). Bookkeeping only — pick order never consults it,
  /// so adding sessions cannot perturb scheduling decisions.
  /// Currently-waiting unit count per session; zero entries are erased.
  const std::map<std::string, std::size_t>& waiting_by_session() const {
    return waiting_by_session_;
  }
  /// Cumulative units handed to the scheduler per session (pop_*
  /// calls; drain/erase do not count as picks).
  const std::map<std::string, std::size_t>& picks_by_session() const {
    return picks_by_session_;
  }

 private:
  using Bucket = std::deque<Picked>;

  void pop_from(std::map<Count, Bucket>::iterator it, Picked& out);
  void note_left(const ComputeUnit& unit, bool picked);

  std::map<Count, Bucket> buckets_;  // never holds an empty bucket
  std::unordered_map<const ComputeUnit*, Count> bucket_of_;
  std::map<std::string, std::size_t> waiting_by_session_;
  std::map<std::string, std::size_t> picks_by_session_;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace entk::pilot
