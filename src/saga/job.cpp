#include "saga/job.hpp"

#include "common/clock.hpp"
#include "common/log.hpp"

namespace entk::saga {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kNew: return "new";
    case JobState::kPending: return "pending";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCanceled: return "canceled";
  }
  return "unknown";
}

bool is_final(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCanceled;
}

bool is_valid_transition(JobState from, JobState to) {
  switch (from) {
    case JobState::kNew:
      return to == JobState::kPending;
    case JobState::kPending:
      return to == JobState::kRunning || to == JobState::kCanceled ||
             to == JobState::kFailed;
    case JobState::kRunning:
      return is_final(to);
    default:
      return false;
  }
}

Job::Job(std::string uid, JobDescription description, const Clock& clock)
    : uid_(std::move(uid)),
      description_(std::move(description)),
      clock_(clock) {}

JobState Job::state() const {
  MutexLock lock(mutex_);
  return state_;
}

Status Job::final_status() const {
  MutexLock lock(mutex_);
  return final_status_;
}

TimePoint Job::submitted_at() const {
  MutexLock lock(mutex_);
  return submitted_at_;
}

TimePoint Job::started_at() const {
  MutexLock lock(mutex_);
  return started_at_;
}

TimePoint Job::finished_at() const {
  MutexLock lock(mutex_);
  return finished_at_;
}

std::optional<sim::Allocation> Job::allocation() const {
  MutexLock lock(mutex_);
  return allocation_;
}

void Job::on_state_change(Callback callback) {
  MutexLock lock(mutex_);
  callbacks_.push_back(std::move(callback));
}

Status Job::wait(Duration timeout) {
  MutexLock lock(mutex_);
  if (timeout == kTimeInfinity) {
    while (!is_final(state_)) final_cv_.wait(mutex_);
    return Status::ok();
  }
  const auto deadline = steady_deadline_after(timeout);
  while (!is_final(state_)) {
    if (final_cv_.wait_until(mutex_, deadline) == std::cv_status::timeout &&
        !is_final(state_)) {
      return make_error(Errc::kTimedOut,
                        "job " + uid_ + " still " + job_state_name(state_));
    }
  }
  return Status::ok();
}

Status Job::advance_state(JobState to, Status failure) {
  std::vector<Callback> callbacks;
  {
    MutexLock lock(mutex_);
    if (!is_valid_transition(state_, to)) {
      return make_error(Errc::kFailedPrecondition,
                        "job " + uid_ + ": illegal transition " +
                            job_state_name(state_) + " -> " +
                            job_state_name(to));
    }
    state_ = to;
    const TimePoint now = clock_.now();
    switch (to) {
      case JobState::kPending:
        submitted_at_ = now;
        break;
      case JobState::kRunning:
        started_at_ = now;
        break;
      default:
        finished_at_ = now;
        break;
    }
    if (to == JobState::kFailed) {
      final_status_ = failure.is_ok()
                          ? make_error(Errc::kExecutionFailed,
                                       "job " + uid_ + " failed")
                          : failure;
    }
    callbacks = callbacks_;
  }
  ENTK_DEBUG("saga.job") << uid_ << " -> " << job_state_name(to);
  for (const auto& callback : callbacks) callback(*this, to);
  if (is_final(to)) final_cv_.notify_all();
  return Status::ok();
}

void Job::set_allocation(sim::Allocation allocation) {
  MutexLock lock(mutex_);
  allocation_ = std::move(allocation);
}

void Job::clear_allocation() {
  MutexLock lock(mutex_);
  allocation_.reset();
}

}  // namespace entk::saga
