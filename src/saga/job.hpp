// SAGA job object: state machine + profiling timestamps.
//
// States follow the SAGA job model: New -> Pending -> Running ->
// {Done, Failed, Canceled}; Pending may also go straight to Canceled.
// All mutation goes through advance_state(), which validates the
// transition, stamps the profiling clock and fires callbacks. The
// object is thread-safe: the local adaptor completes jobs from worker
// threads while the application polls or waits.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "saga/job_description.hpp"
#include "sim/cluster.hpp"

namespace entk::saga {

enum class JobState { kNew, kPending, kRunning, kDone, kFailed, kCanceled };

const char* job_state_name(JobState state);

/// True if no further transitions are possible from `state`.
bool is_final(JobState state);

/// True if the SAGA model allows `from` -> `to`.
bool is_valid_transition(JobState from, JobState to);

class Job {
 public:
  using Callback = std::function<void(Job&, JobState)>;

  Job(std::string uid, JobDescription description, const Clock& clock);

  const std::string& uid() const { return uid_; }
  const JobDescription& description() const { return description_; }

  JobState state() const ENTK_EXCLUDES(mutex_);
  /// Set when the job failed; empty otherwise.
  Status final_status() const ENTK_EXCLUDES(mutex_);

  /// Profiling timestamps (kNoTime until stamped).
  TimePoint submitted_at() const ENTK_EXCLUDES(mutex_);
  TimePoint started_at() const ENTK_EXCLUDES(mutex_);
  TimePoint finished_at() const ENTK_EXCLUDES(mutex_);

  /// Cores granted while running (sim backend only).
  std::optional<sim::Allocation> allocation() const ENTK_EXCLUDES(mutex_);

  /// Registers a state-change callback; fired after each transition,
  /// outside the job lock.
  void on_state_change(Callback callback) ENTK_EXCLUDES(mutex_);

  /// Blocks until the job reaches a final state or `timeout` elapses
  /// (wall-clock; only meaningful with the local adaptor). Returns
  /// kTimedOut on timeout.
  Status wait(Duration timeout = kTimeInfinity) ENTK_EXCLUDES(mutex_);

  // --- adaptor interface (called by JobService implementations) ---

  /// Performs a validated state transition; `failure` is recorded when
  /// transitioning to kFailed.
  Status advance_state(JobState to, Status failure = Status::ok())
      ENTK_EXCLUDES(mutex_);

  void set_allocation(sim::Allocation allocation) ENTK_EXCLUDES(mutex_);
  void clear_allocation() ENTK_EXCLUDES(mutex_);

 private:
  const std::string uid_;
  const JobDescription description_;
  const Clock& clock_;

  mutable Mutex mutex_{LockRank::kSagaJob};
  CondVar final_cv_;
  JobState state_ ENTK_GUARDED_BY(mutex_) = JobState::kNew;
  Status final_status_ ENTK_GUARDED_BY(mutex_);
  TimePoint submitted_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  TimePoint started_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  TimePoint finished_at_ ENTK_GUARDED_BY(mutex_) = kNoTime;
  std::optional<sim::Allocation> allocation_ ENTK_GUARDED_BY(mutex_);
  std::vector<Callback> callbacks_ ENTK_GUARDED_BY(mutex_);
};

using JobPtr = std::shared_ptr<Job>;

}  // namespace entk::saga
