#include "saga/job_description.hpp"

namespace entk::saga {

Status JobDescription::validate() const {
  if (total_cpu_count < 1) {
    return make_error(Errc::kInvalidArgument,
                      "job '" + name + "': total_cpu_count must be >= 1");
  }
  if (processes_per_host < 0) {
    return make_error(Errc::kInvalidArgument,
                      "job '" + name + "': processes_per_host must be >= 0");
  }
  if (wall_time_limit <= 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "job '" + name + "': wall_time_limit must be > 0");
  }
  if (executable.empty() && !payload && simulated_duration <= 0.0) {
    return make_error(
        Errc::kInvalidArgument,
        "job '" + name +
            "': needs an executable, a payload or a simulated duration");
  }
  return Status::ok();
}

}  // namespace entk::saga
