// SAGA-style job description, following the fields of the Job
// Submission Description Language (JSDL, GFD.56) that the paper's
// SAGA layer standardises on.
//
// Two execution-backend hooks extend the JSDL core:
//  - `payload`: an in-process callable the local adaptor runs instead
//    of fork/exec-ing `executable` (our stand-in for process launch);
//  - `simulated_duration`: how long the job occupies its cores on the
//    simulated backend when no owner drives it (container jobs are
//    instead ended explicitly by their owner).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace entk::saga {

struct JobDescription {
  // --- JSDL core ---
  std::string name;                ///< Human-readable job name.
  std::string executable;          ///< Command to run.
  std::vector<std::string> arguments;
  std::map<std::string, std::string> environment;
  std::string working_directory;
  Count total_cpu_count = 1;       ///< Cores requested.
  Count processes_per_host = 0;    ///< 0 = let the backend decide.
  Duration wall_time_limit = 3600; ///< Seconds before forcible end.
  std::string queue;               ///< Batch queue/partition name.
  std::string project;             ///< Allocation/project to charge.

  // --- execution-backend hooks ---
  /// In-process work for the local adaptor; may be empty for container
  /// jobs that are driven externally (e.g. pilot agents).
  std::function<Status()> payload;
  /// Sim-backend running time; <= 0 means "runs until completed by its
  /// owner or by walltime".
  Duration simulated_duration = 0.0;

  /// Checks field ranges (cores >= 1, walltime > 0, ...).
  Status validate() const;
};

}  // namespace entk::saga
