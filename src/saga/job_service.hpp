// SAGA job service: the uniform submission interface over backends.
//
// The pilot layer only ever talks to this interface, which is how the
// toolkit stays agnostic to whether pilots land on a simulated batch
// system or on the local host — the same decoupling SAGA provides in
// the original stack.
#pragma once

#include "saga/job.hpp"

namespace entk::saga {

class JobService {
 public:
  virtual ~JobService() = default;

  /// Validates and submits a job; the returned job is kPending.
  virtual Result<JobPtr> submit(JobDescription description) = 0;

  /// Cancels a pending or running job.
  virtual Status cancel(Job& job) = 0;

  /// Owner signals that an externally driven (container) job is done.
  /// Fails unless the job is running under this service.
  virtual Status complete(Job& job) = 0;

  /// Backend identifier, e.g. "sim:xsede.comet" or "local".
  virtual std::string backend_name() const = 0;
};

}  // namespace entk::saga
