#include "saga/jsdl.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace entk::saga {

std::string to_jsdl(const JobDescription& description) {
  std::ostringstream os;
  os << "jsdl:ApplicationName = " << description.name << '\n'
     << "jsdl:Executable = " << description.executable << '\n';
  for (const auto& argument : description.arguments) {
    os << "jsdl:Argument = " << argument << '\n';
  }
  for (const auto& [key, value] : description.environment) {
    os << "jsdl:Environment = " << key << '=' << value << '\n';
  }
  if (!description.working_directory.empty()) {
    os << "jsdl:WorkingDirectory = " << description.working_directory
       << '\n';
  }
  os << "jsdl:TotalCPUCount = " << description.total_cpu_count << '\n';
  if (description.processes_per_host > 0) {
    os << "jsdl:ProcessesPerHost = " << description.processes_per_host
       << '\n';
  }
  os << "jsdl:WallTimeLimit = "
     << format_double(description.wall_time_limit, 3) << '\n';
  if (!description.queue.empty()) {
    os << "jsdl:Queue = " << description.queue << '\n';
  }
  if (!description.project.empty()) {
    os << "jsdl:Project = " << description.project << '\n';
  }
  return os.str();
}

Result<JobDescription> from_jsdl(const std::string& text) {
  JobDescription description;
  std::istringstream stream(text);
  std::string raw_line;
  int line_number = 0;
  while (std::getline(stream, raw_line)) {
    ++line_number;
    const std::string line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (!starts_with(line, "jsdl:") || eq == std::string::npos) {
      return make_error(Errc::kInvalidArgument,
                        "line " + std::to_string(line_number) +
                            ": expected 'jsdl:Key = value'");
    }
    const std::string key = trim(line.substr(5, eq - 5));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "ApplicationName") {
      description.name = value;
    } else if (key == "Executable") {
      description.executable = value;
    } else if (key == "Argument") {
      description.arguments.push_back(value);
    } else if (key == "Environment") {
      const auto sep = value.find('=');
      if (sep == std::string::npos || sep == 0) {
        return make_error(Errc::kInvalidArgument,
                          "line " + std::to_string(line_number) +
                              ": Environment needs KEY=VALUE");
      }
      description.environment[trim(value.substr(0, sep))] =
          trim(value.substr(sep + 1));
    } else if (key == "WorkingDirectory") {
      description.working_directory = value;
    } else if (key == "TotalCPUCount") {
      description.total_cpu_count =
          std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "ProcessesPerHost") {
      description.processes_per_host =
          std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "WallTimeLimit") {
      description.wall_time_limit = std::strtod(value.c_str(), nullptr);
    } else if (key == "Queue") {
      description.queue = value;
    } else if (key == "Project") {
      description.project = value;
    } else {
      return make_error(Errc::kInvalidArgument,
                        "line " + std::to_string(line_number) +
                            ": unknown JSDL element '" + key + "'");
    }
  }
  ENTK_RETURN_IF_ERROR(description.validate());
  return description;
}

}  // namespace entk::saga
