// JSDL-style serialization of job descriptions.
//
// The paper's SAGA layer standardises on the Job Submission
// Description Language (JSDL, OGF GFD.56). This module writes and
// reads JobDescriptions in a flat `jsdl:Key = value` text form using
// JSDL's element names — enough to persist, inspect and exchange job
// descriptions between tools (the in-process payload hook is, by
// nature, not serialisable and is omitted).
#pragma once

#include <string>

#include "saga/job_description.hpp"

namespace entk::saga {

/// Serialises a job description. Keys follow JSDL element names
/// (ApplicationName, Executable, Argument, Environment, TotalCPUCount,
/// ProcessesPerHost, WallTimeLimit, Queue, Project, WorkingDirectory).
std::string to_jsdl(const JobDescription& description);

/// Parses the output of to_jsdl(). Unknown keys are an error;
/// repeated Argument/Environment keys accumulate.
Result<JobDescription> from_jsdl(const std::string& text);

}  // namespace entk::saga
