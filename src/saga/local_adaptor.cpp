#include "saga/local_adaptor.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/uid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace entk::saga {

LocalAdaptor::LocalAdaptor(Count cores, std::size_t workers)
    : cores_(cores), free_(cores) {
  ENTK_CHECK(cores >= 1, "local adaptor needs at least one core");
  if (workers == 0) {
    workers = std::min<std::size_t>(static_cast<std::size_t>(cores), 16);
  }
  pool_ = std::make_unique<ThreadPool>(workers);
}

LocalAdaptor::~LocalAdaptor() {
  // Drain payloads before members are destroyed: worker lambdas
  // reference this adaptor.
  pool_.reset();
}

Count LocalAdaptor::free_cores() const {
  MutexLock lock(mutex_);
  return free_;
}

Result<JobPtr> LocalAdaptor::submit(JobDescription description) {
  ENTK_RETURN_IF_ERROR(description.validate());
  ENTK_TRACE_INSTANT("saga.job.submit", "saga");
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kSagaJobsSubmitted)
      .add();
  if (description.total_cpu_count > cores_) {
    return make_error(Errc::kResourceExhausted,
                      "job requests " +
                          std::to_string(description.total_cpu_count) +
                          " cores; local host has " + std::to_string(cores_));
  }
  auto job =
      std::make_shared<Job>(next_uid("job"), std::move(description), clock_);
  ENTK_CHECK(job->advance_state(JobState::kPending).is_ok(), "fresh job");
  {
    MutexLock lock(mutex_);
    waiting_.push_back(job);
    try_start_locked();
  }
  return job;
}

void LocalAdaptor::try_start_locked() {
  while (!waiting_.empty()) {
    JobPtr job = waiting_.front();
    if (is_final(job->state())) {  // cancelled while waiting
      waiting_.pop_front();
      continue;
    }
    const Count need = job->description().total_cpu_count;
    if (need > free_) return;  // FIFO: head of queue blocks the rest
    waiting_.pop_front();
    free_ -= need;
    running_.emplace(job.get(), job);
    ENTK_CHECK(job->advance_state(JobState::kRunning).is_ok(),
               "pending job failed to start");
    if (job->description().payload) {
      pool_->submit([this, job] {
        const Status status = job->description().payload();
        finish(job, status.is_ok() ? JobState::kDone : JobState::kFailed,
               status);
      });
    }
    // Container jobs (no payload) keep their cores until complete().
  }
}

void LocalAdaptor::finish(const JobPtr& job, JobState final_state,
                          Status failure) {
  {
    MutexLock lock(mutex_);
    const auto it = running_.find(job.get());
    if (it == running_.end()) return;  // raced with cancel()
    running_.erase(it);
    free_ += job->description().total_cpu_count;
    ENTK_CHECK(free_ <= cores_, "core accounting out of sync");
    try_start_locked();
  }
  (void)job->advance_state(final_state, std::move(failure));
}

Status LocalAdaptor::cancel(Job& job) {
  JobPtr handle;
  {
    MutexLock lock(mutex_);
    const auto it = running_.find(&job);
    if (it != running_.end()) {
      handle = it->second;
      // A running payload cannot be interrupted mid-flight (we never
      // kill threads); only container jobs are cancellable once
      // running.
      if (job.description().payload) {
        return make_error(Errc::kFailedPrecondition,
                          "job " + job.uid() +
                              " is executing a payload and cannot be "
                              "cancelled mid-run");
      }
    } else {
      const auto waiting_it = std::find_if(
          waiting_.begin(), waiting_.end(),
          [&](const JobPtr& candidate) { return candidate.get() == &job; });
      if (waiting_it == waiting_.end()) {
        return make_error(Errc::kNotFound,
                          "job " + job.uid() + " is not active locally");
      }
      handle = *waiting_it;
      waiting_.erase(waiting_it);
      // Not running: transition directly.
    }
  }
  if (handle->state() == JobState::kRunning) {
    finish(handle, JobState::kCanceled, Status::ok());
    return Status::ok();
  }
  return handle->advance_state(JobState::kCanceled);
}

Status LocalAdaptor::complete(Job& job) {
  JobPtr handle;
  {
    MutexLock lock(mutex_);
    const auto it = running_.find(&job);
    if (it == running_.end()) {
      return make_error(Errc::kNotFound,
                        "job " + job.uid() + " is not running locally");
    }
    if (job.description().payload) {
      return make_error(Errc::kFailedPrecondition,
                        "job " + job.uid() +
                            " has a payload; it completes by itself");
    }
    handle = it->second;
  }
  finish(handle, JobState::kDone, Status::ok());
  return Status::ok();
}

}  // namespace entk::saga
