#include "saga/local_adaptor.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/uid.hpp"
#include "obs/metrics.hpp"
#include "obs/pool_metrics.hpp"
#include "obs/trace.hpp"

namespace entk::saga {

LocalAdaptor::LocalAdaptor(Count cores, std::size_t workers)
    : cores_(cores), free_(cores) {
  ENTK_CHECK(cores >= 1, "local adaptor needs at least one core");
  if (workers == 0) {
    workers = std::min<std::size_t>(static_cast<std::size_t>(cores), 16);
  }
  pool_ = std::make_unique<WorkStealingPool>(workers, obs::pool_metric_fn());
}

LocalAdaptor::~LocalAdaptor() {
  // Drain payloads before members are destroyed: worker lambdas
  // reference this adaptor — and pool_ itself, when finish() launches
  // the next waiting job. Shut down BEFORE reset(): unique_ptr::reset
  // nulls the pointer before running the destructor, so a worker
  // mid-finish would dereference null.
  pool_->shutdown();
  pool_.reset();
}

Count LocalAdaptor::free_cores() const {
  MutexLock lock(mutex_);
  return free_;
}

Result<JobPtr> LocalAdaptor::submit(JobDescription description) {
  ENTK_RETURN_IF_ERROR(description.validate());
  ENTK_TRACE_INSTANT("saga.job.submit", "saga");
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kSagaJobsSubmitted)
      .add();
  if (description.total_cpu_count > cores_) {
    return make_error(Errc::kResourceExhausted,
                      "job requests " +
                          std::to_string(description.total_cpu_count) +
                          " cores; local host has " + std::to_string(cores_));
  }
  auto job =
      std::make_shared<Job>(next_uid("job"), std::move(description), clock_);
  ENTK_CHECK(job->advance_state(JobState::kPending).is_ok(), "fresh job");
  std::vector<JobPtr> started;
  {
    MutexLock lock(mutex_);
    waiting_.push_back(job);
    started = try_start_locked();
  }
  launch(std::move(started));
  return job;
}

std::vector<JobPtr> LocalAdaptor::try_start_locked() {
  std::vector<JobPtr> started;
  while (!waiting_.empty()) {
    JobPtr job = waiting_.front();
    if (is_final(job->state())) {  // cancelled while waiting
      waiting_.pop_front();
      continue;
    }
    const Count need = job->description().total_cpu_count;
    if (need > free_) break;  // FIFO: head of queue blocks the rest
    waiting_.pop_front();
    free_ -= need;
    running_.emplace(job.get(), job);
    started.push_back(std::move(job));
  }
  return started;
}

void LocalAdaptor::launch(std::vector<JobPtr> started) {
  while (!started.empty()) {
    std::vector<JobPtr> restarted;
    for (JobPtr& job : started) {
      if (job->advance_state(JobState::kRunning).is_ok()) {
        if (job->description().payload) {
          // submit_local: finish() on a worker thread launches the
          // next waiting job from that same thread, keeping the FIFO
          // hand-off on the hot deque. The pool refuses once shutdown
          // starts (a payload finishing while the adaptor tears down)
          // — cancel the job instead of aborting the process.
          const bool accepted = pool_->submit_local(TaskFn([this, job] {
            const Status status = job->description().payload();
            finish(job,
                   status.is_ok() ? JobState::kDone : JobState::kFailed,
                   status);
          }));
          if (!accepted) {
            finish(job, JobState::kCanceled,
                   make_error(Errc::kCancelled,
                              "local adaptor is shutting down"));
          }
        }
        // Container jobs (no payload) keep their cores until
        // complete().
        continue;
      }
      // The job reached a final state between reservation and launch
      // (cancel raced with start-up): return its cores, which may let
      // further waiting jobs start.
      MutexLock lock(mutex_);
      const auto it = running_.find(job.get());
      if (it == running_.end()) continue;  // raced with finish()
      running_.erase(it);
      free_ += job->description().total_cpu_count;
      ENTK_CHECK(free_ <= cores_, "core accounting out of sync");
      auto more = try_start_locked();
      restarted.insert(restarted.end(),
                       std::make_move_iterator(more.begin()),
                       std::make_move_iterator(more.end()));
    }
    started = std::move(restarted);
  }
}

void LocalAdaptor::finish(const JobPtr& job, JobState final_state,
                          Status failure) {
  std::vector<JobPtr> started;
  {
    MutexLock lock(mutex_);
    const auto it = running_.find(job.get());
    if (it == running_.end()) return;  // raced with cancel()
    running_.erase(it);
    free_ += job->description().total_cpu_count;
    ENTK_CHECK(free_ <= cores_, "core accounting out of sync");
    started = try_start_locked();
  }
  (void)job->advance_state(final_state, std::move(failure));
  launch(std::move(started));
}

Status LocalAdaptor::cancel(Job& job) {
  JobPtr handle;
  {
    MutexLock lock(mutex_);
    const auto it = running_.find(&job);
    if (it != running_.end()) {
      handle = it->second;
      // A running payload cannot be interrupted mid-flight (we never
      // kill threads); only container jobs are cancellable once
      // running.
      if (job.description().payload) {
        return make_error(Errc::kFailedPrecondition,
                          "job " + job.uid() +
                              " is executing a payload and cannot be "
                              "cancelled mid-run");
      }
    } else {
      const auto waiting_it = std::find_if(
          waiting_.begin(), waiting_.end(),
          [&](const JobPtr& candidate) { return candidate.get() == &job; });
      if (waiting_it == waiting_.end()) {
        return make_error(Errc::kNotFound,
                          "job " + job.uid() + " is not active locally");
      }
      handle = *waiting_it;
      waiting_.erase(waiting_it);
      // Not running: transition directly.
    }
  }
  if (handle->state() == JobState::kRunning) {
    finish(handle, JobState::kCanceled, Status::ok());
    return Status::ok();
  }
  return handle->advance_state(JobState::kCanceled);
}

Status LocalAdaptor::complete(Job& job) {
  JobPtr handle;
  {
    MutexLock lock(mutex_);
    const auto it = running_.find(&job);
    if (it == running_.end()) {
      return make_error(Errc::kNotFound,
                        "job " + job.uid() + " is not running locally");
    }
    if (job.description().payload) {
      return make_error(Errc::kFailedPrecondition,
                        "job " + job.uid() +
                            " has a payload; it completes by itself");
    }
    handle = it->second;
  }
  finish(handle, JobState::kDone, Status::ok());
  return Status::ok();
}

}  // namespace entk::saga
