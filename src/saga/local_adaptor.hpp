// SAGA adaptor for the local host.
//
// Jobs start immediately when enough local "cores" (slots) are free,
// FIFO otherwise — there is no queue-wait model. A job with a payload
// runs it on the pool and finishes with the payload's status; a
// container job (no payload) runs until its owner calls complete().
// This adaptor executes real work in real time and is what examples
// and integration tests run on.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/work_stealing_pool.hpp"
#include "saga/job_service.hpp"

namespace entk::saga {

class LocalAdaptor final : public JobService {
 public:
  /// `cores` bounds the summed total_cpu_count of concurrently running
  /// jobs; `workers` sizes the payload thread pool (defaults to cores,
  /// capped at 16 actual threads).
  explicit LocalAdaptor(Count cores, std::size_t workers = 0);
  ~LocalAdaptor() override;

  Result<JobPtr> submit(JobDescription description) override
      ENTK_EXCLUDES(mutex_);
  Status cancel(Job& job) override ENTK_EXCLUDES(mutex_);
  Status complete(Job& job) override ENTK_EXCLUDES(mutex_);
  std::string backend_name() const override { return "local"; }

  Count total_cores() const { return cores_; }
  Count free_cores() const ENTK_EXCLUDES(mutex_);

  const Clock& clock() const { return clock_; }

 private:
  struct Waiting {
    JobPtr job;
  };

  /// Reserves cores for as many waiting jobs as fit (FIFO) and moves
  /// them into running_. Returns the reserved jobs WITHOUT advancing
  /// their state: the caller must pass them to launch() after
  /// releasing mutex_ — job-state callbacks drive the whole
  /// pilot/unit-manager chain and must never fire under the adaptor
  /// lock (LockRank::kLocalAdaptor orders below the locks they take).
  std::vector<JobPtr> try_start_locked() ENTK_REQUIRES(mutex_);
  /// Advances reserved jobs to kRunning and hands payloads to the
  /// pool; returns reservations of jobs that reached a final state in
  /// the window between reservation and launch (cancel racing with
  /// start-up).
  void launch(std::vector<JobPtr> started) ENTK_EXCLUDES(mutex_);
  void finish(const JobPtr& job, JobState final_state, Status failure)
      ENTK_EXCLUDES(mutex_);

  const Count cores_;
  WallClock clock_;
  std::unique_ptr<WorkStealingPool> pool_;

  mutable Mutex mutex_{LockRank::kLocalAdaptor};
  Count free_ ENTK_GUARDED_BY(mutex_) = 0;
  std::deque<JobPtr> waiting_ ENTK_GUARDED_BY(mutex_);
  std::unordered_map<const Job*, JobPtr> running_ ENTK_GUARDED_BY(mutex_);
};

}  // namespace entk::saga
