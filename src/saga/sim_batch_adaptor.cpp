#include "saga/sim_batch_adaptor.hpp"

#include "common/uid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace entk::saga {

SimBatchAdaptor::SimBatchAdaptor(sim::Engine& engine, sim::BatchQueue& batch,
                                 std::string machine_name)
    : engine_(engine), batch_(batch), machine_(std::move(machine_name)) {}

Result<JobPtr> SimBatchAdaptor::submit(JobDescription description) {
  ENTK_RETURN_IF_ERROR(description.validate());
  ENTK_TRACE_INSTANT("saga.job.submit", "saga");
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kSagaJobsSubmitted)
      .add();
  auto job = std::make_shared<Job>(next_uid("job"), std::move(description),
                                   engine_.clock());

  sim::BatchJobRequest request;
  request.cores = job->description().total_cpu_count;
  request.walltime = job->description().wall_time_limit;
  // The weak_ptr keeps the batch callbacks safe if the application
  // drops the job handle before the simulation finishes.
  std::weak_ptr<Job> weak = job;
  request.on_start = [this, weak](const sim::Allocation& allocation) {
    auto started = weak.lock();
    if (!started) return;
    started->set_allocation(allocation);
    ENTK_CHECK(started->advance_state(JobState::kRunning).is_ok(),
               "batch start on non-pending job");
    const Duration duration = started->description().simulated_duration;
    if (duration > 0.0) {
      // Self-terminating job: ends after its simulated runtime.
      engine_.schedule(duration, [this, weak] {
        auto finishing = weak.lock();
        if (!finishing || finishing->state() != JobState::kRunning) return;
        (void)complete(*finishing);
      });
    }
  };
  request.on_end = [this, weak](sim::BatchJobState final_state) {
    auto ended = weak.lock();
    if (!ended) return;
    batch_ids_.erase(ended.get());
    ended->clear_allocation();
    if (is_final(ended->state())) return;  // complete()/cancel() already did
    switch (final_state) {
      case sim::BatchJobState::kCompleted:
        (void)ended->advance_state(JobState::kDone);
        break;
      case sim::BatchJobState::kExpired:
        (void)ended->advance_state(
            JobState::kFailed,
            make_error(Errc::kTimedOut,
                       "job " + ended->uid() + " exceeded its walltime"));
        break;
      case sim::BatchJobState::kCancelled:
        (void)ended->advance_state(JobState::kCanceled);
        break;
      default:
        break;
    }
  };

  auto batch_id = batch_.submit(std::move(request));
  if (!batch_id.ok()) return batch_id.status();
  batch_ids_[job.get()] = batch_id.value();
  ENTK_CHECK(job->advance_state(JobState::kPending).is_ok(), "fresh job");
  return job;
}

Status SimBatchAdaptor::cancel(Job& job) {
  const auto it = batch_ids_.find(&job);
  if (it == batch_ids_.end()) {
    return make_error(Errc::kNotFound,
                      "job " + job.uid() + " is not active on " +
                          backend_name());
  }
  return batch_.cancel(it->second);
}

Status SimBatchAdaptor::complete(Job& job) {
  const auto it = batch_ids_.find(&job);
  if (it == batch_ids_.end()) {
    return make_error(Errc::kNotFound,
                      "job " + job.uid() + " is not active on " +
                          backend_name());
  }
  const sim::BatchJobId batch_id = it->second;
  ENTK_RETURN_IF_ERROR(job.advance_state(JobState::kDone));
  return batch_.complete(batch_id);
}

}  // namespace entk::saga
