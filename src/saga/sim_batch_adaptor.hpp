// SAGA adaptor for the simulated batch system.
//
// Maps JobDescriptions onto sim::BatchQueue requests: the job waits in
// the (simulated) queue, starts when cores free up, and either runs for
// its simulated_duration, is completed by its owner, or expires at its
// walltime. Everything happens on the simulation engine's virtual
// clock; Job::wait() must not be used here — drive the engine instead.
#pragma once

#include <unordered_map>

#include "saga/job_service.hpp"
#include "sim/batch.hpp"

namespace entk::saga {

class SimBatchAdaptor final : public JobService {
 public:
  SimBatchAdaptor(sim::Engine& engine, sim::BatchQueue& batch,
                  std::string machine_name);

  Result<JobPtr> submit(JobDescription description) override;
  Status cancel(Job& job) override;
  Status complete(Job& job) override;
  std::string backend_name() const override { return "sim:" + machine_; }

 private:
  sim::Engine& engine_;
  sim::BatchQueue& batch_;
  std::string machine_;
  std::unordered_map<const Job*, sim::BatchJobId> batch_ids_;
};

}  // namespace entk::saga
