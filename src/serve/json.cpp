#include "serve/json.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace entk::serve {

namespace {

Status parse_error(std::size_t offset, const std::string& what) {
  return make_error(Errc::kInvalidArgument,
                    "json: " + what + " at byte " +
                        std::to_string(offset));
}

/// Cursor over the input with the shared error shape.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t max_depth;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_whitespace() {
    while (!done()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos;
    }
  }

  bool consume(char expected) {
    if (done() || text[pos] != expected) return false;
    ++pos;
    return true;
  }

  bool consume_word(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  Result<Json> parse_value(std::size_t depth);
  Result<std::string> parse_string_body();
  Result<Json> parse_number();
};

void append_utf8(std::string& out, std::uint32_t code_point) {
  if (code_point < 0x80) {
    out.push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

Result<std::uint32_t> parse_hex4(Parser& parser) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (parser.done()) {
      return parse_error(parser.pos, "truncated \\u escape");
    }
    const char c = parser.text[parser.pos++];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return parse_error(parser.pos - 1, "bad hex digit in \\u escape");
    }
  }
  return value;
}

Result<std::string> Parser::parse_string_body() {
  // The opening quote is already consumed.
  std::string out;
  for (;;) {
    if (done()) return parse_error(pos, "unterminated string");
    const unsigned char c = static_cast<unsigned char>(text[pos++]);
    if (c == '"') return out;
    if (c < 0x20) {
      return parse_error(pos - 1, "bare control character in string");
    }
    if (c != '\\') {
      out.push_back(static_cast<char>(c));
      continue;
    }
    if (done()) return parse_error(pos, "truncated escape");
    const char escape = text[pos++];
    switch (escape) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        auto high = parse_hex4(*this);
        if (!high.ok()) return high.status();
        std::uint32_t code_point = high.value();
        if (code_point >= 0xD800 && code_point <= 0xDBFF) {
          // High surrogate: a low surrogate must follow.
          if (!consume('\\') || !consume('u')) {
            return parse_error(pos, "lone high surrogate");
          }
          auto low = parse_hex4(*this);
          if (!low.ok()) return low.status();
          if (low.value() < 0xDC00 || low.value() > 0xDFFF) {
            return parse_error(pos, "invalid low surrogate");
          }
          code_point = 0x10000 + ((code_point - 0xD800) << 10) +
                       (low.value() - 0xDC00);
        } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
          return parse_error(pos, "lone low surrogate");
        }
        append_utf8(out, code_point);
        break;
      }
      default:
        return parse_error(pos - 1, "unknown escape");
    }
  }
}

Result<Json> Parser::parse_number() {
  const std::size_t start = pos;
  if (consume('-')) {
    // fallthrough to the integer part
  }
  if (done()) return parse_error(pos, "truncated number");
  if (consume('0')) {
    // A leading zero may not be followed by more digits.
  } else {
    if (done() || peek() < '1' || peek() > '9') {
      return parse_error(pos, "malformed number");
    }
    while (!done() && peek() >= '0' && peek() <= '9') ++pos;
  }
  if (!done() && peek() == '.') {
    ++pos;
    if (done() || peek() < '0' || peek() > '9') {
      return parse_error(pos, "malformed fraction");
    }
    while (!done() && peek() >= '0' && peek() <= '9') ++pos;
  }
  if (!done() && (peek() == 'e' || peek() == 'E')) {
    ++pos;
    if (!done() && (peek() == '+' || peek() == '-')) ++pos;
    if (done() || peek() < '0' || peek() > '9') {
      return parse_error(pos, "malformed exponent");
    }
    while (!done() && peek() >= '0' && peek() <= '9') ++pos;
  }
  const std::string token(text.substr(start, pos - start));
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || !std::isfinite(value)) {
    return parse_error(start, "number out of range");
  }
  return Json::number(value);
}

Result<Json> Parser::parse_value(std::size_t depth) {
  if (depth > max_depth) {
    return parse_error(pos, "nesting exceeds the depth cap");
  }
  skip_whitespace();
  if (done()) return parse_error(pos, "unexpected end of input");
  const char c = peek();
  if (c == 'n') {
    if (!consume_word("null")) return parse_error(pos, "bad literal");
    return Json();
  }
  if (c == 't') {
    if (!consume_word("true")) return parse_error(pos, "bad literal");
    return Json::boolean(true);
  }
  if (c == 'f') {
    if (!consume_word("false")) return parse_error(pos, "bad literal");
    return Json::boolean(false);
  }
  if (c == '"') {
    ++pos;
    auto body = parse_string_body();
    if (!body.ok()) return body.status();
    return Json::string(body.take());
  }
  if (c == '[') {
    ++pos;
    Json array = Json::array();
    skip_whitespace();
    if (consume(']')) return array;
    for (;;) {
      auto item = parse_value(depth + 1);
      if (!item.ok()) return item.status();
      array.push_back(item.take());
      skip_whitespace();
      if (consume(']')) return array;
      if (!consume(',')) {
        return parse_error(pos, "expected ',' or ']' in array");
      }
    }
  }
  if (c == '{') {
    ++pos;
    Json object = Json::object();
    skip_whitespace();
    if (consume('}')) return object;
    for (;;) {
      skip_whitespace();
      if (done() || peek() != '"') {
        return parse_error(pos, "expected string key in object");
      }
      ++pos;
      auto key = parse_string_body();
      if (!key.ok()) return key.status();
      skip_whitespace();
      if (!consume(':')) {
        return parse_error(pos, "expected ':' after object key");
      }
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value.status();
      object.set(key.take(), value.take());
      skip_whitespace();
      if (consume('}')) return object;
      if (!consume(',')) {
        return parse_error(pos, "expected ',' or '}' in object");
      }
    }
  }
  if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
  return parse_error(pos, "unexpected character");
}

void dump_string(const std::string& value, std::string& out) {
  out.push_back('"');
  for (const char raw : value) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(raw);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& value, std::string& out) {
  switch (value.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case Json::Kind::kNumber: {
      const double number = value.as_number();
      // Integral values print without a fraction so ids survive a
      // round trip byte-identically.
      if (number == std::floor(number) && std::abs(number) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", number);
        out += buffer;
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", number);
        out += buffer;
      }
      return;
    }
    case Json::Kind::kString:
      dump_string(value.as_string(), out);
      return;
    case Json::Kind::kArray: {
      out.push_back('[');
      const char* separator = "";
      for (const Json& item : value.items()) {
        out += separator;
        dump_value(item, out);
        separator = ",";
      }
      out.push_back(']');
      return;
    }
    case Json::Kind::kObject: {
      out.push_back('{');
      const char* separator = "";
      for (const auto& [key, member] : value.members()) {
        out += separator;
        dump_string(key, out);
        out.push_back(':');
        dump_value(member, out);
        separator = ",";
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

Json Json::boolean(bool value) {
  Json json;
  json.kind_ = Kind::kBool;
  json.bool_ = value;
  return json;
}

Json Json::number(double value) {
  Json json;
  json.kind_ = Kind::kNumber;
  json.number_ = value;
  return json;
}

Json Json::string(std::string value) {
  Json json;
  json.kind_ = Kind::kString;
  json.string_ = std::move(value);
  return json;
}

Json Json::array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Json::push_back(Json value) {
  items_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  for (auto& [name, member] : members_) {
    if (name == key) {
      member = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Result<Json> Json::parse(std::string_view text, std::size_t max_depth) {
  Parser parser{text, 0, max_depth};
  auto value = parser.parse_value(0);
  if (!value.ok()) return value.status();
  parser.skip_whitespace();
  if (!parser.done()) {
    return parse_error(parser.pos, "trailing garbage after document");
  }
  return value;
}

}  // namespace entk::serve
