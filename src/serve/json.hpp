// Minimal strict JSON for the serve line protocol.
//
// The daemon speaks newline-delimited JSON to untrusted clients, so
// the parser is deliberately small and paranoid: UTF-8 pass-through,
// a hard nesting-depth cap, full-input consumption (trailing garbage
// is an error), and no recursion deeper than the cap — a hostile
// "[[[[..." line cannot blow the stack. Serialization is compact
// (one line, no spaces) so every reply is exactly one protocol frame.
//
// This is a wire codec, not a general document model; the rest of the
// toolkit keeps writing its JSON by hand (bench reports, traces).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace entk::serve {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  /// Object members keep insertion order, so replies serialize
  /// deterministically.
  using Member = std::pair<std::string, Json>;

  Json() = default;  ///< null
  static Json boolean(bool value);
  static Json number(double value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; the caller checks the kind first (wrong-kind
  /// access returns the type's zero value, never traps).
  bool as_bool() const { return kind_ == Kind::kBool && bool_; }
  double as_number() const { return kind_ == Kind::kNumber ? number_ : 0.0; }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Array append / object set (append or overwrite by key).
  void push_back(Json value);
  void set(std::string key, Json value);

  /// Compact one-line serialization (no trailing newline).
  std::string dump() const;

  /// Strict parse of exactly one JSON document. Rejects trailing
  /// non-whitespace, nesting beyond `max_depth`, malformed escapes,
  /// lone surrogates, bare control characters in strings, and any
  /// token the RFC grammar does not allow.
  static Result<Json> parse(std::string_view text,
                            std::size_t max_depth = 64);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<Member> members_;
};

}  // namespace entk::serve
