#include "serve/listener.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/protocol.hpp"

namespace entk::serve {

namespace {

/// Poll granularity for stop() observation (transport timing only —
/// no protocol or simulation semantics ride on it).
constexpr int kPollMillis = 50;

Status socket_error(const std::string& what) {
  return make_error(Errc::kIoError,
                    what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, riding out short writes and EINTR.
bool write_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written,
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

Result<int> bind_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return socket_error("socket");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    const Status status = socket_error("bind 127.0.0.1:" +
                                       std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status status = socket_error("listen");
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> bind_unix(const std::string& path) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) {
    return make_error(Errc::kInvalidArgument,
                      "unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return socket_error("socket");
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    const Status status = socket_error("bind " + path);
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status status = socket_error("listen");
    ::close(fd);
    return status;
  }
  return fd;
}

}  // namespace

Listener::Listener(Service& service, Options options)
    : service_(service), unix_path_(std::move(options.unix_path)) {}

Result<std::unique_ptr<Listener>> Listener::start(Service& service,
                                                  Options options) {
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return make_error(Errc::kInvalidArgument,
                      "listener needs a unix path or a tcp port");
  }
  const int requested_port = options.tcp_port;
  std::unique_ptr<Listener> listener(
      new Listener(service, std::move(options)));
  if (!listener->unix_path_.empty()) {
    auto fd = bind_unix(listener->unix_path_);
    if (!fd.ok()) return fd.status();
    listener->listen_fds_.push_back(fd.value());
  }
  if (requested_port >= 0) {
    auto fd = bind_tcp(requested_port);
    if (!fd.ok()) {
      for (const int open : listener->listen_fds_) ::close(open);
      return fd.status();
    }
    // Read back the kernel-chosen port for the ephemeral case.
    sockaddr_in bound{};
    socklen_t length = sizeof(bound);
    if (::getsockname(fd.value(), reinterpret_cast<sockaddr*>(&bound),
                      &length) == 0) {
      listener->tcp_port_ = ntohs(bound.sin_port);
    } else {
      listener->tcp_port_ = requested_port;
    }
    listener->listen_fds_.push_back(fd.value());
  }
  Listener* raw = listener.get();
  MutexLock lock(raw->mutex_);
  for (const int fd : raw->listen_fds_) {
    raw->accept_threads_.emplace_back(
        [raw, fd] { raw->accept_loop(fd); });
  }
  return listener;
}

Listener::~Listener() { stop(); }

bool Listener::stopping() const {
  MutexLock lock(mutex_);
  return stopping_;
}

void Listener::stop() {
  std::vector<std::thread> accepting;
  std::vector<std::thread> serving;
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      // A concurrent stop() owns the join; nothing left to do here
      // once the flag is up and the threads were claimed.
      return;
    }
    stopping_ = true;
    accepting.swap(accept_threads_);
    serving.swap(connection_threads_);
  }
  for (std::thread& thread : accepting) {
    if (thread.joinable()) thread.join();
  }
  for (std::thread& thread : serving) {
    if (thread.joinable()) thread.join();
  }
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void Listener::accept_loop(int listen_fd) {
  while (!stopping()) {
    pollfd poller{listen_fd, POLLIN, 0};
    const int ready = ::poll(&poller, 1, kPollMillis);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    MutexLock lock(mutex_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connection_threads_.emplace_back(
        [this, fd] { serve_connection(fd); });
  }
}

void Listener::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping()) {
    pollfd poller{fd, POLLIN, 0};
    const int ready = ::poll(&poller, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // clean disconnect (possibly mid-line)
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    for (;;) {
      const std::size_t newline = buffer.find('\n');
      if (newline == std::string::npos) {
        if (buffer.size() > kMaxLineBytes) {
          // Oversized frame: shed it instead of buffering without
          // bound, then drop the connection (the stream position is
          // unrecoverable).
          write_all(fd, error_reply("BAD_REQUEST",
                                    "request line exceeds " +
                                        std::to_string(kMaxLineBytes) +
                                        " bytes") +
                            "\n");
          open = false;
        }
        break;
      }
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::string reply = service_.handle_line(line);
      if (!write_all(fd, reply + "\n")) {
        open = false;
        break;
      }
    }
  }
  ::close(fd);
}

}  // namespace entk::serve
