// Socket front door for the entk-serve daemon.
//
// Accepts connections on a loopback TCP port and/or a Unix-domain
// socket and speaks the newline-delimited JSON protocol: one request
// line in, one reply line out, many requests per connection. All
// parsing and policy live in Service::handle_line — the listener only
// frames lines and enforces the transport-level bounds (oversized
// lines are shed with a BAD_REQUEST reply and a close; a disconnect
// mid-line is a clean close).
//
// Threading: one accept thread per bound socket plus one thread per
// live connection, all joined by stop()/the destructor (no detached
// threads). Threads wake via short poll() timeouts to observe stop().
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "serve/service.hpp"

namespace entk::serve {

class Listener {
 public:
  struct Options {
    /// Unix-domain socket path; "" = don't bind one. An existing
    /// socket file at the path is replaced.
    std::string unix_path;
    /// Loopback TCP port; -1 = don't bind, 0 = ephemeral (read the
    /// chosen port back via tcp_port()).
    int tcp_port = -1;
  };

  /// Binds the requested sockets and starts the accept threads.
  static Result<std::unique_ptr<Listener>> start(Service& service,
                                                 Options options);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Stops accepting, closes every connection and joins all threads.
  /// Idempotent.
  void stop();

  /// The bound TCP port (resolved when Options::tcp_port was 0), or
  /// -1 when no TCP socket was requested.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return unix_path_; }

 private:
  Listener(Service& service, Options options);

  void accept_loop(int listen_fd);
  void serve_connection(int fd);

  Service& service_;
  std::string unix_path_;
  int tcp_port_ = -1;
  std::vector<int> listen_fds_;

  mutable Mutex mutex_{LockRank::kNone};
  bool stopping_ ENTK_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> accept_threads_ ENTK_GUARDED_BY(mutex_);
  std::vector<std::thread> connection_threads_ ENTK_GUARDED_BY(mutex_);

  bool stopping() const ENTK_EXCLUDES(mutex_);
};

}  // namespace entk::serve
