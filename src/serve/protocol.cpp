#include "serve/protocol.hpp"

#include <cmath>

namespace entk::serve {

namespace {

Status bad_request(const std::string& what) {
  return make_error(Errc::kInvalidArgument, what);
}

/// Pulls a required/optional string member out of the request object.
Result<std::string> read_string(const Json& object, std::string_view key,
                                bool required) {
  const Json* member = object.find(key);
  if (member == nullptr || member->is_null()) {
    if (required) {
      return bad_request("missing required member \"" + std::string(key) +
                         "\"");
    }
    return std::string();
  }
  if (!member->is_string()) {
    return bad_request("member \"" + std::string(key) +
                       "\" must be a string");
  }
  return member->as_string();
}

Result<std::uint64_t> read_id(const Json& object) {
  const Json* member = object.find("id");
  if (member == nullptr) return bad_request("missing required member \"id\"");
  if (!member->is_number()) return bad_request("member \"id\" must be a number");
  const double value = member->as_number();
  if (value < 1.0 || value != std::floor(value) || value > 1e15) {
    return bad_request("member \"id\" must be a positive integer");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

const char* verb_name(Verb verb) {
  switch (verb) {
    case Verb::kSubmit: return "SUBMIT";
    case Verb::kStatus: return "STATUS";
    case Verb::kCancel: return "CANCEL";
    case Verb::kResults: return "RESULTS";
    case Verb::kStats: return "STATS";
    case Verb::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

Result<Request> parse_request(std::string_view line) {
  if (line.size() > kMaxLineBytes) {
    return bad_request("request line exceeds " +
                       std::to_string(kMaxLineBytes) + " bytes");
  }
  auto parsed = Json::parse(line, kRequestMaxDepth);
  if (!parsed.ok()) return parsed.status();
  const Json document = parsed.take();
  if (!document.is_object()) {
    return bad_request("request must be a JSON object");
  }
  auto verb_text = read_string(document, "verb", /*required=*/true);
  if (!verb_text.ok()) return verb_text.status();

  Request request;
  const std::string& verb = verb_text.value();
  if (verb == "SUBMIT") {
    request.verb = Verb::kSubmit;
    auto tenant = read_string(document, "tenant", /*required=*/true);
    if (!tenant.ok()) return tenant.status();
    auto workload = read_string(document, "workload", /*required=*/true);
    if (!workload.ok()) return workload.status();
    auto name = read_string(document, "name", /*required=*/false);
    if (!name.ok()) return name.status();
    request.tenant = tenant.take();
    request.workload = workload.take();
    request.name = name.take();
    if (request.tenant.empty()) {
      return bad_request("member \"tenant\" must be non-empty");
    }
    if (request.workload.empty()) {
      return bad_request("member \"workload\" must be non-empty");
    }
    return request;
  }
  if (verb == "STATUS" || verb == "CANCEL" || verb == "RESULTS") {
    request.verb = verb == "STATUS"   ? Verb::kStatus
                   : verb == "CANCEL" ? Verb::kCancel
                                      : Verb::kResults;
    auto id = read_id(document);
    if (!id.ok()) return id.status();
    request.id = id.value();
    return request;
  }
  if (verb == "STATS") {
    request.verb = Verb::kStats;
    return request;
  }
  if (verb == "SHUTDOWN") {
    request.verb = Verb::kShutdown;
    return request;
  }
  return bad_request("unknown verb \"" + verb + "\"");
}

std::string error_reply(std::string_view code, std::string_view reason) {
  Json reply = Json::object();
  reply.set("ok", Json::boolean(false));
  reply.set("error", Json::string(std::string(code)));
  reply.set("reason", Json::string(std::string(reason)));
  return reply.dump();
}

const char* error_code_for(const Status& status) {
  switch (status.code()) {
    case Errc::kInvalidArgument: return "BAD_REQUEST";
    case Errc::kResourceExhausted: return "REJECTED";
    case Errc::kFailedPrecondition: return "QUOTA";
    case Errc::kNotFound: return "NOT_FOUND";
    case Errc::kCancelled: return "UNAVAILABLE";
    default: return "INTERNAL";
  }
}

std::string ok_reply(Json body) {
  Json reply = Json::object();
  reply.set("ok", Json::boolean(true));
  for (const auto& [key, value] : body.members()) {
    reply.set(key, value);
  }
  return reply.dump();
}

}  // namespace entk::serve
