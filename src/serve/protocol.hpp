// The entk-serve wire protocol: newline-delimited JSON frames.
//
// One request per line, one reply per line. Requests are JSON objects
// with a "verb" member; replies always carry "ok" (true/false) and,
// on failure, a machine-readable "error" code plus a human "reason":
//
//   -> {"verb":"SUBMIT","tenant":"alice","workload":"pattern = bag\n..."}
//   <- {"ok":true,"id":7,"state":"QUEUED"}
//   -> {"verb":"STATUS","id":7}
//   <- {"ok":true,"id":7,"state":"RUNNING","units_done":12,...}
//   -> {"verb":"CANCEL","id":7}
//   -> {"verb":"RESULTS","id":7}
//   -> {"verb":"STATS"}
//   -> {"verb":"SHUTDOWN"}
//
// Error codes: BAD_REQUEST (malformed frame/JSON/fields), REJECTED
// (admission control shed the submission), QUOTA (per-tenant limit),
// NOT_FOUND (unknown workload id), UNAVAILABLE (service shutting
// down). See docs/SERVICE.md for the full spec.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "serve/json.hpp"

namespace entk::serve {

/// Hard cap on one request line, newline included. The listener
/// rejects longer lines before parsing (oversized-frame shedding).
inline constexpr std::size_t kMaxLineBytes = 1 << 20;

/// Depth cap handed to the JSON parser for untrusted request frames.
inline constexpr std::size_t kRequestMaxDepth = 16;

enum class Verb {
  kSubmit,
  kStatus,
  kCancel,
  kResults,
  kStats,
  kShutdown,
};

/// "SUBMIT", "STATUS", ... (the wire spelling).
const char* verb_name(Verb verb);

/// One parsed request frame.
struct Request {
  Verb verb = Verb::kStats;
  std::string tenant;    ///< SUBMIT: owning tenant (required).
  std::string name;      ///< SUBMIT: session name (optional).
  std::string workload;  ///< SUBMIT: workload-file text (required).
  std::uint64_t id = 0;  ///< STATUS / CANCEL / RESULTS.
};

/// Parses one request line (without the trailing newline). Every
/// failure is a kInvalidArgument whose message becomes the
/// BAD_REQUEST reason on the wire.
Result<Request> parse_request(std::string_view line);

/// One-line error reply: {"ok":false,"error":CODE,"reason":...}.
std::string error_reply(std::string_view code, std::string_view reason);

/// Maps a service Status to its wire error code (REJECTED, QUOTA,
/// NOT_FOUND, BAD_REQUEST, UNAVAILABLE, INTERNAL).
const char* error_code_for(const Status& status);

/// Serializes a reply body, stamping "ok":true first.
std::string ok_reply(Json body);

}  // namespace entk::serve
