#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/work_stealing_pool.hpp"
#include "core/graph_executor.hpp"
#include "core/parallel_runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace entk::serve {

namespace {

/// Extra rounds of DRR credit an idle-but-throttled tenant may bank;
/// caps the burst it can dump when headroom returns.
constexpr double kDeficitCapRounds = 4.0;

obs::Metrics& metrics() { return obs::Metrics::instance(); }

}  // namespace

const char* workload_state_name(WorkloadState state) {
  switch (state) {
    case WorkloadState::kQueued: return "QUEUED";
    case WorkloadState::kRunning: return "RUNNING";
    case WorkloadState::kDone: return "DONE";
    case WorkloadState::kFailed: return "FAILED";
    case WorkloadState::kCancelled: return "CANCELLED";
  }
  return "?";
}

bool is_terminal(WorkloadState state) {
  return state == WorkloadState::kDone ||
         state == WorkloadState::kFailed ||
         state == WorkloadState::kCancelled;
}

Result<std::unique_ptr<Service>> Service::create(ServiceConfig config) {
  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  auto machine = catalog.find(config.machine);
  if (!machine.ok()) return machine.status();
  if (config.queue_capacity == 0) {
    return make_error(Errc::kInvalidArgument,
                      "queue_capacity must be at least 1");
  }
  return std::unique_ptr<Service>(
      new Service(std::move(config), machine.take()));
}

Service::Service(ServiceConfig config, sim::MachineProfile machine)
    : config_(std::move(config)),
      machine_cores_(machine.total_cores()),
      kernel_registry_(kernels::KernelRegistry::with_builtin_kernels()),
      backend_(std::make_unique<pilot::SimBackend>(std::move(machine))) {
  max_active_ = config_.max_active_sessions != 0
                    ? config_.max_active_sessions
                    : std::max<std::size_t>(4, 2 * core::parallel_threads());
  quantum_ = config_.drr_quantum != 0 ? config_.drr_quantum : 8;
  inflight_budget_ = config_.max_inflight_total != 0
                         ? config_.max_inflight_total
                         : 2 * static_cast<std::size_t>(machine_cores_);
  runtime_ = std::make_unique<core::Runtime>(*backend_, kernel_registry_);
}

Service::~Service() {
  shutdown();
  // The drive thread (if any) is expected to have exited run() before
  // the owner destroys the service; active_ sessions settle through
  // their own destructors otherwise.
}

Service::Tenant& Service::tenant_locked(std::string_view name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant tenant;
    tenant.config = config_.default_tenant;
    it = tenants_.emplace(std::string(name), tenant).first;
  }
  return it->second;
}

Status Service::configure_tenant(std::string_view name,
                                 TenantConfig config) {
  if (!valid_tenant_name(name)) {
    return make_error(Errc::kInvalidArgument,
                      "invalid tenant name \"" + std::string(name) + "\"");
  }
  if (config.weight <= 0.0 || !std::isfinite(config.weight)) {
    return make_error(Errc::kInvalidArgument,
                      "tenant weight must be positive and finite");
  }
  if (config.max_sessions == 0 || config.max_inflight_units == 0) {
    return make_error(Errc::kInvalidArgument,
                      "tenant quotas must be at least 1");
  }
  MutexLock lock(registry_mutex_);
  tenant_locked(name).config = config;
  return Status::ok();
}

Result<std::uint64_t> Service::submit(std::string_view tenant,
                                      core::WorkloadSpec spec,
                                      std::string_view label) {
  if (!valid_tenant_name(tenant)) {
    return make_error(Errc::kInvalidArgument,
                      "invalid tenant name \"" + std::string(tenant) +
                          "\" (want [A-Za-z0-9_.-], 1..64 bytes)");
  }
  Status valid = spec.validate();
  if (!valid.is_ok()) return valid;
  auto resolved = core::resolve_workload(spec, kernel_registry_);
  if (!resolved.ok()) return resolved.status();
  spec = resolved.take();
  if (spec.backend != "sim") {
    return make_error(Errc::kInvalidArgument,
                      "serve runs the sim backend only (backend = sim)");
  }
  if (spec.machine != config_.machine) {
    return make_error(Errc::kInvalidArgument,
                      "this service simulates machine \"" + config_.machine +
                          "\", not \"" + spec.machine + "\"");
  }
  if (spec.cores < 1 ||
      spec.cores > static_cast<Count>(machine_cores_)) {
    return make_error(Errc::kInvalidArgument,
                      "cores = " + std::to_string(spec.cores) +
                          " exceeds the machine's " +
                          std::to_string(machine_cores_) + " cores");
  }

  metrics().counter(obs::WellKnownCounter::kServeSubmitted).add();
  std::shared_ptr<Workload> workload;
  {
    MutexLock lock(mailbox_mutex_);
    if (shutdown_) {
      return make_error(Errc::kCancelled, "service is shutting down");
    }
    MutexLock registry(registry_mutex_);
    Tenant& owner = tenant_locked(tenant);
    ++owner.submitted;
    if (queue_.size() >= config_.queue_capacity) {
      ++owner.rejected;
      metrics().counter(obs::WellKnownCounter::kServeRejected).add();
      return make_error(Errc::kResourceExhausted,
                        "admission queue is full (capacity " +
                            std::to_string(config_.queue_capacity) + ")");
    }
    workload = std::make_shared<Workload>();
    workload->id = next_id_++;
    workload->tenant = tenant;
    workload->label = label;
    workload->session_name = "serve." + std::string(tenant) + "." +
                             std::to_string(workload->id);
    workload->spec = std::move(spec);
    workload->submit_wall = wall_.now();
    workloads_[workload->id] = workload;
    ++owner.accepted;
    ++owner.queued;
    queue_.push_back(workload);
    dirty_ = true;
    mailbox_cv_.notify_all();
  }
  metrics().counter(obs::WellKnownCounter::kServeAccepted).add();
  metrics()
      .counter("serve.tenant." + std::string(tenant) + ".accepted")
      .add();
  update_gauges();
  return workload->id;
}

WorkloadStatus Service::snapshot_locked(const Workload& workload) const {
  WorkloadStatus status;
  status.id = workload.id;
  status.tenant = workload.tenant;
  status.label = workload.label;
  status.session = workload.session_name;
  status.state = workload.state;
  status.dispatched_units = workload.dispatched_units;
  if (workload.first_dispatch_wall >= 0.0) {
    status.submit_latency_seconds =
        workload.first_dispatch_wall - workload.submit_wall;
  }
  status.units_done = workload.units_done;
  status.units_failed = workload.units_failed;
  status.units_cancelled = workload.units_cancelled;
  status.outcome = workload.outcome;
  return status;
}

Result<WorkloadStatus> Service::status(std::uint64_t id) const {
  MutexLock lock(registry_mutex_);
  auto it = workloads_.find(id);
  if (it == workloads_.end()) {
    return make_error(Errc::kNotFound,
                      "no workload with id " + std::to_string(id));
  }
  return snapshot_locked(*it->second);
}

Result<WorkloadStatus> Service::results(std::uint64_t id) const {
  MutexLock lock(registry_mutex_);
  auto it = workloads_.find(id);
  if (it == workloads_.end()) {
    return make_error(Errc::kNotFound,
                      "no workload with id " + std::to_string(id));
  }
  if (!is_terminal(it->second->state)) {
    return make_error(Errc::kFailedPrecondition,
                      "workload " + std::to_string(id) + " is still " +
                          workload_state_name(it->second->state));
  }
  return snapshot_locked(*it->second);
}

Status Service::cancel(std::uint64_t id) {
  MutexLock lock(mailbox_mutex_);
  MutexLock registry(registry_mutex_);
  auto it = workloads_.find(id);
  if (it == workloads_.end()) {
    return make_error(Errc::kNotFound,
                      "no workload with id " + std::to_string(id));
  }
  Workload& workload = *it->second;
  if (is_terminal(workload.state)) {
    return make_error(Errc::kFailedPrecondition,
                      "workload " + std::to_string(id) +
                          " already settled (" +
                          workload_state_name(workload.state) + ")");
  }
  if (workload.state == WorkloadState::kQueued) {
    // Never admitted: settle synchronously, no drive-thread state.
    for (auto queued = queue_.begin(); queued != queue_.end(); ++queued) {
      if ((*queued)->id == id) {
        queue_.erase(queued);
        break;
      }
    }
    workload.state = WorkloadState::kCancelled;
    workload.outcome =
        make_error(Errc::kCancelled, "cancelled while queued");
    Tenant& owner = tenant_locked(workload.tenant);
    if (owner.queued > 0) --owner.queued;
    ++owner.cancelled;
    metrics().counter(obs::WellKnownCounter::kServeCancelled).add();
    return Status::ok();
  }
  // Running: the drive thread owns the session — hand it the abort.
  pending_cancels_.push_back(id);
  dirty_ = true;
  mailbox_cv_.notify_all();
  return Status::ok();
}

ServiceStats Service::stats() const {
  ServiceStats stats;
  stats.machine = config_.machine;
  stats.machine_cores = static_cast<std::size_t>(machine_cores_);
  stats.queue_capacity = config_.queue_capacity;
  stats.max_active_sessions = max_active_;
  MutexLock lock(mailbox_mutex_);
  stats.queue_depth = queue_.size();
  stats.active_sessions = running_count_;
  MutexLock registry(registry_mutex_);
  for (const auto& [name, tenant] : tenants_) {
    TenantStats entry;
    entry.name = name;
    entry.weight = tenant.config.weight;
    entry.submitted = tenant.submitted;
    entry.accepted = tenant.accepted;
    entry.rejected = tenant.rejected;
    entry.completed = tenant.completed;
    entry.failed = tenant.failed;
    entry.cancelled = tenant.cancelled;
    entry.dispatched_units = tenant.dispatched_units;
    entry.contended_dispatched_units = tenant.contended_dispatched_units;
    entry.active_sessions = tenant.active_sessions;
    entry.peak_active_sessions = tenant.peak_active_sessions;
    entry.queued = tenant.queued;
    stats.submitted += tenant.submitted;
    stats.accepted += tenant.accepted;
    stats.rejected += tenant.rejected;
    stats.completed += tenant.completed;
    stats.failed += tenant.failed;
    stats.cancelled += tenant.cancelled;
    stats.tenants.push_back(std::move(entry));
  }
  return stats;
}

void Service::shutdown() {
  MutexLock lock(mailbox_mutex_);
  shutdown_ = true;
  mailbox_cv_.notify_all();
  idle_cv_.notify_all();
}

bool Service::shutting_down() const {
  MutexLock lock(mailbox_mutex_);
  return shutdown_;
}

void Service::drain() {
  MutexLock lock(mailbox_mutex_);
  while (!shutdown_ && (!queue_.empty() || running_count_ > 0 ||
                        !pending_cancels_.empty() || dirty_)) {
    idle_cv_.wait(mailbox_mutex_);
  }
}

bool Service::mailbox_dirty() const {
  MutexLock lock(mailbox_mutex_);
  return dirty_ || shutdown_;
}

void Service::update_gauges() {
  std::size_t depth = 0;
  std::size_t running = 0;
  {
    MutexLock lock(mailbox_mutex_);
    depth = queue_.size();
    running = running_count_;
  }
  metrics()
      .gauge(obs::WellKnownGauge::kServeQueueDepth)
      .set(static_cast<double>(depth));
  metrics()
      .gauge(obs::WellKnownGauge::kServeActiveSessions)
      .set(static_cast<double>(running));
}

// --- drive loop -------------------------------------------------------

void Service::run() {
  for (;;) {
    {
      MutexLock lock(mailbox_mutex_);
      while (!shutdown_ && !dirty_ && queue_.empty() &&
             pending_cancels_.empty() && active_.empty()) {
        idle_cv_.notify_all();
        mailbox_cv_.wait(mailbox_mutex_);
      }
      if (shutdown_) break;
    }
    process_mailbox();
    if (!active_.empty()) {
      drive_active();
      reap_finished();
    }
    {
      MutexLock lock(mailbox_mutex_);
      if (queue_.empty() && running_count_ == 0 &&
          pending_cancels_.empty() && !dirty_) {
        idle_cv_.notify_all();
      }
    }
  }

  // Shutdown: shed the queue, abort in-flight runs, settle, report.
  std::deque<std::shared_ptr<Workload>> queued;
  {
    MutexLock lock(mailbox_mutex_);
    queued.swap(queue_);
    pending_cancels_.clear();
    dirty_ = false;
  }
  for (const auto& workload : queued) {
    finish_workload(workload, WorkloadState::kCancelled,
                    make_error(Errc::kCancelled, "service shut down"),
                    nullptr);
  }
  for (const auto& workload : active_) {
    if (workload->session != nullptr) {
      (void)workload->session->cancel_run();
    }
  }
  if (!active_.empty()) {
    obs::ScopedTraceClock trace_clock(backend_->clock());
    const auto settled = [this] {
      advance_and_flush();
      return std::all_of(active_.begin(), active_.end(),
                         [](const std::shared_ptr<Workload>& workload) {
                           return workload->session == nullptr ||
                                  workload->session->run_finished();
                         });
    };
    if (!settled()) (void)backend_->drive_until(settled);
    reap_finished();
  }
  update_gauges();
  {
    MutexLock lock(mailbox_mutex_);
    idle_cv_.notify_all();
  }
}

void Service::process_mailbox() {
  std::vector<std::uint64_t> cancels;
  {
    MutexLock lock(mailbox_mutex_);
    dirty_ = false;
    cancels.swap(pending_cancels_);
  }
  for (const std::uint64_t id : cancels) {
    for (const auto& workload : active_) {
      if (workload->id == id && workload->session != nullptr) {
        (void)workload->session->cancel_run();
        break;
      }
    }
  }
  while (auto workload = pop_admissible()) {
    start_workload(workload);
  }
  update_gauges();
}

std::shared_ptr<Service::Workload> Service::pop_admissible() {
  MutexLock lock(mailbox_mutex_);
  if (active_.size() >= max_active_) return nullptr;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const std::shared_ptr<Workload>& candidate = *it;
    bool open = committed_cores_ + candidate->spec.cores <=
                static_cast<Count>(machine_cores_);
    if (open) {
      MutexLock registry(registry_mutex_);
      const Tenant& owner = tenant_locked(candidate->tenant);
      open = owner.active_sessions < owner.config.max_sessions;
    }
    // A closed gate skips this entry, not the whole queue: a narrow
    // workload behind a wide one still admits (no head-of-line block).
    if (!open) continue;
    std::shared_ptr<Workload> taken = candidate;
    queue_.erase(it);
    return taken;
  }
  return nullptr;
}

void Service::start_workload(const std::shared_ptr<Workload>& workload) {
  core::SessionOptions options;
  options.name = workload->session_name;
  options.resources.cores = workload->spec.cores;
  options.resources.runtime = workload->spec.runtime;
  options.resources.scheduler_policy = workload->spec.scheduler;
  // Zero toolkit overheads: admitting one tenant's workload must not
  // charge the shared virtual clock that every other tenant rides.
  options.resources.init_overhead = 0.0;
  options.resources.allocate_overhead = 0.0;
  options.resources.deallocate_overhead = 0.0;
  options.resources.per_task_overhead = 0.0;

  auto session = runtime_->create_session(std::move(options));
  if (!session.ok()) {
    finish_workload(workload, WorkloadState::kFailed, session.status(),
                    nullptr);
    return;
  }
  workload->session = session.take();
  const Status allocated = workload->session->allocate();
  if (!allocated.is_ok()) {
    finish_workload(workload, WorkloadState::kFailed, allocated, nullptr);
    return;
  }
  auto pattern = core::build_pattern(workload->spec);
  if (!pattern.ok()) {
    finish_workload(workload, WorkloadState::kFailed, pattern.status(),
                    nullptr);
    return;
  }
  workload->pattern = pattern.take();
  // Serve sessions start deferred: even the initial frontier stays in
  // the pending batch, so the fair-share pass — not submission order —
  // decides every dispatch.
  const Status started =
      workload->session->start_run(*workload->pattern, /*deferred=*/true);
  if (!started.is_ok()) {
    finish_workload(workload, WorkloadState::kFailed, started, nullptr);
    return;
  }
  workload->executor = workload->session->run_executor();
  committed_cores_ += workload->spec.cores;
  active_.push_back(workload);

  double queue_wait = 0.0;
  {
    MutexLock registry(registry_mutex_);
    workload->state = WorkloadState::kRunning;
    workload->start_wall = wall_.now();
    queue_wait = workload->start_wall - workload->submit_wall;
    Tenant& owner = tenant_locked(workload->tenant);
    if (owner.queued > 0) --owner.queued;
    ++owner.active_sessions;
    owner.peak_active_sessions =
        std::max(owner.peak_active_sessions, owner.active_sessions);
  }
  {
    MutexLock lock(mailbox_mutex_);
    ++running_count_;
  }
  metrics()
      .histogram(obs::WellKnownHistogram::kServeQueueWaitSeconds)
      .observe(queue_wait);
  update_gauges();
}

void Service::drive_active() {
  obs::ScopedTraceClock trace_clock(backend_->clock());
  const auto wake = [this] {
    advance_and_flush();
    if (mailbox_dirty()) return true;
    return std::any_of(active_.begin(), active_.end(),
                       [](const std::shared_ptr<Workload>& workload) {
                         return workload->session != nullptr &&
                                workload->session->run_finished();
                       });
  };
  if (wake()) return;
  const Status driven = backend_->drive_until(wake);
  if (driven.is_ok()) return;
  // The shared world refused to advance (engine deadlock / timeout):
  // no session can settle, so fail every in-flight workload with the
  // drive verdict.
  for (const auto& workload : active_) {
    if (workload->executor != nullptr) {
      workload->executor->set_deferred(false);
      workload->executor = nullptr;
    }
    if (workload->session != nullptr && workload->session->run_active()) {
      (void)workload->session->finish_run(driven);
    }
    finish_workload(workload, WorkloadState::kFailed, driven, nullptr);
  }
  active_.clear();
}

void Service::advance_and_flush() {
  std::vector<core::GraphExecutor*> executors;
  executors.reserve(active_.size());
  for (const auto& workload : active_) {
    if (workload->executor != nullptr) {
      executors.push_back(workload->executor);
    }
  }
  if (executors.empty()) return;
  WorkStealingPool* pool = core::parallel_pool();
  for (;;) {
    // Phase 1: advance every graph locally (no submissions yet). The
    // graphs share no state, so a pool fans them out; the predicate
    // runs between engine steps, so no settlement is mid-flight.
    if (pool != nullptr && executors.size() > 1) {
      pool->parallel_for(executors.size(),
                         [&executors](std::size_t i) {
                           executors[i]->advance_local();
                         });
    } else {
      for (core::GraphExecutor* executor : executors) {
        executor->advance_local();
      }
    }

    // Phase 2: per-tenant backlog (admission order within a tenant)
    // and in-flight totals against the global dispatch budget.
    std::map<std::string, std::vector<Workload*>> backlog;
    std::map<std::string, std::size_t> inflight_by_tenant;
    std::size_t inflight_total = 0;
    for (const auto& workload : active_) {
      if (workload->session != nullptr) {
        const std::size_t inflight =
            workload->session->unit_manager()->inflight_units();
        inflight_by_tenant[workload->tenant] += inflight;
        inflight_total += inflight;
      }
      if (workload->executor != nullptr &&
          workload->executor->pending_submits() > 0) {
        backlog[workload->tenant].push_back(workload.get());
      }
    }
    if (backlog.empty()) return;
    std::size_t global_headroom = inflight_budget_ > inflight_total
                                      ? inflight_budget_ - inflight_total
                                      : 0;
    if (global_headroom == 0) return;
    // Contended round: two or more tenants want the budget at once —
    // exactly when the dispatch order is a policy decision. The
    // fairness-dispersion bench metric counts only these rounds.
    const bool contended = backlog.size() >= 2;

    // Service order: rotate which tenant gets first crack at the
    // global budget. Deficits even out credit across rounds; the
    // rotation evens out the tie-break when the budget runs dry
    // mid-round.
    std::vector<std::string> order;
    order.reserve(backlog.size());
    for (const auto& [name, ready] : backlog) order.push_back(name);
    std::rotate(order.begin(),
                order.begin() +
                    static_cast<std::ptrdiff_t>(drr_cursor_ % order.size()),
                order.end());
    ++drr_cursor_;

    // Phase 3: weighted deficit round-robin over the backlogged
    // tenants, each bounded by its own in-flight headroom and by
    // what's left of the global budget.
    std::size_t flushed_total = 0;
    {
      MutexLock registry(registry_mutex_);
      for (const std::string& name : order) {
        if (global_headroom == 0) break;
        const std::vector<Workload*>& ready = backlog[name];
        Tenant& owner = tenant_locked(name);
        const double credit = owner.config.weight *
                              static_cast<double>(quantum_);
        owner.deficit =
            std::min(owner.deficit + credit, credit * kDeficitCapRounds);
        const std::size_t inflight = inflight_by_tenant[name];
        const std::size_t headroom =
            owner.config.max_inflight_units > inflight
                ? owner.config.max_inflight_units - inflight
                : 0;
        std::size_t allowance = std::min(
            {static_cast<std::size_t>(owner.deficit), headroom,
             global_headroom});
        for (Workload* workload : ready) {
          if (allowance == 0) break;
          const std::size_t flushed =
              workload->executor->flush_submit_bounded(allowance);
          if (flushed == 0) continue;
          allowance -= flushed;
          global_headroom -= flushed;
          inflight_by_tenant[name] += flushed;
          owner.deficit -= static_cast<double>(flushed);
          flushed_total += flushed;
          workload->dispatched_units += flushed;
          owner.dispatched_units += flushed;
          if (contended) owner.contended_dispatched_units += flushed;
          if (workload->first_dispatch_wall < 0.0) {
            workload->first_dispatch_wall = wall_.now();
            metrics()
                .histogram(
                    obs::WellKnownHistogram::kServeSubmitLatencySeconds)
                .observe(workload->first_dispatch_wall -
                         workload->submit_wall);
          }
          metrics()
              .counter(obs::WellKnownCounter::kServeDispatchedUnits)
              .add(flushed);
          metrics()
              .counter("serve.tenant." + name + ".dispatched_units")
              .add(flushed);
        }
        // A drained tenant keeps no credit: deficits meter contention,
        // not idleness.
        const bool drained = std::all_of(
            ready.begin(), ready.end(), [](const Workload* workload) {
              return workload->executor->pending_submits() == 0;
            });
        if (drained) owner.deficit = 0.0;
      }
    }
    // Nothing moved: every backlogged tenant is at its in-flight cap
    // (or out of credit). Let the engine settle units to open headroom.
    if (flushed_total == 0) return;
  }
}

void Service::reap_finished() {
  for (auto it = active_.begin(); it != active_.end();) {
    const std::shared_ptr<Workload>& workload = *it;
    if (workload->session == nullptr ||
        !workload->session->run_finished()) {
      ++it;
      continue;
    }
    if (workload->executor != nullptr) {
      workload->executor->set_deferred(false);
      workload->executor = nullptr;
    }
    auto report = workload->session->finish_run(Status::ok());
    if (!report.ok()) {
      finish_workload(workload, WorkloadState::kFailed, report.status(),
                      nullptr);
    } else {
      const core::RunReport& run = report.value();
      const WorkloadState state =
          run.outcome.is_ok() ? WorkloadState::kDone
          : run.outcome.code() == Errc::kCancelled
              ? WorkloadState::kCancelled
              : WorkloadState::kFailed;
      finish_workload(workload, state, run.outcome, &run);
    }
    it = active_.erase(it);
  }
  update_gauges();
}

void Service::finish_workload(const std::shared_ptr<Workload>& workload,
                              WorkloadState state, Status outcome,
                              const core::RunReport* report) {
  if (workload->executor != nullptr) {
    workload->executor->set_deferred(false);
    workload->executor = nullptr;
  }
  if (workload->session != nullptr) {
    (void)workload->session->deallocate();
    workload->session.reset();
  }
  workload->pattern.reset();

  WorkloadState previous;
  {
    MutexLock registry(registry_mutex_);
    previous = workload->state;
    workload->state = state;
    workload->outcome = std::move(outcome);
    if (report != nullptr) {
      workload->units_done = report->units_done;
      workload->units_failed = report->units_failed;
      workload->units_cancelled = report->units_cancelled;
    }
    Tenant& owner = tenant_locked(workload->tenant);
    if (previous == WorkloadState::kQueued) {
      if (owner.queued > 0) --owner.queued;
    } else if (previous == WorkloadState::kRunning) {
      if (owner.active_sessions > 0) --owner.active_sessions;
    }
    switch (state) {
      case WorkloadState::kDone: ++owner.completed; break;
      case WorkloadState::kFailed: ++owner.failed; break;
      case WorkloadState::kCancelled: ++owner.cancelled; break;
      default: break;
    }
  }
  if (previous == WorkloadState::kRunning) {
    committed_cores_ -= workload->spec.cores;
    MutexLock lock(mailbox_mutex_);
    if (running_count_ > 0) --running_count_;
  }
  switch (state) {
    case WorkloadState::kDone:
      metrics().counter(obs::WellKnownCounter::kServeCompleted).add();
      break;
    case WorkloadState::kCancelled:
      metrics().counter(obs::WellKnownCounter::kServeCancelled).add();
      break;
    default:
      break;
  }
}

// --- protocol ---------------------------------------------------------

std::string Service::handle_line(std::string_view line) {
  auto parsed = parse_request(line);
  if (!parsed.ok()) {
    return error_reply("BAD_REQUEST", parsed.status().message());
  }
  const Request request = parsed.take();
  switch (request.verb) {
    case Verb::kSubmit: {
      auto spec = core::parse_workload(request.workload);
      if (!spec.ok()) {
        return error_reply("BAD_REQUEST",
                           "workload: " + spec.status().message());
      }
      auto id = submit(request.tenant, spec.take(), request.name);
      if (!id.ok()) {
        return error_reply(error_code_for(id.status()),
                           id.status().message());
      }
      Json body = Json::object();
      body.set("id", Json::number(static_cast<double>(id.value())));
      body.set("state",
               Json::string(workload_state_name(WorkloadState::kQueued)));
      return ok_reply(std::move(body));
    }
    case Verb::kStatus:
    case Verb::kResults: {
      auto snapshot = request.verb == Verb::kStatus
                          ? status(request.id)
                          : results(request.id);
      if (!snapshot.ok()) {
        return error_reply(error_code_for(snapshot.status()),
                           snapshot.status().message());
      }
      const WorkloadStatus& workload = snapshot.value();
      Json body = Json::object();
      body.set("id", Json::number(static_cast<double>(workload.id)));
      body.set("tenant", Json::string(workload.tenant));
      if (!workload.label.empty()) {
        body.set("name", Json::string(workload.label));
      }
      body.set("session", Json::string(workload.session));
      body.set("state",
               Json::string(workload_state_name(workload.state)));
      body.set("dispatched_units",
               Json::number(
                   static_cast<double>(workload.dispatched_units)));
      if (workload.submit_latency_seconds >= 0.0) {
        body.set("submit_latency_seconds",
                 Json::number(workload.submit_latency_seconds));
      }
      if (is_terminal(workload.state)) {
        body.set("units_done",
                 Json::number(static_cast<double>(workload.units_done)));
        body.set("units_failed",
                 Json::number(
                     static_cast<double>(workload.units_failed)));
        body.set("units_cancelled",
                 Json::number(
                     static_cast<double>(workload.units_cancelled)));
        body.set("outcome", Json::string(workload.outcome.to_string()));
      }
      return ok_reply(std::move(body));
    }
    case Verb::kCancel: {
      const Status cancelled = cancel(request.id);
      if (!cancelled.is_ok()) {
        return error_reply(error_code_for(cancelled),
                           cancelled.message());
      }
      Json body = Json::object();
      body.set("id", Json::number(static_cast<double>(request.id)));
      return ok_reply(std::move(body));
    }
    case Verb::kStats: {
      const ServiceStats service = stats();
      Json body = Json::object();
      body.set("machine", Json::string(service.machine));
      body.set("machine_cores",
               Json::number(static_cast<double>(service.machine_cores)));
      body.set("queue_depth",
               Json::number(static_cast<double>(service.queue_depth)));
      body.set("queue_capacity",
               Json::number(
                   static_cast<double>(service.queue_capacity)));
      body.set("active_sessions",
               Json::number(
                   static_cast<double>(service.active_sessions)));
      body.set("max_active_sessions",
               Json::number(
                   static_cast<double>(service.max_active_sessions)));
      body.set("submitted",
               Json::number(static_cast<double>(service.submitted)));
      body.set("accepted",
               Json::number(static_cast<double>(service.accepted)));
      body.set("rejected",
               Json::number(static_cast<double>(service.rejected)));
      body.set("completed",
               Json::number(static_cast<double>(service.completed)));
      body.set("failed",
               Json::number(static_cast<double>(service.failed)));
      body.set("cancelled",
               Json::number(static_cast<double>(service.cancelled)));
      Json tenants = Json::array();
      for (const TenantStats& tenant : service.tenants) {
        Json entry = Json::object();
        entry.set("name", Json::string(tenant.name));
        entry.set("weight", Json::number(tenant.weight));
        entry.set("submitted",
                  Json::number(static_cast<double>(tenant.submitted)));
        entry.set("accepted",
                  Json::number(static_cast<double>(tenant.accepted)));
        entry.set("rejected",
                  Json::number(static_cast<double>(tenant.rejected)));
        entry.set("completed",
                  Json::number(static_cast<double>(tenant.completed)));
        entry.set("failed",
                  Json::number(static_cast<double>(tenant.failed)));
        entry.set("cancelled",
                  Json::number(static_cast<double>(tenant.cancelled)));
        entry.set("dispatched_units",
                  Json::number(
                      static_cast<double>(tenant.dispatched_units)));
        entry.set("contended_dispatched_units",
                  Json::number(static_cast<double>(
                      tenant.contended_dispatched_units)));
        entry.set("active_sessions",
                  Json::number(
                      static_cast<double>(tenant.active_sessions)));
        entry.set("peak_active_sessions",
                  Json::number(
                      static_cast<double>(tenant.peak_active_sessions)));
        entry.set("queued",
                  Json::number(static_cast<double>(tenant.queued)));
        tenants.push_back(std::move(entry));
      }
      body.set("tenants", std::move(tenants));
      return ok_reply(std::move(body));
    }
    case Verb::kShutdown: {
      shutdown();
      Json body = Json::object();
      body.set("state", Json::string("SHUTTING_DOWN"));
      return ok_reply(std::move(body));
    }
  }
  return error_reply("INTERNAL", "unhandled verb");
}

}  // namespace entk::serve
