// The entk-serve core: a multi-tenant ensemble service.
//
// One Service owns one simulated machine (SimBackend), one Runtime
// and one admission queue, and runs N tenants' workloads as named
// concurrent sessions over the shared pilot pool. Three concerns,
// three mechanisms:
//
//   admission control   SUBMIT lands in a bounded queue; a full queue
//                       sheds the request with REJECTED instead of
//                       absorbing unbounded work. The drive loop
//                       admits queued workloads FIFO (skipping over
//                       entries whose gates are closed — no
//                       head-of-line blocking) whenever global
//                       session, per-tenant session and machine-core
//                       gates allow.
//   per-tenant quotas   max concurrent sessions and max in-flight
//                       units per tenant, enforced at admission and
//                       at dispatch respectively.
//   weighted fair-share deficit round-robin over frontier dispatch:
//                       every running session's graph executor defers
//                       its pumping, and the drive predicate advances
//                       all graphs in parallel (work-stealing pool),
//                       then flushes ready nodes tenant-by-tenant in
//                       weight-proportional quanta, bounded by a
//                       global in-flight budget (the scarce resource
//                       the arbitration divides).
//
// Threading: listener/client threads call submit/status/cancel/
// results/stats/handle_line; ONE drive thread calls run() (or the
// test-friendly drain()) and is the only thread that touches the
// Runtime, the backend and the sessions. The two service mutexes are
// the outermost locks in the process (LockRank kServeMailbox <
// kServeRegistry < everything the runtime takes).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "core/session.hpp"
#include "core/workload_file.hpp"
#include "kernels/registry.hpp"
#include "pilot/sim_backend.hpp"
#include "serve/tenant.hpp"
#include "sim/machine.hpp"

namespace entk::serve {

enum class WorkloadState {
  kQueued,     ///< Accepted, waiting for admission.
  kRunning,    ///< Admitted: session allocated, pattern in flight.
  kDone,       ///< Settled successfully.
  kFailed,     ///< Settled with a failure outcome.
  kCancelled,  ///< Cancelled while queued or in flight.
};

/// "QUEUED", "RUNNING", ... (the wire spelling).
const char* workload_state_name(WorkloadState state);
bool is_terminal(WorkloadState state);

/// Client-visible snapshot of one workload.
struct WorkloadStatus {
  std::uint64_t id = 0;
  std::string tenant;
  std::string label;    ///< Client-supplied name ("" if none).
  std::string session;  ///< Session name the run executes under.
  WorkloadState state = WorkloadState::kQueued;
  std::uint64_t dispatched_units = 0;
  /// Wall seconds from SUBMIT to the first unit dispatch; < 0 until
  /// the workload dispatches.
  double submit_latency_seconds = -1.0;
  // Terminal-only unit tallies (0 while queued/running).
  std::size_t units_done = 0;
  std::size_t units_failed = 0;
  std::size_t units_cancelled = 0;
  Status outcome;  ///< Terminal only; ok() until then.
};

/// Service-wide snapshot (STATS verb).
struct ServiceStats {
  std::string machine;
  std::size_t machine_cores = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t active_sessions = 0;
  std::size_t max_active_sessions = 0;
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::vector<TenantStats> tenants;  ///< Sorted by name.
};

struct ServiceConfig {
  /// Simulated machine every workload runs on (workloads must name it,
  /// or "localhost" by default).
  std::string machine = "localhost";
  /// Admission queue bound; a full queue REJECTs further SUBMITs.
  std::size_t queue_capacity = 256;
  /// Max concurrently running sessions across all tenants.
  /// 0 = derive: max(4, 2 * core::parallel_threads()).
  std::size_t max_active_sessions = 0;
  /// Fair-share quantum: frontier nodes credited per tenant per DRR
  /// round, scaled by the tenant weight. 0 = derive (8).
  std::size_t drr_quantum = 0;
  /// Global in-flight dispatch budget: the DRR pass stops flushing
  /// once this many units are dispatched-but-unsettled across ALL
  /// tenants. This is the scarce resource fair-share arbitrates — it
  /// keeps one tenant's flood from monopolising the shared engine.
  /// 0 = derive: 2 * machine cores.
  std::size_t max_inflight_total = 0;
  /// Policy for tenants not explicitly configured.
  TenantConfig default_tenant;
};

class Service {
 public:
  /// Builds the backend, runtime and kernel registry for
  /// `config.machine`. Fails when the machine is unknown.
  static Result<std::unique_ptr<Service>> create(ServiceConfig config);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // --- client-thread API (any thread) ---

  /// Admission: validates the spec against this service's machine and
  /// enqueues it. kResourceExhausted = queue full (wire REJECTED);
  /// kInvalidArgument = malformed (wire BAD_REQUEST). Returns the
  /// workload id.
  Result<std::uint64_t> submit(std::string_view tenant,
                               core::WorkloadSpec spec,
                               std::string_view label = "")
      ENTK_EXCLUDES(mailbox_mutex_, registry_mutex_);

  Result<WorkloadStatus> status(std::uint64_t id) const
      ENTK_EXCLUDES(registry_mutex_);

  /// Queued workloads cancel synchronously; running ones are handed to
  /// the drive thread (state stays RUNNING until the abort settles).
  /// kFailedPrecondition when already terminal.
  Status cancel(std::uint64_t id)
      ENTK_EXCLUDES(mailbox_mutex_, registry_mutex_);

  /// Terminal outcome + unit tallies; kFailedPrecondition while the
  /// workload is still queued/running.
  Result<WorkloadStatus> results(std::uint64_t id) const
      ENTK_EXCLUDES(registry_mutex_);

  ServiceStats stats() const
      ENTK_EXCLUDES(mailbox_mutex_, registry_mutex_);

  /// Creates or updates a tenant's policy.
  Status configure_tenant(std::string_view name, TenantConfig config)
      ENTK_EXCLUDES(registry_mutex_);

  /// Protocol entry point: one request line in, one reply line out
  /// (no trailing newline). Never throws, never returns an empty
  /// string — every malformed input maps to an error reply. The
  /// listener calls this per line; tests call it socket-free.
  std::string handle_line(std::string_view line);

  /// Asks the drive loop to stop: queued workloads are cancelled,
  /// running ones aborted and settled, then run() returns.
  void shutdown() ENTK_EXCLUDES(mailbox_mutex_);
  bool shutting_down() const ENTK_EXCLUDES(mailbox_mutex_);

  // --- drive-thread API (exactly one thread) ---

  /// The service main loop: admits, drives, reaps until shutdown().
  void run();

  /// Blocks until the queue is empty and no session is running (or
  /// shutdown). Call from a client thread while another thread is in
  /// run(); tests and the bench use it as a completion barrier.
  void drain() ENTK_EXCLUDES(mailbox_mutex_);

  const std::string& machine_name() const { return config_.machine; }
  Count machine_cores() const { return machine_cores_; }
  const ServiceConfig& config() const { return config_; }

 private:
  /// One submitted workload, queued → running → terminal.
  struct Workload {
    std::uint64_t id = 0;
    std::string tenant;
    std::string label;
    std::string session_name;
    core::WorkloadSpec spec;

    // Guarded by registry_mutex_ (read by client threads).
    WorkloadState state = WorkloadState::kQueued;
    double submit_wall = 0.0;
    double start_wall = -1.0;
    double first_dispatch_wall = -1.0;
    std::uint64_t dispatched_units = 0;
    std::size_t units_done = 0;
    std::size_t units_failed = 0;
    std::size_t units_cancelled = 0;
    Status outcome;

    // Drive-thread only.
    std::shared_ptr<core::Session> session;
    std::unique_ptr<core::ExecutionPattern> pattern;
    core::GraphExecutor* executor = nullptr;
  };

  /// Tenant policy + tallies; guarded by registry_mutex_ except
  /// `deficit`, which only the drive thread touches.
  struct Tenant {
    TenantConfig config;
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t dispatched_units = 0;
    std::uint64_t contended_dispatched_units = 0;
    std::size_t active_sessions = 0;
    std::size_t peak_active_sessions = 0;
    std::size_t queued = 0;
    double deficit = 0.0;
  };

  explicit Service(ServiceConfig config, sim::MachineProfile machine);

  Tenant& tenant_locked(std::string_view name)
      ENTK_REQUIRES(registry_mutex_);
  WorkloadStatus snapshot_locked(const Workload& workload) const
      ENTK_REQUIRES(registry_mutex_);

  // Drive-loop stages (drive thread only).
  void process_mailbox();
  std::shared_ptr<Workload> pop_admissible()
      ENTK_EXCLUDES(mailbox_mutex_, registry_mutex_);
  void start_workload(const std::shared_ptr<Workload>& workload);
  void drive_active();
  /// The fair-share heart: advance every running graph, then flush
  /// ready nodes per tenant in weighted DRR quanta, bounded by each
  /// tenant's in-flight-unit headroom.
  void advance_and_flush();
  void reap_finished();
  void finish_workload(const std::shared_ptr<Workload>& workload,
                       WorkloadState state, Status outcome,
                       const core::RunReport* report);
  void update_gauges() ENTK_EXCLUDES(mailbox_mutex_);
  bool mailbox_dirty() const ENTK_EXCLUDES(mailbox_mutex_);

  ServiceConfig config_;
  Count machine_cores_ = 0;
  std::size_t max_active_ = 0;
  std::size_t quantum_ = 0;
  WallClock wall_;

  kernels::KernelRegistry kernel_registry_;
  std::unique_ptr<pilot::SimBackend> backend_;
  std::unique_ptr<core::Runtime> runtime_;

  /// Admission mailbox: what client threads hand the drive thread.
  mutable Mutex mailbox_mutex_{LockRank::kServeMailbox};
  CondVar mailbox_cv_;  ///< Signals the drive thread.
  CondVar idle_cv_;     ///< Signals drain() waiters.
  std::deque<std::shared_ptr<Workload>> queue_
      ENTK_GUARDED_BY(mailbox_mutex_);
  std::vector<std::uint64_t> pending_cancels_
      ENTK_GUARDED_BY(mailbox_mutex_);
  bool dirty_ ENTK_GUARDED_BY(mailbox_mutex_) = false;
  bool shutdown_ ENTK_GUARDED_BY(mailbox_mutex_) = false;
  std::size_t running_count_ ENTK_GUARDED_BY(mailbox_mutex_) = 0;

  /// Workload + tenant registry: what client threads read back.
  mutable Mutex registry_mutex_{LockRank::kServeRegistry};
  std::uint64_t next_id_ ENTK_GUARDED_BY(registry_mutex_) = 1;
  std::map<std::uint64_t, std::shared_ptr<Workload>> workloads_
      ENTK_GUARDED_BY(registry_mutex_);
  std::map<std::string, Tenant, std::less<>> tenants_
      ENTK_GUARDED_BY(registry_mutex_);

  // Drive-thread only.
  std::vector<std::shared_ptr<Workload>> active_;
  Count committed_cores_ = 0;
  std::size_t inflight_budget_ = 0;
  /// Rotates which backlogged tenant gets first crack at the global
  /// budget each DRR round (deficits even out credit; rotation evens
  /// out tie-breaks).
  std::size_t drr_cursor_ = 0;
};

}  // namespace entk::serve
