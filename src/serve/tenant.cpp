#include "serve/tenant.hpp"

namespace entk::serve {

bool valid_tenant_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace entk::serve
