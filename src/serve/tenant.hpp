// Per-tenant service policy and accounting.
//
// A tenant is the unit of isolation in entk-serve: quotas cap how much
// of the shared pilot pool one client can hold, and the fair-share
// weight sets its share of unit dispatch when the machine is
// contended. Tenants are created on first submission with the
// service-wide default config; `entk-serve --tenant` /
// Service::configure_tenant override per name.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace entk::serve {

/// Admission and fair-share policy for one tenant.
struct TenantConfig {
  /// Fair-share weight: relative dispatch rate under contention
  /// (deficit round-robin credits weight * quantum nodes per round).
  double weight = 1.0;
  /// Max concurrently RUNNING sessions; further submissions wait in
  /// the admission queue.
  std::size_t max_sessions = 4;
  /// Max units in flight across the tenant's running sessions; the
  /// fair-share scheduler stops flushing new frontier nodes at the
  /// cap until settlements free headroom.
  std::size_t max_inflight_units = 4096;
};

/// One tenant's lifetime tallies (snapshot via Service::stats()).
struct TenantStats {
  std::string name;
  double weight = 1.0;
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t dispatched_units = 0;
  /// Units dispatched while every live tenant had backlog — the
  /// numerator of the fairness-dispersion bench metric (max/min of
  /// this across tenants under equal weights).
  std::uint64_t contended_dispatched_units = 0;
  std::size_t active_sessions = 0;
  std::size_t peak_active_sessions = 0;
  std::size_t queued = 0;
};

/// Tenant names travel on the wire and become session/uid/metric name
/// fragments, so the charset is tight: [A-Za-z0-9_.-], 1..64 bytes.
bool valid_tenant_name(std::string_view name);

}  // namespace entk::serve
