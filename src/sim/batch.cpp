#include "sim/batch.hpp"

#include <cmath>

#include "common/log.hpp"

namespace entk::sim {

const char* batch_job_state_name(BatchJobState state) {
  switch (state) {
    case BatchJobState::kQueued: return "queued";
    case BatchJobState::kRunning: return "running";
    case BatchJobState::kCompleted: return "completed";
    case BatchJobState::kExpired: return "expired";
    case BatchJobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

BatchQueue::BatchQueue(Engine& engine, Cluster& cluster, BatchPolicy policy)
    : engine_(engine), cluster_(cluster), policy_(policy) {}

Result<BatchJobId> BatchQueue::submit(BatchJobRequest request) {
  if (request.cores <= 0) {
    return make_error(Errc::kInvalidArgument,
                      "batch job must request at least one core");
  }
  if (request.cores > cluster_.total_cores()) {
    return make_error(Errc::kResourceExhausted,
                      "job requests " + std::to_string(request.cores) +
                          " cores; machine " + cluster_.profile().name +
                          " has " + std::to_string(cluster_.total_cores()));
  }
  if (request.walltime <= 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "batch job walltime must be positive");
  }
  const BatchJobId id = next_id_++;
  JobRecord record;
  record.id = id;
  record.request = std::move(request);
  jobs_.emplace(id, std::move(record));
  ++pending_;

  const auto& profile = cluster_.profile();
  const Count nodes = static_cast<Count>(
      std::ceil(static_cast<double>(jobs_.at(id).request.cores) /
                static_cast<double>(profile.cores_per_node)));
  const Duration wait = profile.batch_base_wait +
                        profile.batch_wait_per_node *
                            static_cast<double>(nodes);
  engine_.schedule(wait, [this, id] { make_eligible(id); });
  ENTK_DEBUG("sim.batch") << "job " << id << " submitted ("
                          << jobs_.at(id).request.cores << " cores, wait "
                          << wait << " s)";
  return id;
}

void BatchQueue::make_eligible(BatchJobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != BatchJobState::kQueued) {
    return;  // cancelled while waiting
  }
  it->second.eligible = true;
  --pending_;
  eligible_.push_back(id);
  try_start_jobs();
}

void BatchQueue::try_start_jobs() {
  auto start_job = [this](JobRecord& job) {
    auto allocation = cluster_.allocate(job.request.cores);
    ENTK_CHECK(allocation.ok(), "can_allocate/allocate disagree");
    job.allocation = allocation.take();
    job.state = BatchJobState::kRunning;
    ++running_;
    const BatchJobId id = job.id;
    job.walltime_event = engine_.schedule(job.request.walltime, [this, id] {
      auto jt = jobs_.find(id);
      if (jt == jobs_.end() || jt->second.state != BatchJobState::kRunning) {
        return;
      }
      ENTK_WARN("sim.batch") << "job " << id << " hit its walltime";
      finish(jt->second, BatchJobState::kExpired);
    });
    ENTK_DEBUG("sim.batch") << "job " << id << " started at t="
                            << engine_.now();
    if (job.request.on_start) job.request.on_start(job.allocation);
  };

  // Pass 1 — FIFO: start from the head while jobs fit. Under strict
  // FIFO an oversized head blocks everything behind it, as on a
  // production machine without backfill. (The pilot runtime does its
  // own backfilling *inside* an allocation.)
  while (!eligible_.empty()) {
    const BatchJobId id = eligible_.front();
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != BatchJobState::kQueued) {
      eligible_.pop_front();
      continue;
    }
    if (!cluster_.can_allocate(it->second.request.cores)) break;
    eligible_.pop_front();
    start_job(it->second);
  }
  if (policy_ != BatchPolicy::kEasyBackfill) return;

  // Pass 2 — EASY backfill: later jobs may start out of order when
  // they fit in the idle cores the blocked head cannot use.
  for (auto queue_it = eligible_.begin(); queue_it != eligible_.end();) {
    const auto it = jobs_.find(*queue_it);
    if (it == jobs_.end() || it->second.state != BatchJobState::kQueued) {
      queue_it = eligible_.erase(queue_it);
      continue;
    }
    if (cluster_.can_allocate(it->second.request.cores)) {
      start_job(it->second);
      queue_it = eligible_.erase(queue_it);
    } else {
      ++queue_it;
    }
  }
}

Status BatchQueue::complete(BatchJobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(Errc::kNotFound,
                      "unknown batch job " + std::to_string(id));
  }
  if (it->second.state != BatchJobState::kRunning) {
    return make_error(Errc::kFailedPrecondition,
                      "batch job " + std::to_string(id) + " is " +
                          batch_job_state_name(it->second.state) +
                          ", not running");
  }
  finish(it->second, BatchJobState::kCompleted);
  return Status::ok();
}

Status BatchQueue::cancel(BatchJobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(Errc::kNotFound,
                      "unknown batch job " + std::to_string(id));
  }
  JobRecord& job = it->second;
  switch (job.state) {
    case BatchJobState::kQueued:
      if (!job.eligible) --pending_;
      job.state = BatchJobState::kCancelled;
      if (job.request.on_end) job.request.on_end(BatchJobState::kCancelled);
      return Status::ok();
    case BatchJobState::kRunning:
      finish(job, BatchJobState::kCancelled);
      return Status::ok();
    default:
      return make_error(Errc::kFailedPrecondition,
                        "batch job " + std::to_string(id) +
                            " already finished");
  }
}

Result<BatchJobState> BatchQueue::state(BatchJobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(Errc::kNotFound,
                      "unknown batch job " + std::to_string(id));
  }
  return it->second.state;
}

void BatchQueue::finish(JobRecord& job, BatchJobState final_state) {
  ENTK_CHECK(job.state == BatchJobState::kRunning,
             "finish() requires a running job");
  if (job.walltime_event != kInvalidEvent) {
    engine_.cancel(job.walltime_event);
    job.walltime_event = kInvalidEvent;
  }
  cluster_.release(job.allocation);
  job.state = final_state;
  --running_;
  if (job.request.on_end) job.request.on_end(final_state);
  // Freed cores may unblock the FIFO head.
  try_start_jobs();
}

}  // namespace entk::sim
