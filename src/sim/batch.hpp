// Batch-queue model: the resource-management system of a simulated
// machine (the SLURM/PBS analogue).
//
// Jobs request a core count and a walltime. Each submission first
// incurs a deterministic queue wait (base + per-node term from the
// machine profile, modelling scheduler cycles and backlog), then starts
// as soon after that as the requested cores are free, FIFO. A running
// job ends when its owner completes it or when its walltime expires —
// whichever comes first. Pilot container jobs are exactly such jobs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "sim/cluster.hpp"
#include "sim/engine.hpp"

namespace entk::sim {

using BatchJobId = std::uint64_t;

enum class BatchJobState {
  kQueued,     ///< Waiting for queue delay and/or free cores.
  kRunning,    ///< Holding an allocation.
  kCompleted,  ///< Owner called complete() in time.
  kExpired,    ///< Walltime ran out; cores reclaimed.
  kCancelled,  ///< Cancelled (queued or running).
};

const char* batch_job_state_name(BatchJobState state);

struct BatchJobRequest {
  Count cores = 0;
  Duration walltime = 0.0;
  /// Fires when the job starts, with its allocation.
  std::function<void(const Allocation&)> on_start;
  /// Fires exactly once when the job leaves the system, with the final
  /// state (kCompleted, kExpired or kCancelled).
  std::function<void(BatchJobState)> on_end;
};

/// How the batch system picks the next job(s) to start.
enum class BatchPolicy {
  kFifo,           ///< Strict FIFO: an oversized head blocks the queue.
  kEasyBackfill,   ///< FIFO head + smaller jobs may jump the queue when
                   ///< they fit in the currently idle cores (EASY-style
                   ///< backfill without reservations).
};

class BatchQueue {
 public:
  BatchQueue(Engine& engine, Cluster& cluster,
             BatchPolicy policy = BatchPolicy::kFifo);

  BatchPolicy policy() const { return policy_; }

  /// Submits a job; it becomes eligible to start after the machine's
  /// queue-wait delay, then starts FIFO when cores are free.
  Result<BatchJobId> submit(BatchJobRequest request);

  /// Owner signals that a running job is done; releases its cores.
  Status complete(BatchJobId id);

  /// Cancels a queued or running job.
  Status cancel(BatchJobId id);

  Result<BatchJobState> state(BatchJobId id) const;

  std::size_t queued_jobs() const { return eligible_.size() + pending_; }
  std::size_t running_jobs() const { return running_; }

 private:
  struct JobRecord {
    BatchJobId id = 0;
    BatchJobRequest request;
    BatchJobState state = BatchJobState::kQueued;
    bool eligible = false;  // queue-wait delay elapsed
    Allocation allocation;
    EventId walltime_event = kInvalidEvent;
  };

  void make_eligible(BatchJobId id);
  void try_start_jobs();
  void finish(JobRecord& job, BatchJobState final_state);

  Engine& engine_;
  Cluster& cluster_;
  BatchPolicy policy_;
  std::unordered_map<BatchJobId, JobRecord> jobs_;
  std::deque<BatchJobId> eligible_;  // FIFO start order
  std::size_t pending_ = 0;          // submitted, still in queue-wait
  std::size_t running_ = 0;
  BatchJobId next_id_ = 1;
};

}  // namespace entk::sim
