#include "sim/cluster.hpp"

#include <algorithm>
#include <numeric>

namespace entk::sim {

Cluster::Cluster(const MachineProfile& profile) : profile_(profile) {
  ENTK_CHECK(profile.validate().is_ok(), "invalid machine profile");
  free_per_node_.assign(static_cast<std::size_t>(profile.nodes),
                        profile.cores_per_node);
  free_total_ = profile.total_cores();
}

Result<Allocation> Cluster::allocate(Count cores) {
  if (cores <= 0) {
    return make_error(Errc::kInvalidArgument,
                      "allocation must request at least one core");
  }
  if (cores > free_total_) {
    return make_error(Errc::kResourceExhausted,
                      "requested " + std::to_string(cores) + " cores, " +
                          std::to_string(free_total_) + " free on " +
                          profile_.name);
  }
  Allocation allocation;
  allocation.id = next_allocation_id_++;
  Count remaining = cores;
  // Whole nodes first (pilots prefer full nodes), then fill from the
  // node with the most free cores to limit fragmentation.
  for (std::size_t n = 0; n < free_per_node_.size() && remaining > 0; ++n) {
    if (free_per_node_[n] == profile_.cores_per_node &&
        remaining >= profile_.cores_per_node) {
      allocation.slices.push_back(
          {static_cast<Count>(n), profile_.cores_per_node});
      free_per_node_[n] = 0;
      remaining -= profile_.cores_per_node;
    }
  }
  while (remaining > 0) {
    const auto best = std::max_element(free_per_node_.begin(),
                                       free_per_node_.end());
    ENTK_CHECK(best != free_per_node_.end() && *best > 0,
               "free-core accounting out of sync");
    const Count take = std::min<Count>(remaining, *best);
    allocation.slices.push_back(
        {static_cast<Count>(best - free_per_node_.begin()), take});
    *best -= take;
    remaining -= take;
  }
  free_total_ -= cores;
  live_allocations_.push_back(allocation.id);
  return allocation;
}

void Cluster::release(const Allocation& allocation) {
  const auto it = std::find(live_allocations_.begin(),
                            live_allocations_.end(), allocation.id);
  ENTK_CHECK(it != live_allocations_.end(),
             "release of unknown or already released allocation");
  live_allocations_.erase(it);
  for (const auto& slice : allocation.slices) {
    ENTK_CHECK(slice.node_index >= 0 &&
                   slice.node_index < static_cast<Count>(
                                          free_per_node_.size()),
               "allocation references a node outside the cluster");
    auto& free_cores =
        free_per_node_[static_cast<std::size_t>(slice.node_index)];
    free_cores += slice.cores;
    ENTK_CHECK(free_cores <= profile_.cores_per_node,
               "release overflows node capacity");
    free_total_ += slice.cores;
  }
  ENTK_CHECK(free_total_ <= total_cores(), "release overflows cluster");
}

}  // namespace entk::sim
