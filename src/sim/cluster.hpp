// Cluster core-allocation model.
//
// Tracks per-node free cores of a simulated machine and hands out
// allocations for batch jobs (pilot container jobs). Allocations may
// span nodes (pilots routinely do); within a node, cores are fungible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/machine.hpp"

namespace entk::sim {

/// A slice of cores on one node.
struct NodeSlice {
  Count node_index = 0;
  Count cores = 0;
};

/// A set of cores granted to one batch job. Opaque to holders; returned
/// to the cluster on release.
struct Allocation {
  std::uint64_t id = 0;
  std::vector<NodeSlice> slices;

  Count total_cores() const {
    Count total = 0;
    for (const auto& slice : slices) total += slice.cores;
    return total;
  }
};

class Cluster {
 public:
  explicit Cluster(const MachineProfile& profile);

  const MachineProfile& profile() const { return profile_; }

  Count total_cores() const { return profile_.total_cores(); }
  Count free_cores() const { return free_total_; }
  Count used_cores() const { return total_cores() - free_total_; }

  /// True if `cores` could be allocated right now.
  bool can_allocate(Count cores) const { return cores <= free_total_; }

  /// Carves `cores` out of the freest nodes (first-fit descending).
  /// Fails with kResourceExhausted if the cluster is too busy.
  Result<Allocation> allocate(Count cores);

  /// Returns an allocation's cores. Each allocation may be released
  /// exactly once; double release is an invariant violation.
  void release(const Allocation& allocation);

 private:
  MachineProfile profile_;
  std::vector<Count> free_per_node_;
  Count free_total_ = 0;
  std::uint64_t next_allocation_id_ = 1;
  std::vector<std::uint64_t> live_allocations_;
};

}  // namespace entk::sim
