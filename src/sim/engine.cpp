#include "sim/engine.hpp"

namespace entk::sim {

EventId Engine::schedule(Duration delay, std::function<void()> fn) {
  ENTK_CHECK(delay >= 0.0, "cannot schedule an event in the past");
  return schedule_at(clock_.now() + delay, std::move(fn));
}

EventId Engine::schedule_at(TimePoint t, std::function<void()> fn) {
  ENTK_CHECK(t >= clock_.now(), "cannot schedule an event in the past");
  ENTK_CHECK(static_cast<bool>(fn), "event callback must be callable");
  auto event = std::make_shared<Event>();
  event->time = t;
  event->seq = next_seq_++;
  event->id = next_id_++;
  event->fn = std::move(fn);
  index_[event->id] = event;
  queue_.push(event);
  ++live_events_;
  return event->id;
}

bool Engine::cancel(EventId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  auto event = it->second.lock();
  index_.erase(it);
  if (!event || event->cancelled) return false;
  event->cancelled = true;
  --live_events_;
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    auto event = queue_.top();
    queue_.pop();
    if (event->cancelled) continue;
    index_.erase(event->id);
    --live_events_;
    clock_.advance_to(event->time);
    ++dispatched_;
    // Move the callback out: it may schedule further events or even
    // re-enter cancel(); the Event node itself is already retired.
    auto fn = std::move(event->fn);
    const bool was_dispatching = dispatching_;
    dispatching_ = true;
    fn();
    dispatching_ = was_dispatching;
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

TimePoint Engine::next_event_time() {
  while (!queue_.empty() && queue_.top()->cancelled) {
    queue_.pop();
  }
  return queue_.empty() ? kTimeInfinity : queue_.top()->time;
}

void Engine::run_until(TimePoint horizon) {
  ENTK_CHECK(horizon >= clock_.now(), "horizon lies in the past");
  while (!queue_.empty()) {
    const auto& top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      continue;
    }
    if (top->time > horizon) break;
    step();
  }
  clock_.advance_to(horizon);
}

}  // namespace entk::sim
