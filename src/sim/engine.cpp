#include "sim/engine.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace entk::sim {

namespace {

/// Packs a slot number and its generation into one opaque handle.
/// Generation 0 never occurs, so the packed id is never kInvalidEvent.
EventId pack_event_id(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<EventId>(slot) << 32) | generation;
}

std::uint32_t event_slot(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

std::uint32_t event_generation(EventId id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu);
}

}  // namespace

EventId Engine::schedule(Duration delay, std::function<void()> fn) {
  ENTK_CHECK(delay >= 0.0, "cannot schedule an event in the past");
  return schedule_at(clock_.now() + delay, std::move(fn));
}

EventId Engine::schedule_at(TimePoint t, std::function<void()> fn) {
  ENTK_CHECK(t >= clock_.now(), "cannot schedule an event in the past");
  ENTK_CHECK(static_cast<bool>(fn), "event callback must be callable");
  const std::uint32_t slot = acquire_slot();
  Slot& event = pool_[slot];
  event.time = t;
  event.seq = next_seq_++;
  event.fn = std::move(fn);
  event.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(slot);
  sift_up(event.heap_pos);
  return pack_event_id(slot, event.generation);
}

bool Engine::cancel(EventId id) {
  const std::uint32_t slot = event_slot(id);
  if (slot >= pool_.size()) return false;
  Slot& event = pool_[slot];
  // A stale generation means the event already fired, was cancelled, or
  // the slot now belongs to a later event.
  if (event.generation != event_generation(id)) return false;
  if (event.heap_pos == kNoHeapPos) return false;
  heap_remove(event.heap_pos);
  release_slot(slot);
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kEngineEventsCancelled)
      .add();
  return true;
}

bool Engine::step() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_.front();
  heap_remove(0);
  Slot& event = pool_[slot];
  clock_.advance_to(event.time);
  ++dispatched_;
  obs::Metrics::instance()
      .counter(obs::WellKnownCounter::kEngineEventsDispatched)
      .add();
  if ((dispatched_ & 0xfffu) == 0) {
    // Sampled: one queue-depth point every 4096 dispatches keeps the
    // traced hot path within the <5% overhead budget.
    obs::Metrics::instance()
        .gauge(obs::WellKnownGauge::kEnginePendingEvents)
        .set(static_cast<double>(heap_.size()));
    ENTK_TRACE_COUNTER("engine.pending_events", "engine", heap_.size());
  }
  // Move the callback out and retire the slot before dispatching: the
  // callback may schedule further events (possibly reusing this slot —
  // its generation is already bumped) or cancel() anything, including
  // its own now-stale id.
  auto fn = std::move(event.fn);
  release_slot(slot);
  const bool was_dispatching = dispatching_;
  dispatching_ = true;
  fn();
  dispatching_ = was_dispatching;
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

TimePoint Engine::next_event_time() const {
  return heap_.empty() ? kTimeInfinity : pool_[heap_.front()].time;
}

bool Engine::pending(EventId id) const {
  const std::uint32_t slot = event_slot(id);
  if (slot >= pool_.size()) return false;
  const Slot& event = pool_[slot];
  return event.generation == event_generation(id) &&
         event.heap_pos != kNoHeapPos;
}

TimePoint Engine::event_time(EventId id) const {
  ENTK_CHECK(pending(id), "event_time() on a stale event id");
  return pool_[event_slot(id)].time;
}

std::uint64_t Engine::event_seq(EventId id) const {
  ENTK_CHECK(pending(id), "event_seq() on a stale event id");
  return pool_[event_slot(id)].seq;
}

void Engine::restore_now(TimePoint t) {
  ENTK_CHECK(next_event_time() >= t,
             "cannot restore the clock past a pending event");
  clock_.advance_to(t);
}

void Engine::run_until(TimePoint horizon) {
  ENTK_CHECK(horizon >= clock_.now(), "horizon lies in the past");
  while (!heap_.empty() && pool_[heap_.front()].time <= horizon) {
    step();
  }
  clock_.advance_to(horizon);
}

void Engine::reserve(std::size_t events) {
  pool_.reserve(events);
  heap_.reserve(events);
}

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNoHeapPos) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    pool_[slot].next_free = kNoHeapPos;
    return slot;
  }
  ENTK_CHECK(pool_.size() < kNoHeapPos, "event pool exhausted");
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& event = pool_[slot];
  // Drop the closure's captures now — a recycled slot must not pin
  // shared_ptrs (units, agents) until its next occupant arrives.
  event.fn = nullptr;
  event.heap_pos = kNoHeapPos;
  ++event.generation;
  if (event.generation == 0) ++event.generation;  // 0 is reserved
  event.next_free = free_head_;
  free_head_ = slot;
}

void Engine::sift_up(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!before(slot, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pool_[heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = slot;
  pool_[slot].heap_pos = pos;
}

void Engine::sift_down(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  const std::uint32_t count = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= count) break;
    if (child + 1 < count && before(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!before(heap_[child], slot)) break;
    heap_[pos] = heap_[child];
    pool_[heap_[pos]].heap_pos = pos;
    pos = child;
  }
  heap_[pos] = slot;
  pool_[slot].heap_pos = pos;
}

void Engine::heap_remove(std::uint32_t pos) {
  const std::uint32_t removed = heap_[pos];
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  pool_[removed].heap_pos = kNoHeapPos;
  if (pos < heap_.size()) {
    heap_[pos] = last;
    pool_[last].heap_pos = pos;
    // The replacement may need to move either way.
    sift_down(pos);
    sift_up(pool_[last].heap_pos);
  }
}

}  // namespace entk::sim
