// Discrete-event simulation engine.
//
// A single-threaded event queue over a virtual clock. Events fire in
// (time, insertion-sequence) order, so simultaneous events execute in
// the order they were scheduled — this makes every simulation run
// bit-for-bit deterministic, which the figure-reproduction benches rely
// on.
//
// The engine underpins the simulated execution backend: the batch
// queue, pilot agent and data stager all schedule their activity here,
// which is how the toolkit reproduces O(1000)-core scaling experiments
// on a laptop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace entk::sim {

/// Handle to a scheduled event; used to cancel timers (e.g. walltime
/// expiry of a batch job that completed early).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time in seconds.
  TimePoint now() const { return clock_.now(); }

  /// Clock view for profilers.
  const Clock& clock() const { return clock_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t` (t >= now()).
  EventId schedule_at(TimePoint t, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was cancelled before, or never existed.
  bool cancel(EventId id);

  /// Runs the next pending event; returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains.
  void run();

  /// Runs events with firing time <= horizon; advances the clock to
  /// `horizon` even if the queue drains earlier.
  void run_until(TimePoint horizon);

  /// Firing time of the next pending event, or kTimeInfinity when the
  /// queue is empty. Lets drivers honour deadlines that fall between
  /// events (prunes cancelled queue heads as a side effect).
  TimePoint next_event_time();

  std::size_t pending_events() const { return live_events_; }
  std::uint64_t dispatched_events() const { return dispatched_; }

  /// True while an event callback is executing (used to refuse
  /// re-entrant run()/run_until()).
  bool dispatching() const { return dispatching_; }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;   // tie-breaker: FIFO among simultaneous events
    EventId id;
    std::function<void()> fn;
    bool cancelled = false;
  };
  struct EventOrder {
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  ManualClock clock_;
  std::priority_queue<std::shared_ptr<Event>,
                      std::vector<std::shared_ptr<Event>>, EventOrder>
      queue_;
  std::unordered_map<EventId, std::weak_ptr<Event>> index_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
  std::uint64_t dispatched_ = 0;
  bool dispatching_ = false;
};

}  // namespace entk::sim
