// Discrete-event simulation engine.
//
// A single-threaded event queue over a virtual clock. Events fire in
// (time, insertion-sequence) order, so simultaneous events execute in
// the order they were scheduled — this makes every simulation run
// bit-for-bit deterministic, which the figure-reproduction benches and
// the trace-pinned schedule tests rely on.
//
// The engine underpins the simulated execution backend: the batch
// queue, pilot agent and data stager all schedule their activity here,
// which is how the toolkit reproduces O(1000)-core scaling experiments
// on a laptop — and, since the pool rework, O(100k)-unit ensembles.
//
// Storage model (the hot path of every simulation):
//  - Events live in a slab (std::vector) recycled through a free list,
//    so steady-state scheduling allocates nothing: no shared_ptr
//    control blocks, no map nodes. A slot's std::function keeps its
//    heap buffer across reuse whenever the callback fits.
//  - The pending set is an index-based binary heap of slot numbers
//    ordered by (time, seq); each slot stores its heap position, so
//    cancel() removes the entry immediately (O(log n)) instead of
//    leaving a tombstone to bloat the queue until popped.
//  - An EventId packs (slot, generation). Slot reuse bumps the
//    generation, so a stale handle — cancelled, already fired, or from
//    a previous occupant — is rejected in O(1) without any lookup
//    structure.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace entk::sim {

/// Handle to a scheduled event; used to cancel timers (e.g. walltime
/// expiry of a batch job that completed early). Packs (slot,
/// generation) — valid only against the engine that issued it.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time in seconds.
  TimePoint now() const { return clock_.now(); }

  /// Clock view for profilers.
  const Clock& clock() const { return clock_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t` (t >= now()).
  EventId schedule_at(TimePoint t, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was cancelled before, or never existed. The entry leaves the
  /// pending heap immediately; its slot is recycled.
  bool cancel(EventId id);

  /// Runs the next pending event; returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains.
  void run();

  /// Runs events with firing time <= horizon; advances the clock to
  /// `horizon` even if the queue drains earlier.
  void run_until(TimePoint horizon);

  /// Firing time of the next pending event, or kTimeInfinity when the
  /// queue is empty.
  TimePoint next_event_time() const;

  /// True iff `id` refers to an event that is still pending (not fired,
  /// not cancelled, slot not reused). Same validation as cancel().
  bool pending(EventId id) const;

  /// Firing time of a pending event; CHECK-fails on a stale id.
  TimePoint event_time(EventId id) const;

  /// Insertion sequence of a pending event; CHECK-fails on a stale id.
  /// Seqs are globally monotone, so sorting captured events by
  /// (time, seq) reproduces the engine's dispatch order.
  std::uint64_t event_seq(EventId id) const;

  /// Checkpoint restore: jumps the clock forward to the snapshot time.
  /// CHECK-fails if any pending event would then lie in the past.
  void restore_now(TimePoint t);

  /// Grows the slab to hold `events` pending events without
  /// reallocating (optional warm-up for large sweeps).
  void reserve(std::size_t events);

  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t dispatched_events() const { return dispatched_; }

  /// Slots ever allocated in the slab — the engine's high-water mark of
  /// simultaneously pending events. Stays flat under schedule/cancel
  /// churn because cancelled slots are recycled, which the bloat
  /// regression test pins.
  std::size_t pool_slots() const { return pool_.size(); }

  /// True while an event callback is executing (used to refuse
  /// re-entrant run()/run_until()).
  bool dispatching() const { return dispatching_; }

 private:
  static constexpr std::uint32_t kNoHeapPos = 0xffffffffu;

  struct Slot {
    TimePoint time = 0.0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among simultaneous events
    std::function<void()> fn;
    std::uint32_t generation = 1;  // bumped on every release; never 0
    std::uint32_t heap_pos = kNoHeapPos;
    std::uint32_t next_free = kNoHeapPos;  // free-list link
  };

  /// Strict weak order of two live slots: earlier time first, FIFO
  /// among equal times. (time, seq) is a total order because seq is
  /// unique, so dispatch order is independent of heap internals.
  bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = pool_[a];
    const Slot& sb = pool_[b];
    if (sa.time != sb.time) return sa.time < sb.time;
    return sa.seq < sb.seq;
  }

  std::uint32_t acquire_slot();
  /// Returns a fired/cancelled slot to the free list and invalidates
  /// every outstanding EventId for it.
  void release_slot(std::uint32_t slot);
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  /// Removes the heap entry at `pos`, restoring the heap property.
  void heap_remove(std::uint32_t pos);

  ManualClock clock_;
  std::vector<Slot> pool_;
  std::vector<std::uint32_t> heap_;  // slot numbers, binary min-heap
  std::uint32_t free_head_ = kNoHeapPos;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  bool dispatching_ = false;
};

}  // namespace entk::sim
