#include "sim/fault_model.hpp"

#include <cstdio>

#include "common/log.hpp"

namespace entk::sim {

Status FaultSpec::validate() const {
  if (node_mtbf < 0.0) {
    return make_error(Errc::kInvalidArgument, "node_mtbf must be >= 0");
  }
  if (max_node_failures < 0) {
    return make_error(Errc::kInvalidArgument,
                      "max_node_failures must be >= 0");
  }
  if (launch_failure_rate < 0.0 || launch_failure_rate > 1.0) {
    return make_error(Errc::kInvalidArgument,
                      "launch_failure_rate must be in [0, 1]");
  }
  if (hang_rate < 0.0 || hang_rate > 1.0) {
    return make_error(Errc::kInvalidArgument,
                      "hang_rate must be in [0, 1]");
  }
  return Status::ok();
}

FaultModel::FaultModel(Engine& engine, FaultSpec spec)
    : engine_(engine),
      spec_(spec),
      fork_rng_(spec.seed),
      launch_rng_(fork_rng_.split()),
      hang_rng_(fork_rng_.split()) {
  ENTK_CHECK(spec_.validate().is_ok(), "invalid fault spec");
}

void FaultModel::record(const std::string& what) {
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "t=%.6f ", engine_.now());
  trace_.push_back(stamp + what);
  ENTK_INFO("sim.faults") << trace_.back();
}

void FaultModel::watch_nodes(Count nodes,
                             std::function<void()> on_node_failure) {
  if (spec_.node_mtbf <= 0.0 || nodes < 1) return;
  auto consumer = std::make_unique<Consumer>();
  consumer->nodes_left = nodes;
  consumer->rng = fork_rng_.split();
  consumer->handler = std::move(on_node_failure);
  consumers_.push_back(std::move(consumer));
  arm(consumers_.size() - 1);
}

void FaultModel::arm(std::size_t consumer_index) {
  Consumer& consumer = *consumers_[consumer_index];
  if (consumer.nodes_left < 1) return;
  if (spec_.max_node_failures > 0 &&
      node_failures_ >= spec_.max_node_failures) {
    return;
  }
  // With n healthy nodes each failing at rate 1/MTBF, the time to the
  // next failure among them is exponential with mean MTBF / n.
  const Duration until_failure = consumer.rng.exponential(
      spec_.node_mtbf / static_cast<double>(consumer.nodes_left));
  consumer.armed = engine_.schedule(
      until_failure,
      [this, consumer_index] { fire_node_failure(consumer_index); });
}

void FaultModel::fire_node_failure(std::size_t consumer_index) {
  Consumer& hit = *consumers_[consumer_index];
  if (hit.nodes_left < 1) return;
  if (spec_.max_node_failures > 0 &&
      node_failures_ >= spec_.max_node_failures) {
    return;
  }
  --hit.nodes_left;
  ++node_failures_;
  record("node_failure consumer=" + std::to_string(consumer_index) +
         " nodes_left=" + std::to_string(hit.nodes_left));
  if (hit.handler) hit.handler();
  arm(consumer_index);
}

FaultModel::SavedState FaultModel::save_state() const {
  SavedState saved;
  saved.fork_rng = fork_rng_.save_state();
  saved.launch_rng = launch_rng_.save_state();
  saved.hang_rng = hang_rng_.save_state();
  saved.node_failures = node_failures_;
  saved.launch_failures = launch_failures_;
  saved.hangs = hangs_;
  saved.trace = trace_;
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    const Consumer& consumer = *consumers_[i];
    saved.consumers.push_back(
        {consumer.nodes_left, consumer.rng.save_state()});
    if (engine_.pending(consumer.armed)) {
      saved.armed.push_back({i, engine_.event_time(consumer.armed),
                             engine_.event_seq(consumer.armed)});
    }
  }
  return saved;
}

void FaultModel::restore_state(const SavedState& saved) {
  ENTK_CHECK(consumers_.size() == saved.consumers.size(),
             "checkpoint consumer count does not match this fault model");
  fork_rng_.restore_state(saved.fork_rng);
  launch_rng_.restore_state(saved.launch_rng);
  hang_rng_.restore_state(saved.hang_rng);
  node_failures_ = saved.node_failures;
  launch_failures_ = saved.launch_failures;
  hangs_ = saved.hangs;
  trace_ = saved.trace;
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    Consumer& consumer = *consumers_[i];
    // The registration replay armed a fresh event; the captured run's
    // pending arms are reposted by the coordinator instead.
    if (consumer.armed != kInvalidEvent) engine_.cancel(consumer.armed);
    consumer.armed = kInvalidEvent;
    consumer.nodes_left = saved.consumers[i].nodes_left;
    consumer.rng.restore_state(saved.consumers[i].rng);
  }
}

void FaultModel::repost_failure(std::size_t consumer_index, TimePoint at) {
  ENTK_CHECK(consumer_index < consumers_.size(),
             "checkpoint names an unknown fault consumer");
  consumers_[consumer_index]->armed = engine_.schedule_at(
      at, [this, consumer_index] { fire_node_failure(consumer_index); });
}

bool FaultModel::draw_launch_failure() {
  if (spec_.launch_failure_rate <= 0.0) return false;
  if (launch_rng_.uniform() >= spec_.launch_failure_rate) return false;
  ++launch_failures_;
  record("launch_failure");
  return true;
}

bool FaultModel::draw_hang() {
  if (spec_.hang_rate <= 0.0) return false;
  if (hang_rng_.uniform() >= spec_.hang_rate) return false;
  ++hangs_;
  record("hang");
  return true;
}

}  // namespace entk::sim
