// FaultModel: seeded, deterministic fault injection for the simulated
// machine.
//
// A MachineProfile carries a FaultSpec; when it is enabled the
// simulated backend builds one FaultModel on its event engine and every
// pilot agent registers with it. Three fault classes are modelled:
//   - node failures: each registered consumer (pilot) loses whole nodes
//     at exponentially distributed intervals (per-node MTBF),
//   - transient launch failures: a unit's spawn fails with a fixed
//     probability (the unit itself is fine — a retry usually succeeds),
//   - hung units: a unit enters execution but never finishes; only a
//     per-unit execution timeout (RetryPolicy) can reclaim its cores.
// All draws come from independent streams forked off one seed in
// registration order, so a run is bit-for-bit reproducible: the same
// seed yields the same fault trace (see trace()).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace entk::sim {

/// Fault-injection parameters, carried by MachineProfile. Default
/// constructed = disabled (the machine never fails).
struct FaultSpec {
  /// Seed for every fault stream.
  std::uint64_t seed = 0x5eedULL;
  /// Mean time between failures of one node; 0 = nodes never fail.
  Duration node_mtbf = 0.0;
  /// Cap on total node failures across the run; 0 = uncapped.
  Count max_node_failures = 0;
  /// Probability in [0, 1] that a unit launch fails transiently.
  double launch_failure_rate = 0.0;
  /// Probability in [0, 1] that a unit hangs instead of finishing.
  double hang_rate = 0.0;

  bool enabled() const {
    return node_mtbf > 0.0 || launch_failure_rate > 0.0 || hang_rate > 0.0;
  }
  Status validate() const;
};

class FaultModel {
 public:
  FaultModel(Engine& engine, FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// Registers a consumer (a pilot agent) owning `nodes` nodes;
  /// `on_node_failure` fires once per node lost. Each consumer draws
  /// from its own stream, forked in registration order, so adding a
  /// consumer never perturbs the failure times of the others. The
  /// handler stops firing once the consumer has lost all its nodes or
  /// the spec's max_node_failures cap is reached.
  void watch_nodes(Count nodes, std::function<void()> on_node_failure);

  /// Draws whether the next unit launch fails transiently.
  bool draw_launch_failure();
  /// Draws whether the next unit execution hangs.
  bool draw_hang();

  Count node_failures() const { return node_failures_; }
  Count launch_failures() const { return launch_failures_; }
  Count hangs() const { return hangs_; }

  /// Timestamped record of every injected fault, in injection order —
  /// the determinism witness (same seed => identical trace).
  const std::vector<std::string>& trace() const { return trace_; }

  // --- checkpoint/restart (ckpt::Coordinator only) ---
  struct SavedState {
    struct ConsumerState {
      Count nodes_left = 0;
      Xoshiro256::State rng;
    };
    /// A pending armed node-failure event, with the original engine
    /// (time, seq) for the coordinator's global repost sort.
    struct ArmedEvent {
      std::size_t consumer = 0;
      TimePoint time = 0.0;
      std::uint64_t seq = 0;
    };
    Xoshiro256::State fork_rng;
    Xoshiro256::State launch_rng;
    Xoshiro256::State hang_rng;
    std::vector<ConsumerState> consumers;
    Count node_failures = 0;
    Count launch_failures = 0;
    Count hangs = 0;
    std::vector<std::string> trace;
    std::vector<ArmedEvent> armed;
  };
  SavedState save_state() const;
  /// Injects a saved state. Requires the same consumer count as at
  /// capture (the restore replays pilot registration identically), and
  /// cancels any armed events the replay scheduled; the coordinator
  /// reposts the captured ones via repost_failure().
  void restore_state(const SavedState& saved);
  /// Re-arms one captured node-failure event at its original time.
  void repost_failure(std::size_t consumer_index, TimePoint at);

 private:
  struct Consumer {
    Count nodes_left = 0;
    Xoshiro256 rng;
    std::function<void()> handler;
    EventId armed = kInvalidEvent;
  };

  void arm(std::size_t consumer_index);
  /// Body of the armed event: one node of `consumer_index` dies.
  void fire_node_failure(std::size_t consumer_index);
  void record(const std::string& what);

  Engine& engine_;
  const FaultSpec spec_;
  Xoshiro256 fork_rng_;    ///< Source of per-consumer streams.
  Xoshiro256 launch_rng_;
  Xoshiro256 hang_rng_;
  std::vector<std::unique_ptr<Consumer>> consumers_;
  Count node_failures_ = 0;
  Count launch_failures_ = 0;
  Count hangs_ = 0;
  std::vector<std::string> trace_;
};

}  // namespace entk::sim
