#include "sim/load_generator.hpp"

#include <cmath>

#include "common/log.hpp"

namespace entk::sim {

LoadGenerator::LoadGenerator(Engine& engine, BatchQueue& batch,
                             Cluster& cluster, Options options)
    : engine_(engine),
      batch_(batch),
      cluster_(cluster),
      options_(options),
      rng_(options.seed) {
  ENTK_CHECK(options_.arrival_rate > 0.0, "arrival rate must be positive");
  ENTK_CHECK(options_.min_runtime > 0.0 &&
                 options_.max_runtime >= options_.min_runtime,
             "invalid runtime range");
  if (options_.max_cores <= 0) {
    options_.max_cores = std::max<Count>(1, cluster.total_cores() / 4);
  }
  ENTK_CHECK(options_.min_cores >= 1 &&
                 options_.max_cores >= options_.min_cores,
             "invalid core range");
}

void LoadGenerator::start() {
  ENTK_CHECK(!started_, "load generator started twice");
  started_ = true;
  engine_.schedule(rng_.exponential(1.0 / options_.arrival_rate),
                   [this] { arrive(); });
}

void LoadGenerator::arrive() {
  if (engine_.now() > options_.horizon) return;

  // Log-uniform width: many small jobs, few wide ones, as on real
  // machines.
  const double log_min = std::log(static_cast<double>(options_.min_cores));
  const double log_max = std::log(static_cast<double>(options_.max_cores));
  const Count cores = std::max<Count>(
      options_.min_cores,
      static_cast<Count>(std::exp(rng_.uniform(log_min, log_max))));
  const Duration runtime =
      rng_.uniform(options_.min_runtime, options_.max_runtime);

  // The id is only known after submit(); share it with the start hook.
  auto job_id = std::make_shared<BatchJobId>(0);
  BatchJobRequest request;
  request.cores = std::min(cores, cluster_.total_cores());
  request.walltime = runtime * 1.2 + 60.0;
  request.on_start = [this, runtime, job_id](const Allocation&) {
    // The job "runs" for its runtime, then completes itself.
    engine_.schedule(runtime, [this, job_id] {
      (void)batch_.complete(*job_id);  // no-op if expired meanwhile
    });
  };
  request.on_end = [this](BatchJobState) { ++finished_; };
  auto id = batch_.submit(std::move(request));
  if (id.ok()) {
    *job_id = id.value();
    ++submitted_;
  }
  engine_.schedule(rng_.exponential(1.0 / options_.arrival_rate),
                   [this] { arrive(); });
}

}  // namespace entk::sim
