// Background-load generator: the other users of a shared machine.
//
// Production queue waits are dominated by competing jobs, not by the
// scheduler's own latency. The generator submits a stream of
// synthetic batch jobs (Poisson arrivals, log-uniform widths, bounded
// runtimes) against the same BatchQueue a pilot targets, so
// experiments can study queue-wait dynamics rather than assume the
// machine is idle.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/batch.hpp"

namespace entk::sim {

class LoadGenerator {
 public:
  struct Options {
    double arrival_rate = 1.0 / 120.0;  ///< Mean jobs per second.
    Count min_cores = 1;
    Count max_cores = 0;        ///< 0 = a quarter of the machine.
    Duration min_runtime = 300.0;
    Duration max_runtime = 7200.0;
    Duration horizon = 86400.0; ///< Stop generating after this time.
    std::uint64_t seed = 20160627;
  };

  LoadGenerator(Engine& engine, BatchQueue& batch, Cluster& cluster,
                Options options);

  /// Schedules the first arrival; subsequent arrivals self-schedule.
  void start();

  std::size_t jobs_submitted() const { return submitted_; }
  std::size_t jobs_finished() const { return finished_; }

 private:
  void arrive();

  Engine& engine_;
  BatchQueue& batch_;
  Cluster& cluster_;
  Options options_;
  Xoshiro256 rng_;
  std::size_t submitted_ = 0;
  std::size_t finished_ = 0;
  bool started_ = false;
};

}  // namespace entk::sim
