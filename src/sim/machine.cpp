#include "sim/machine.hpp"

#include <algorithm>

namespace entk::sim {

Status MachineProfile::validate() const {
  if (name.empty()) {
    return make_error(Errc::kInvalidArgument, "machine name is empty");
  }
  if (nodes <= 0 || cores_per_node <= 0) {
    return make_error(Errc::kInvalidArgument,
                      "machine '" + name + "' must have positive shape");
  }
  if (performance_factor <= 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "machine '" + name + "' performance factor must be > 0");
  }
  if (spawner_concurrency < 1) {
    return make_error(Errc::kInvalidArgument,
                      "machine '" + name + "' needs >= 1 spawner worker");
  }
  if (unit_spawn_overhead < 0.0 || unit_launch_latency < 0.0 ||
      pilot_bootstrap < 0.0 || batch_base_wait < 0.0 ||
      batch_wait_per_node < 0.0 || staging_latency < 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "machine '" + name + "' overheads must be >= 0");
  }
  if (staging_bandwidth_mb_per_s <= 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "machine '" + name + "' staging bandwidth must be > 0");
  }
  ENTK_RETURN_IF_ERROR(fault.validate());
  return Status::ok();
}

MachineProfile comet_profile() {
  MachineProfile p;
  p.name = "xsede.comet";
  p.nodes = 1984;
  p.cores_per_node = 24;
  p.memory_per_node_gb = 120.0;
  p.performance_factor = 1.10;  // Haswell-era Xeon, fastest of the three
  p.unit_spawn_overhead = 0.040;
  p.spawner_concurrency = 32;
  p.unit_launch_latency = 0.25;
  p.pilot_bootstrap = 12.0;
  p.batch_base_wait = 30.0;
  p.batch_wait_per_node = 0.5;
  p.staging_latency = 0.020;
  p.staging_bandwidth_mb_per_s = 250.0;
  return p;
}

MachineProfile stampede_profile() {
  MachineProfile p;
  p.name = "xsede.stampede";
  p.nodes = 6400;
  p.cores_per_node = 16;
  p.memory_per_node_gb = 32.0;
  p.performance_factor = 1.00;  // Sandy Bridge Xeon reference
  p.unit_spawn_overhead = 0.050;
  p.spawner_concurrency = 32;
  p.unit_launch_latency = 0.30;
  p.pilot_bootstrap = 15.0;
  p.batch_base_wait = 45.0;
  p.batch_wait_per_node = 0.4;
  p.staging_latency = 0.025;
  p.staging_bandwidth_mb_per_s = 200.0;
  return p;
}

MachineProfile supermic_profile() {
  MachineProfile p;
  p.name = "lsu.supermic";
  p.nodes = 360;
  p.cores_per_node = 20;
  p.memory_per_node_gb = 60.0;
  p.performance_factor = 1.05;  // Ivy Bridge Xeon host cores
  p.unit_spawn_overhead = 0.045;
  p.spawner_concurrency = 32;
  p.unit_launch_latency = 0.28;
  p.pilot_bootstrap = 14.0;
  p.batch_base_wait = 25.0;
  p.batch_wait_per_node = 0.6;
  p.staging_latency = 0.022;
  p.staging_bandwidth_mb_per_s = 220.0;
  return p;
}

MachineProfile bluewaters_profile() {
  MachineProfile p;
  p.name = "ncsa.bluewaters";
  p.nodes = 22640;  // XE6 compute nodes
  p.cores_per_node = 32;
  p.memory_per_node_gb = 64.0;
  p.performance_factor = 0.85;  // Interlagos cores, slower per core
  // Cray ALPS launches are slower per task than Linux-cluster forks.
  p.unit_spawn_overhead = 0.120;
  p.spawner_concurrency = 16;
  p.unit_launch_latency = 0.60;
  p.pilot_bootstrap = 25.0;
  p.batch_base_wait = 60.0;
  p.batch_wait_per_node = 0.2;
  p.staging_latency = 0.030;
  p.staging_bandwidth_mb_per_s = 400.0;
  return p;
}

MachineProfile titan_profile() {
  MachineProfile p;
  p.name = "ornl.titan";
  p.nodes = 18688;  // XK7 compute nodes
  p.cores_per_node = 16;
  p.memory_per_node_gb = 32.0;
  p.performance_factor = 0.90;
  p.unit_spawn_overhead = 0.110;
  p.spawner_concurrency = 16;
  p.unit_launch_latency = 0.55;
  p.pilot_bootstrap = 22.0;
  p.batch_base_wait = 90.0;
  p.batch_wait_per_node = 0.15;
  p.staging_latency = 0.028;
  p.staging_bandwidth_mb_per_s = 350.0;
  return p;
}

MachineProfile localhost_profile() {
  MachineProfile p;
  p.name = "localhost";
  p.nodes = 4;
  p.cores_per_node = 8;
  p.memory_per_node_gb = 16.0;
  p.performance_factor = 1.0;
  p.unit_spawn_overhead = 0.001;
  p.spawner_concurrency = 8;
  p.unit_launch_latency = 0.002;
  p.pilot_bootstrap = 0.05;
  p.batch_base_wait = 0.0;
  p.batch_wait_per_node = 0.0;
  p.staging_latency = 0.001;
  p.staging_bandwidth_mb_per_s = 1000.0;
  return p;
}

MachineCatalog MachineCatalog::with_builtin_profiles() {
  MachineCatalog catalog;
  ENTK_CHECK(catalog.register_machine(comet_profile()).is_ok(), "");
  ENTK_CHECK(catalog.register_machine(stampede_profile()).is_ok(), "");
  ENTK_CHECK(catalog.register_machine(supermic_profile()).is_ok(), "");
  ENTK_CHECK(catalog.register_machine(bluewaters_profile()).is_ok(), "");
  ENTK_CHECK(catalog.register_machine(titan_profile()).is_ok(), "");
  ENTK_CHECK(catalog.register_machine(localhost_profile()).is_ok(), "");
  return catalog;
}

Status MachineCatalog::register_machine(MachineProfile profile) {
  ENTK_RETURN_IF_ERROR(profile.validate());
  if (contains(profile.name)) {
    return make_error(Errc::kAlreadyExists,
                      "machine '" + profile.name + "' already registered");
  }
  profiles_.push_back(std::move(profile));
  return Status::ok();
}

Result<MachineProfile> MachineCatalog::find(const std::string& name) const {
  const auto it =
      std::find_if(profiles_.begin(), profiles_.end(),
                   [&](const MachineProfile& p) { return p.name == name; });
  if (it == profiles_.end()) {
    return make_error(Errc::kNotFound, "unknown machine '" + name + "'");
  }
  return *it;
}

bool MachineCatalog::contains(const std::string& name) const {
  return std::any_of(profiles_.begin(), profiles_.end(),
                     [&](const MachineProfile& p) { return p.name == name; });
}

std::vector<std::string> MachineCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& profile : profiles_) out.push_back(profile.name);
  return out;
}

}  // namespace entk::sim
