// Machine profiles: the static description of an HPC platform.
//
// Profiles carry both the physical shape of a machine (nodes, cores,
// memory — taken from the paper's Section IV descriptions of XSEDE
// Comet, Stampede and SuperMIC) and the calibrated overhead parameters
// that drive the simulated backend (per-unit spawn cost, launch
// latency, agent bootstrap, queue-wait model, staging). Overhead
// magnitudes are calibrated to the decompositions reported in the
// paper's Figures 3–4 (core overhead ~O(10 s), pattern overhead
// sub-second per task, RP spawn overheads of tens of milliseconds per
// unit).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/fault_model.hpp"

namespace entk::sim {

struct MachineProfile {
  std::string name;

  // Physical shape.
  Count nodes = 0;
  Count cores_per_node = 0;
  double memory_per_node_gb = 0.0;

  /// Relative per-core speed; 1.0 is the reference. Kernel cost models
  /// divide their reference runtime by this factor.
  double performance_factor = 1.0;

  // Pilot-agent overheads (the RADICAL-Pilot analogues).
  /// Per-unit spawn cost inside the agent. Spawning is serialized per
  /// spawner worker, so the total spawn overhead grows with #units.
  Duration unit_spawn_overhead = 0.0;
  /// Parallel spawner workers in the agent (RP runs several).
  Count spawner_concurrency = 1;
  /// Per-unit launch latency after spawn (parallel across units).
  Duration unit_launch_latency = 0.0;
  /// Agent bootstrap once the container job starts.
  Duration pilot_bootstrap = 0.0;

  // Batch-queue wait model: wait = base + per_node * requested_nodes.
  Duration batch_base_wait = 0.0;
  Duration batch_wait_per_node = 0.0;

  // Data staging model: delay = latency + bytes / bandwidth.
  Duration staging_latency = 0.0;
  double staging_bandwidth_mb_per_s = 100.0;

  /// Fault injection (disabled by default: the machine never fails).
  FaultSpec fault;

  Count total_cores() const { return nodes * cores_per_node; }

  /// Validates shape and model parameters.
  Status validate() const;
};

/// Registry of known machines. Pre-populated with the three XSEDE
/// platforms used in the paper plus a "localhost" profile used by
/// tests.
class MachineCatalog {
 public:
  /// Catalog with the built-in profiles registered.
  static MachineCatalog with_builtin_profiles();

  Status register_machine(MachineProfile profile);
  Result<MachineProfile> find(const std::string& name) const;
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::vector<MachineProfile> profiles_;
};

/// Built-in profile constructors (usable without a catalog).
MachineProfile comet_profile();      ///< XSEDE Comet: 1984 nodes x 24 cores.
MachineProfile stampede_profile();   ///< XSEDE Stampede: 6400 nodes x 16 cores.
MachineProfile supermic_profile();   ///< LSU SuperMIC: 360 nodes x 20 cores.
/// NCSA Blue Waters (Cray XE6 portion): the paper's Section V target
/// for O(10,000) concurrent tasks.
MachineProfile bluewaters_profile();
/// ORNL Titan (Cray XK7): the paper's "2K tasks on Cray machines".
MachineProfile titan_profile();
MachineProfile localhost_profile();  ///< Small profile for tests/examples.

}  // namespace entk::sim
