// Tests of the adaptive-execution features: kill/replace of units,
// the AdaptiveLoop higher-order pattern, and profile export.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/entk.hpp"
#include "pilot/agent.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/unit_manager.hpp"

namespace entk {
namespace {

pilot::UnitDescription sim_unit(Duration duration) {
  pilot::UnitDescription description;
  description.name = "adaptive.unit";
  description.executable = "x";
  description.simulated_duration = duration;
  return description;
}

class CancelUnitTest : public ::testing::Test {
 protected:
  CancelUnitTest() : backend_(sim::localhost_profile()) {}

  pilot::PilotPtr make_active_pilot(Count cores) {
    pilot::PilotDescription description;
    description.resource = "localhost";
    description.cores = cores;
    description.runtime = 100000.0;
    auto pilot = manager_.submit_pilot(description);
    EXPECT_TRUE(pilot.ok());
    EXPECT_TRUE(manager_.wait_active(pilot.value()).is_ok());
    return pilot.take();
  }

  pilot::SimBackend backend_;
  pilot::PilotManager manager_{backend_};
};

TEST_F(CancelUnitTest, CancelWaitingUnitFreesNothing) {
  auto pilot = make_active_pilot(1);
  pilot::UnitManager units(backend_);
  units.add_pilot(pilot);
  auto submitted = units.submit_units({sim_unit(100.0), sim_unit(100.0)});
  ASSERT_TRUE(submitted.ok());
  // Drive until the first is executing; the second waits.
  ASSERT_TRUE(backend_
                  .drive_until([&] {
                    return submitted.value()[0]->state() ==
                           pilot::UnitState::kExecuting;
                  })
                  .is_ok());
  ASSERT_TRUE(units.cancel_unit(submitted.value()[1]).is_ok());
  EXPECT_EQ(submitted.value()[1]->state(), pilot::UnitState::kCanceled);
  // The first unit still completes normally.
  ASSERT_TRUE(units.wait_units(submitted.value()).is_ok());
  EXPECT_EQ(submitted.value()[0]->state(), pilot::UnitState::kDone);
}

TEST_F(CancelUnitTest, KillExecutingUnitReclaimsCores) {
  auto pilot = make_active_pilot(1);
  pilot::UnitManager units(backend_);
  units.add_pilot(pilot);
  auto submitted = units.submit_units({sim_unit(1000.0), sim_unit(5.0)});
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(backend_
                  .drive_until([&] {
                    return submitted.value()[0]->state() ==
                           pilot::UnitState::kExecuting;
                  })
                  .is_ok());
  const TimePoint killed_at = backend_.engine().now();
  ASSERT_TRUE(units.cancel_unit(submitted.value()[0]).is_ok());
  EXPECT_EQ(submitted.value()[0]->state(), pilot::UnitState::kCanceled);
  // The waiting unit takes over the freed core immediately — it
  // finishes long before the killed unit would have.
  ASSERT_TRUE(units.wait_units({submitted.value()[1]}).is_ok());
  EXPECT_EQ(submitted.value()[1]->state(), pilot::UnitState::kDone);
  EXPECT_LT(backend_.engine().now(), killed_at + 50.0);
}

TEST_F(CancelUnitTest, KillReplacePattern) {
  // The paper's kill/replace: cancel a straggler and resubmit its work.
  auto pilot = make_active_pilot(2);
  pilot::UnitManager units(backend_);
  units.add_pilot(pilot);
  auto first = units.submit_units({sim_unit(10.0), sim_unit(10000.0)});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(units.wait_units({first.value()[0]}).is_ok());
  // The straggler is still going; kill and replace it.
  ASSERT_TRUE(units.cancel_unit(first.value()[1]).is_ok());
  auto replacement = units.submit_units({sim_unit(10.0)});
  ASSERT_TRUE(replacement.ok());
  ASSERT_TRUE(units.wait_units(replacement.value()).is_ok());
  EXPECT_EQ(replacement.value()[0]->state(), pilot::UnitState::kDone);
  EXPECT_LT(backend_.engine().now(), 100.0);  // nowhere near 10000 s
}

TEST_F(CancelUnitTest, CancelUnknownUnitFails) {
  auto pilot = make_active_pilot(1);
  pilot::UnitManager units(backend_);
  units.add_pilot(pilot);
  WallClock clock;
  auto stranger = std::make_shared<pilot::ComputeUnit>(
      "unit.stranger", sim_unit(1.0), clock);
  EXPECT_EQ(units.cancel_unit(stranger).code(), Errc::kNotFound);
}

TEST_F(CancelUnitTest, CancelUnroutedUnit) {
  // No active pilot yet: units are held by the manager.
  pilot::PilotDescription description;
  description.resource = "localhost";
  description.cores = 2;
  description.runtime = 100000.0;
  auto pilot = manager_.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());
  pilot::UnitManager units(backend_);
  units.add_pilot(pilot.value());
  auto submitted = units.submit_units({sim_unit(5.0)});
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted.value()[0]->state(),
            pilot::UnitState::kPendingExecution);
  ASSERT_TRUE(units.cancel_unit(submitted.value()[0]).is_ok());
  EXPECT_EQ(submitted.value()[0]->state(), pilot::UnitState::kCanceled);
}

// -------------------------------------------------------------- AdaptiveLoop

class AdaptiveLoopTest : public ::testing::Test {
 protected:
  AdaptiveLoopTest()
      : registry_(kernels::KernelRegistry::with_builtin_kernels()),
        backend_(sim::localhost_profile()) {}

  kernels::KernelRegistry registry_;
  pilot::SimBackend backend_;
};

TEST_F(AdaptiveLoopTest, RunsUntilConvergence) {
  core::ResourceOptions options;
  options.cores = 8;
  core::ResourceHandle handle(backend_, registry_, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  auto body = std::make_unique<core::BagOfTasks>(
      4, [](const core::StageContext&) {
        core::TaskSpec spec;
        spec.kernel = "misc.sleep";
        spec.args.set("duration", 1.0);
        return spec;
      });
  // "Converge" after three rounds.
  core::AdaptiveLoop loop(std::move(body), 10,
                          [](Count round) { return round < 3; });
  auto report = handle.run(loop);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  EXPECT_EQ(loop.rounds_completed(), 3);
  EXPECT_EQ(report.value().units.size(), 12u);
}

TEST_F(AdaptiveLoopTest, RoundCapStopsRunawayLoops) {
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend_, registry_, options);
  ASSERT_TRUE(handle.allocate().is_ok());
  auto body = std::make_unique<core::BagOfTasks>(
      1, [](const core::StageContext&) {
        core::TaskSpec spec;
        spec.kernel = "misc.sleep";
        spec.args.set("duration", 0.5);
        return spec;
      });
  core::AdaptiveLoop loop(std::move(body), 5,
                          [](Count) { return true; });  // never converges
  auto report = handle.run(loop);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  EXPECT_EQ(loop.rounds_completed(), 5);
}

TEST_F(AdaptiveLoopTest, Validation) {
  core::AdaptiveLoop no_body(nullptr, 3, [](Count) { return false; });
  EXPECT_EQ(no_body.validate().code(), Errc::kInvalidArgument);
  auto body = std::make_unique<core::BagOfTasks>(
      1, [](const core::StageContext&) { return core::TaskSpec{}; });
  core::AdaptiveLoop no_fn(std::move(body), 3, nullptr);
  EXPECT_EQ(no_fn.validate().code(), Errc::kInvalidArgument);
}

// ------------------------------------------------------------ profile export

TEST(ProfileExport, CsvRoundTrip) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());
  core::BagOfTasks pattern(3, [](const core::StageContext&) {
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration", 2.0);
    return spec;
  });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());

  const std::string csv = core::units_timeline_csv(report.value().units);
  // Header + one row per unit.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("misc.sleep"), std::string::npos);
  EXPECT_NE(csv.find("done"), std::string::npos);

  const std::string overheads =
      core::overheads_csv(report.value().overheads);
  EXPECT_NE(overheads.find("ttc,"), std::string::npos);
  EXPECT_NE(overheads.find("pattern_overhead,"), std::string::npos);

  const auto prefix =
      (std::filesystem::temp_directory_path() / "entk_profile_test")
          .string();
  ASSERT_TRUE(core::export_run_profile(report.value(), prefix).is_ok());
  EXPECT_TRUE(std::filesystem::exists(prefix + "_units.csv"));
  EXPECT_TRUE(std::filesystem::exists(prefix + "_overheads.csv"));
  std::filesystem::remove(prefix + "_units.csv");
  std::filesystem::remove(prefix + "_overheads.csv");
}

TEST(ProfileExport, RejectsUnwritablePath) {
  core::RunReport report;
  EXPECT_EQ(core::export_run_profile(report, "/nonexistent/dir/prefix")
                .code(),
            Errc::kIoError);
}

}  // namespace
}  // namespace entk
