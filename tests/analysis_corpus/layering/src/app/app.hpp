// Corpus: app -> util is declared in layering.toml, so this include
// is fine.
#pragma once

#include "util/util.hpp"

namespace corpus::app {
int run();
}  // namespace corpus::app
