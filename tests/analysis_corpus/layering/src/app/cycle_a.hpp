// Corpus: half of a seeded include cycle within one module.
#pragma once

#include "app/cycle_b.hpp"

namespace corpus::app {
int a();
}  // namespace corpus::app
