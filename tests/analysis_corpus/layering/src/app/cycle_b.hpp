// Corpus: the other half of the seeded include cycle.
#pragma once

#include "app/cycle_a.hpp"

namespace corpus::app {
int b();
}  // namespace corpus::app
