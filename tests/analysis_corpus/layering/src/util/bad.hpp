// Corpus: the seeded downward edge. util is a leaf, so including an
// app header must produce an undeclared-dependency finding.
#pragma once

#include "app/app.hpp"

namespace corpus::util {
int escalate();
}  // namespace corpus::util
