// Corpus: leaf module header with no includes.
#pragma once

namespace corpus::util {
int answer();
}  // namespace corpus::util
