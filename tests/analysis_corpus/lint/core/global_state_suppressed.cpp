// Corpus: the global-run-state rule under a core/ path. Every
// reference to process-global run state below carries a justified
// allow(global-run-state), so entk-lint must report zero violations
// while still exercising the Metrics/TraceRecorder/next_uid token
// matchers and both suppression placements.
//
// Decoys first: mentions in comments and strings never fire.
// Metrics::instance() next_uid("unit") TraceRecorder::instance()
const char* kGlobalDecoy =
    "obs::Metrics::instance().counter(next_uid(\"x\"))";

namespace obs {
struct Counter {
  void add() {}
};
struct Metrics {
  static Metrics& instance();
  Counter& counter(const char*);
};
struct TraceRecorder {
  static TraceRecorder& instance();
};
}  // namespace obs

// Declarations for the corpus trip the token matcher too.
// entk-lint: allow(global-run-state)
const char* next_uid(const char* prefix);
void reset_uid_counters_for_testing();  // entk-lint: allow(global-run-state)

void touch_globals() {
  // Trailing placement covers its own line.
  obs::Metrics::instance();  // entk-lint: allow(global-run-state)

  // Standalone placement covers the whole following statement,
  // even when the banned token sits on a continuation line.
  // entk-lint: allow(global-run-state)
  obs::Metrics::instance()
      .counter("corpus.units")
      .add();

  // entk-lint: allow(global-run-state)
  obs::TraceRecorder::instance();

  // entk-lint: allow(global-run-state)
  const char* uid = next_uid("corpus.unit");
  (void)uid;

  // entk-lint: allow(global-run-state)
  reset_uid_counters_for_testing();
}
