// Corpus: every banned entk-lint token, hidden where only a
// line-oriented scanner would see it. The lexer-based lint must
// report zero violations on this file.
//
// In comments: std::mutex std::lock_guard std::condition_variable
// steady_clock::now() thread.detach() sleep_for using namespace std
// std::ofstream out(path); fopen("artifact.json", "w")
// Metrics::instance() TraceRecorder::instance() next_uid("unit")
/* block comment, same trick: std::unique_lock<std::mutex> lock(m);
   system_clock::now(); worker.detach(); sleep_until(t);
   std::ofstream file(path); FILE* f = std::fopen(path, "wb"); */

const char* kDecoyString =
    "std::mutex guard(std::condition_variable); std::scoped_lock";

const char* kDecoyRaw = R"lint(
  std::lock_guard<std::mutex> lock(m);
  high_resolution_clock::now();
  thread.detach();
  std::this_thread::sleep_for(ms);
  using namespace std;
  std::ofstream trace("trace.json");
  fopen("BENCH_scale.json", "w");
  obs::Metrics::instance().counter("x").add();
  auto uid = next_uid("pilot");
)lint";

const char* kDecoyClock = "steady_clock::now()";

const char kDecoyChar = 'm';  // as in "std::mutex"
