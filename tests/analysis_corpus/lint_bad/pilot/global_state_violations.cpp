// Negative corpus: unsuppressed references to process-global run
// state under a pilot/ path. entk-lint must flag every statement in
// touch_globals() — the registered ctest runs with WILL_FAIL so a
// silently disabled rule breaks the suite.
namespace obs {
struct Metrics {
  static Metrics& instance();
};
struct TraceRecorder {
  static TraceRecorder& instance();
};
}  // namespace obs

const char* next_uid(const char* prefix);

void touch_globals() {
  obs::Metrics::instance();
  obs::TraceRecorder::instance();
  const char* uid = next_uid("unit");
  (void)uid;
}
