// Corpus: a seeded lock-order inversion. forward() acquires
// first_ then second_; backward() acquires them in the opposite
// order. The lock graph gets both edges, forming a two-node SCC the
// analyzer must report as a lock-cycle (with a witness per edge).

class Pair {
 public:
  void forward() {
    MutexLock a(first_);
    MutexLock b(second_);
    touch();
  }

  void backward() {
    MutexLock b(second_);
    MutexLock a(first_);
    touch();
  }

  void touch() { ++generation_; }

 private:
  Mutex first_;
  Mutex second_;
  int generation_ = 0;
};
