// Corpus: an acquisition order that contradicts the declared ranks
// without forming a cycle. Manager (kHigh = 20) calls into Logbook
// (kLow = 10) while holding its own lock, so the edge runs from a
// high rank to a low one: a rank-inversion finding.

enum class LockRank : int {
  kNone = -1,
  kLow = 10,
  kHigh = 20,
};

class Logbook {
 public:
  void record() {
    MutexLock lock(mutex_);
    ++entries_;
  }

 private:
  Mutex mutex_{LockRank::kLow};
  int entries_ = 0;
};

class Manager {
 public:
  void update(Logbook& log) {
    MutexLock lock(mutex_);
    log.record();
  }

 private:
  Mutex mutex_{LockRank::kHigh};
};
