// Corpus: correctly ordered acquisitions. The analyzer must recover
// the Outer -> Inner edge (through the inner_.value() call) and report
// zero findings, because the edge agrees with the declared ranks.
//
// Corpus files are never compiled; they only need to *lex* like the
// real tree, so the entk wrapper types appear undeclared.

enum class LockRank : int {
  kNone = -1,
  kOuter = 10,
  kInner = 20,
};

class Inner {
 public:
  int value() {
    MutexLock lock(mutex_);
    return value_;
  }

 private:
  Mutex mutex_{LockRank::kInner};
  int value_ = 0;
};

class Outer {
 public:
  int read() {
    MutexLock lock(mutex_);
    return inner_.value();
  }

 private:
  Mutex mutex_{LockRank::kOuter};
  Inner inner_;
};
