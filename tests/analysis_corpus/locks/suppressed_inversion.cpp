// Corpus: the same shape as bad_rank_inversion.cpp, but the witness
// acquisition site carries an entk-analyze suppression — the analyzer
// must drop the edge and report nothing. (In real code, always pair
// the marker with a justification like the one below.)

enum class LockRank : int {
  kNone = -1,
  kLow = 10,
  kHigh = 20,
};

class Journal {
 public:
  void record() {
    // The journal is only ever reached from Coordinator during shutdown,
    // when no other thread can hold it. entk-analyze: allow(lock-order)
    MutexLock lock(mutex_);
    ++entries_;
  }

 private:
  Mutex mutex_{LockRank::kLow};
  int entries_ = 0;
};

class Coordinator {
 public:
  void update(Journal& log) {
    MutexLock lock(mutex_);
    log.record();
  }

 private:
  Mutex mutex_{LockRank::kHigh};
};
