// Unit and property tests of the analysis substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/diffusion_map.hpp"
#include "analysis/eigen.hpp"
#include "analysis/histogram.hpp"
#include "analysis/matrix.hpp"
#include "analysis/pca.hpp"
#include "common/rng.hpp"
#include "md/ensemble_analysis.hpp"

namespace entk::analysis {
namespace {

TEST(Matrix, BasicOperations) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);

  const Matrix product = a * t;  // 2x2
  EXPECT_DOUBLE_EQ(product(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(product(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(product(1, 1), 77.0);
  EXPECT_TRUE(product.is_symmetric());

  const std::vector<double> v{1.0, 0.0, -1.0};
  const auto av = a * v;
  EXPECT_DOUBLE_EQ(av[0], -2.0);
  EXPECT_DOUBLE_EQ(av[1], -2.0);

  EXPECT_DOUBLE_EQ(Matrix::identity(3)(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(Matrix::identity(3)(0, 1), 0.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::logic_error);
  EXPECT_THROW(a * std::vector<double>{1.0}, std::logic_error);
  EXPECT_THROW(a.max_abs_diff(Matrix(3, 2)), std::logic_error);
}

TEST(Eigen, DiagonalMatrixTrivial) {
  Matrix m(3, 3);
  m(0, 0) = 5.0;
  m(1, 1) = -1.0;
  m(2, 2) = 2.0;
  auto result = eigen_symmetric(m);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().values[0], 5.0, 1e-10);
  EXPECT_NEAR(result.value().values[1], 2.0, 1e-10);
  EXPECT_NEAR(result.value().values[2], -1.0, 1e-10);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] -> eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 2;
  auto result = eigen_symmetric(m);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().values[0], 3.0, 1e-10);
  EXPECT_NEAR(result.value().values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(result.value().vectors(0, 0)), inv_sqrt2, 1e-9);
  EXPECT_NEAR(std::fabs(result.value().vectors(1, 0)), inv_sqrt2, 1e-9);
}

TEST(Eigen, ReconstructsRandomSymmetricMatrix) {
  Xoshiro256 rng(71);
  const std::size_t n = 12;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double value = rng.normal();
      m(i, j) = value;
      m(j, i) = value;
    }
  }
  auto result = eigen_symmetric(m);
  ASSERT_TRUE(result.ok());
  const auto& eig = result.value();
  // Orthonormal columns.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += eig.vectors(i, a) * eig.vectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
  // V diag(L) V^T == M.
  Matrix reconstruction(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += eig.vectors(i, k) * eig.values[k] * eig.vectors(j, k);
      }
      reconstruction(i, j) = sum;
    }
  }
  EXPECT_LT(reconstruction.max_abs_diff(m), 1e-8);
  // Eigenvalues descending.
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_GE(eig.values[k - 1], eig.values[k] - 1e-12);
  }
}

TEST(Eigen, RejectsNonSquareAndAsymmetric) {
  EXPECT_EQ(eigen_symmetric(Matrix(2, 3)).status().code(),
            Errc::kInvalidArgument);
  Matrix m(2, 2);
  m(0, 1) = 1.0;
  m(1, 0) = 2.0;
  EXPECT_EQ(eigen_symmetric(m).status().code(), Errc::kInvalidArgument);
}

// --------------------------------------------------------------------- PCA

std::vector<md::Frame> planted_frames(std::size_t n_frames,
                                      std::size_t n_particles,
                                      double main_amplitude,
                                      double noise, std::uint64_t seed) {
  // Frames move along one collective direction with small noise.
  Xoshiro256 rng(seed);
  std::vector<md::Vec3> base(n_particles);
  std::vector<md::Vec3> direction(n_particles);
  for (std::size_t i = 0; i < n_particles; ++i) {
    base[i] = {rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)};
    direction[i] = {rng.normal(), rng.normal(), rng.normal()};
  }
  std::vector<md::Frame> frames;
  for (std::size_t f = 0; f < n_frames; ++f) {
    md::Frame frame;
    frame.time = static_cast<double>(f);
    const double phase =
        main_amplitude *
        std::sin(2.0 * M_PI * static_cast<double>(f) /
                 static_cast<double>(n_frames));
    for (std::size_t i = 0; i < n_particles; ++i) {
      frame.positions.push_back(base[i] + phase * direction[i] +
                                md::Vec3{noise * rng.normal(),
                                         noise * rng.normal(),
                                         noise * rng.normal()});
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

TEST(Pca, RecoversDominantMode) {
  const auto frames = planted_frames(40, 30, 2.0, 0.01, 81);
  auto result = md::pca_frames(frames, 3);
  ASSERT_TRUE(result.ok());
  const auto& pca = result.value();
  ASSERT_EQ(pca.eigenvalues.size(), 3u);
  // One dominant mode: first eigenvalue well above the rest.
  EXPECT_GT(pca.eigenvalues[0], 20.0 * pca.eigenvalues[1]);
  EXPECT_EQ(pca.projections.rows(), 40u);
  // Projections on PC1 follow the planted sinusoid: strongly
  // correlated with it.
  double correlation = 0.0;
  double norm_a = 0.0, norm_b = 0.0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const double planted =
        std::sin(2.0 * M_PI * static_cast<double>(f) / 40.0);
    correlation += planted * pca.projections(f, 0);
    norm_a += planted * planted;
    norm_b += pca.projections(f, 0) * pca.projections(f, 0);
  }
  EXPECT_GT(std::fabs(correlation) / std::sqrt(norm_a * norm_b), 0.98);
}

TEST(Pca, InvariantToRigidTranslation) {
  auto frames = planted_frames(20, 10, 1.0, 0.05, 83);
  auto moved = frames;
  for (auto& frame : moved) {
    for (auto& p : frame.positions) p += md::Vec3{100.0, -50.0, 25.0};
  }
  const auto a = md::pca_frames(frames, 2);
  const auto b = md::pca_frames(moved, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a.value().eigenvalues[0], b.value().eigenvalues[0], 1e-6);
  EXPECT_NEAR(a.value().eigenvalues[1], b.value().eigenvalues[1], 1e-6);
}

TEST(Pca, RejectsDegenerateInput) {
  EXPECT_EQ(md::pca_frames({}, 2).status().code(), Errc::kInvalidArgument);
  const auto frames = planted_frames(5, 4, 1.0, 0.1, 85);
  EXPECT_EQ(md::pca_frames(frames, 0).status().code(), Errc::kInvalidArgument);
  auto inconsistent = frames;
  inconsistent[2].positions.pop_back();
  EXPECT_EQ(md::pca_frames(inconsistent, 2).status().code(),
            Errc::kInvalidArgument);
}

TEST(Coco, FindsUnsampledRegionsAndReportsOccupancy) {
  // Two trajectories clustered in one corner of PC space: CoCo must
  // report low occupancy and emit points away from the samples.
  const auto frames = planted_frames(30, 20, 0.5, 0.02, 87);
  md::Trajectory t1, t2;
  for (std::size_t f = 0; f < 15; ++f) t1.add_frame(frames[f]);
  for (std::size_t f = 15; f < 30; ++f) t2.add_frame(frames[f]);

  CocoOptions options;
  options.n_components = 2;
  options.grid_bins = 6;
  options.n_new_points = 4;
  auto result = md::coco_analysis({&t1, &t2}, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const auto& coco = result.value();
  EXPECT_GT(coco.occupancy, 0.0);
  EXPECT_LT(coco.occupancy, 1.0);
  ASSERT_EQ(coco.new_points.size(), 4u);
  for (const auto& point : coco.new_points) {
    EXPECT_EQ(point.size(), 2u);
    for (const double coordinate : point) {
      EXPECT_TRUE(std::isfinite(coordinate));
    }
  }
}

TEST(Coco, ValidatesOptions) {
  const auto frames = planted_frames(10, 8, 1.0, 0.1, 89);
  md::Trajectory trajectory;
  for (const auto& frame : frames) trajectory.add_frame(frame);
  CocoOptions bad;
  bad.n_components = 5;
  EXPECT_EQ(md::coco_analysis({&trajectory}, bad).status().code(),
            Errc::kInvalidArgument);
  bad = CocoOptions{};
  bad.grid_bins = 1;
  EXPECT_EQ(md::coco_analysis({&trajectory}, bad).status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(md::coco_analysis({}, CocoOptions{}).status().code(),
            Errc::kInvalidArgument);
}

// ----------------------------------------------------------- diffusion map

TEST(DiffusionMap, MarkovSpectrumIsBoundedByOne) {
  const auto frames = planted_frames(25, 12, 1.5, 0.05, 91);
  DiffusionMapOptions options;
  options.n_coordinates = 3;
  auto result = md::diffusion_map_frames(frames, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const auto& map = result.value();
  ASSERT_GE(map.eigenvalues.size(), 4u);
  EXPECT_NEAR(map.eigenvalues[0], 1.0, 1e-8);  // trivial eigenvalue
  for (std::size_t k = 1; k < map.eigenvalues.size(); ++k) {
    EXPECT_LE(map.eigenvalues[k], 1.0 + 1e-9);
    EXPECT_GE(map.eigenvalues[k], -1.0 - 1e-9);
  }
  EXPECT_EQ(map.coordinates.rows(), 25u);
  EXPECT_EQ(map.coordinates.cols(), 3u);
  EXPECT_GT(map.epsilon_used, 0.0);
}

TEST(DiffusionMap, SeparatesTwoClusters) {
  // Two well separated conformational clusters: the first diffusion
  // coordinate must split them by sign.
  Xoshiro256 rng(93);
  std::vector<md::Frame> frames;
  for (int cluster = 0; cluster < 2; ++cluster) {
    for (int f = 0; f < 10; ++f) {
      md::Frame frame;
      for (int i = 0; i < 8; ++i) {
        frame.positions.push_back(
            {cluster * 50.0 + 0.1 * rng.normal() + i * 1.0,
             0.1 * rng.normal() - cluster * 30.0 * ((i % 2) ? 1.0 : -1.0),
             0.1 * rng.normal()});
      }
      frames.push_back(std::move(frame));
    }
  }
  DiffusionMapOptions options;
  options.n_coordinates = 1;
  auto result = md::diffusion_map_frames(frames, options);
  ASSERT_TRUE(result.ok());
  const auto& coords = result.value().coordinates;
  int sign_changes_within_cluster = 0;
  for (int cluster = 0; cluster < 2; ++cluster) {
    const double reference = coords(cluster * 10, 0);
    for (int f = 1; f < 10; ++f) {
      if (coords(cluster * 10 + f, 0) * reference < 0) {
        ++sign_changes_within_cluster;
      }
    }
  }
  EXPECT_EQ(sign_changes_within_cluster, 0);
  EXPECT_LT(coords(0, 0) * coords(10, 0), 0.0);  // clusters on opposite sides
}

TEST(DiffusionMap, LocalScalingWorks) {
  const auto frames = planted_frames(20, 10, 1.0, 0.05, 95);
  DiffusionMapOptions options;
  options.n_coordinates = 2;
  options.local_scale_neighbour = 3;  // LSDMap-style local epsilon
  auto result = md::diffusion_map_frames(frames, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().eigenvalues[0], 1.0, 1e-8);
}

TEST(DiffusionMap, ValidatesInput) {
  DiffusionMapOptions options;
  EXPECT_EQ(md::diffusion_map_frames({}, options).status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(diffusion_map(Matrix(2, 3), options).status().code(),
            Errc::kInvalidArgument);
  options.n_coordinates = 0;
  EXPECT_EQ(
      diffusion_map(Matrix(3, 3), options).status().code(),
      Errc::kInvalidArgument);
}

// --------------------------------------------------------------- histogram

TEST(Histogram, CountsAndClampsOutliers) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.add_all({1.0, 3.0, 5.0, 7.0, 9.0, -100.0, 100.0});
  EXPECT_EQ(histogram.total(), 7u);
  EXPECT_EQ(histogram.count(0), 2u);  // 1.0 and the clamped -100
  EXPECT_EQ(histogram.count(4), 2u);  // 9.0 and the clamped 100
  EXPECT_DOUBLE_EQ(histogram.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.bin_center(4), 9.0);
}

TEST(Histogram, ProbabilitiesSumToOne) {
  Histogram histogram(0.0, 1.0, 10);
  Xoshiro256 rng(97);
  for (int i = 0; i < 1000; ++i) histogram.add(rng.uniform());
  const auto p = histogram.probabilities();
  double sum = 0.0;
  for (const double value : p) sum += value;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, FreeEnergyMinimumIsZero) {
  Histogram histogram(0.0, 2.0, 4);
  histogram.add_all({0.1, 0.1, 0.1, 0.6, 1.1});
  const auto g = histogram.free_energy(1.0);
  EXPECT_DOUBLE_EQ(g[0], 0.0);  // most populated bin
  EXPECT_GT(g[1], 0.0);
  EXPECT_TRUE(std::isinf(g[3]));  // empty bin
}

}  // namespace
}  // namespace entk::analysis
