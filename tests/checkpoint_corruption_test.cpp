// Corrupt-checkpoint rejection: a damaged snapshot file must fail
// restore with a diagnostic Status — never undefined behavior, never a
// crash, never a silently wrong resume. Exercised forms of damage:
// truncation at every prefix length, a flipped bit anywhere in the
// payload (checksum), wrong magic, a future format version, a payload
// size that disagrees with the file, and length fields pointing past
// the end of the payload (the classic decoder over-read). The CI
// checkpoint-restart lane also runs this suite under asan-ubsan.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>

#include "ckpt/snapshot.hpp"
#include "common/atomic_file.hpp"

namespace entk::ckpt {
namespace {

/// A small but fully populated snapshot: every record type present so
/// corruption walks through every decoder.
Snapshot sample_snapshot() {
  Snapshot snap;
  snap.machine = "test.scale";
  snap.cores = 64;
  snap.n_pilots = 2;
  snap.runtime = 3600.0;
  snap.scheduler_policy = "backfill";
  snap.pattern_name = "bag_of_tasks";
  snap.workload_text = "pattern = bag\n";
  snap.engine_now = 123.5;
  snap.uid_counters = {{"unit", 7}, {"pilot", 2}};

  UnitRecord unit;
  unit.uid = "unit.000001";
  unit.description.name = "task_1";
  unit.description.executable = "misc.sleep";
  unit.description.arguments = {"--duration", "30"};
  unit.description.environment = {{"ENTK_STAGE", "1"}};
  unit.description.cores = 2;
  unit.description.simulated_duration = 30.0;
  unit.description.input_staging.push_back(
      {"in.dat", "sandbox/in.dat",
       pilot::StagingDirective::Action::kLink, 4.0});
  unit.settled = false;
  unit.notified = false;
  snap.units.push_back(unit);

  snap.pattern_overhead = 0.25;
  snap.retries.push_back({"unit.000001", 130.0, 41});
  PilotRecord pilot;
  pilot.uid = "pilot.000001";
  snap.pilots.push_back(pilot);
  core::GraphExecutor::SavedState::Node node;
  node.status = core::NodeStatus::kSubmitted;
  node.unit_uid = "unit.000001";
  snap.graph.nodes.push_back(node);
  snap.graph.inflight = 1;
  snap.graph.submitted_count = 1;
  return snap;
}

void expect_rejected(std::string_view bytes, const char* what) {
  auto decoded = decode_snapshot(bytes);
  ASSERT_FALSE(decoded.ok()) << "decoder accepted " << what;
  EXPECT_EQ(decoded.status().code(), Errc::kIoError) << what;
  EXPECT_FALSE(decoded.status().message().empty()) << what;
}

TEST(CheckpointCorruption, IntactFileDecodes) {
  auto decoded = decode_snapshot(encode_snapshot(sample_snapshot()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().machine, "test.scale");
  EXPECT_EQ(decoded.value().units.size(), 1u);
}

TEST(CheckpointCorruption, EveryTruncationIsRejected) {
  const std::string bytes = encode_snapshot(sample_snapshot());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    expect_rejected(std::string_view(bytes).substr(0, keep),
                    "a truncated file");
  }
}

TEST(CheckpointCorruption, EveryFlippedPayloadBitIsRejected) {
  const std::string original = encode_snapshot(sample_snapshot());
  // 8 magic + 4 version + 8 size + 8 checksum.
  constexpr std::size_t kHeaderSize = 28;
  ASSERT_GT(original.size(), kHeaderSize);
  for (std::size_t i = kHeaderSize; i < original.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string bytes = original;
      bytes[i] = static_cast<char>(bytes[i] ^ (1 << bit));
      expect_rejected(bytes, "a bit-flipped payload");
    }
  }
}

TEST(CheckpointCorruption, WrongMagicIsRejected) {
  std::string bytes = encode_snapshot(sample_snapshot());
  bytes[0] = 'X';
  auto decoded = decode_snapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos)
      << decoded.status().to_string();
}

TEST(CheckpointCorruption, FutureFormatVersionIsRejected) {
  std::string bytes = encode_snapshot(sample_snapshot());
  const std::uint32_t future = kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  auto decoded = decode_snapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos)
      << decoded.status().to_string();
}

TEST(CheckpointCorruption, PayloadSizeMismatchIsRejected) {
  std::string bytes = encode_snapshot(sample_snapshot());
  std::uint64_t size = 0;
  std::memcpy(&size, bytes.data() + 12, sizeof(size));
  ++size;
  std::memcpy(bytes.data() + 12, &size, sizeof(size));
  expect_rejected(bytes, "a lying payload-size field");
}

TEST(CheckpointCorruption, HugeLengthFieldDoesNotAllocateOrOverread) {
  // The first payload field is the machine-name length; claim it is
  // astronomically long. The decoder must reject it by comparing
  // against the remaining payload, not trust it and allocate.
  Snapshot snap = sample_snapshot();
  std::string bytes = encode_snapshot(snap);
  constexpr std::size_t kHeaderSize = 28;
  const std::uint64_t huge = ~std::uint64_t{0} / 2;
  std::memcpy(bytes.data() + kHeaderSize, &huge, sizeof(huge));
  // Fix up the checksum so the corruption reaches the field decoders.
  const std::string_view payload(bytes.data() + kHeaderSize,
                                 bytes.size() - kHeaderSize);
  const std::uint64_t checksum = fnv1a(payload);
  std::memcpy(bytes.data() + 20, &checksum, sizeof(checksum));
  expect_rejected(bytes, "a huge string-length field");
}

TEST(CheckpointCorruption, ReadSnapshotFileReportsPathInDiagnostics) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ckpt_corrupt")
          .string();
  std::filesystem::create_directories(dir);

  const std::string missing = dir + "/does-not-exist.entkckpt";
  auto not_there = read_snapshot_file(missing);
  ASSERT_FALSE(not_there.ok());

  const std::string garbage_path = dir + "/garbage.entkckpt";
  ASSERT_TRUE(write_file_atomic(garbage_path,
                                "this is not a checkpoint file at all, "
                                "just some prose long enough to pass "
                                "the header-size check")
                  .is_ok());
  auto garbage = read_snapshot_file(garbage_path);
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.status().message().find(garbage_path),
            std::string::npos)
      << garbage.status().to_string();
  EXPECT_NE(garbage.status().message().find("magic"), std::string::npos)
      << garbage.status().to_string();
}

}  // namespace
}  // namespace entk::ckpt
