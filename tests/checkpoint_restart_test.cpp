// Kill/resume equivalence: a run killed at a checkpoint and resumed
// from the snapshot must replay the remaining schedule bit-for-bit.
//
// The strongest correctness statement the ckpt module can make is not
// "the resumed run finishes" but "the resumed run is indistinguishable
// from one that never died": every unit uid and every submit/start/
// stop/finish timestamp — before and after the cut — matches the
// uninterrupted same-seed run exactly. These tests pin that claim at
// >= 10k units for both the bag-of-tasks and the simulation-analysis-
// loop patterns (the latter exercising stage-group barriers across the
// cut), using the FNV-1a trace digest the scale-determinism suite pins
// its golden constant with.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpointed_run.hpp"
#include "ckpt/coordinator.hpp"
#include "ckpt/snapshot.hpp"
#include "common/uid.hpp"
#include "core/entk.hpp"
#include "scale_test_util.hpp"

namespace entk::core {
namespace {

constexpr Count kBagUnits = 10000;
constexpr Count kSalIterations = 2;
constexpr Count kSalSimulations = 5000;
constexpr Count kSalAnalyses = 1;  // 2 * (5000 + 1) = 10002 units

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

SimulationAnalysisLoop sal_workload() {
  SimulationAnalysisLoop pattern(kSalIterations, kSalSimulations,
                                 kSalAnalyses);
  pattern.set_simulation(scale_test::scale_task);
  pattern.set_analysis([](const StageContext& context) {
    TaskSpec spec = scale_test::scale_task(context);
    spec.cores = 8;  // the barrier task is wide, exercising backfill
    return spec;
  });
  return pattern;
}

/// One fresh backend + handle on the shared scale machine.
struct Runtime {
  Runtime()
      : registry(kernels::KernelRegistry::with_builtin_kernels()),
        backend(scale_test::scale_machine()),
        handle(backend, registry,
               [] {
                 ResourceOptions options;
                 options.cores = 2048;
                 options.runtime = 4.0e6;
                 options.scheduler_policy = "backfill";
                 return options;
               }()) {}

  kernels::KernelRegistry registry;
  pilot::SimBackend backend;
  ResourceHandle handle;
};

template <typename Pattern>
std::vector<pilot::ComputeUnitPtr> run_uninterrupted(Pattern pattern) {
  reset_uid_counters_for_testing();
  Runtime rt;
  EXPECT_TRUE(rt.handle.allocate().is_ok());
  auto report = rt.handle.run(pattern);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  if (!report.ok()) return {};
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  return report.take().units;
}

/// Runs with checkpointing and the crash hook armed; returns the
/// snapshot the simulated crash left behind.
template <typename Pattern>
ckpt::Snapshot run_until_crash(Pattern pattern, const std::string& dir,
                               std::uint64_t every_settled,
                               std::uint64_t crash_after) {
  reset_uid_counters_for_testing();
  Runtime rt;
  EXPECT_TRUE(rt.handle.allocate().is_ok());
  ckpt::Coordinator::Options options;
  options.directory = dir;
  options.policy.every_settled = every_settled;
  options.crash_after_snapshots = crash_after;
  ckpt::Coordinator coordinator(rt.backend, rt.handle,
                                std::move(options));
  coordinator.set_identity(pattern.name(), "");
  pattern.set_graph_run_observer(&coordinator);
  auto report = rt.handle.run(pattern);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(
      ckpt::Coordinator::is_checkpoint_stop(report.value().outcome))
      << report.value().outcome.to_string();
  EXPECT_EQ(coordinator.snapshots_written(), crash_after);
  auto snapshot =
      ckpt::read_snapshot_file(coordinator.last_snapshot_path());
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().to_string();
  return snapshot.ok() ? snapshot.take() : ckpt::Snapshot{};
}

/// Restores the snapshot into a fresh runtime and runs to completion.
template <typename Pattern>
std::vector<pilot::ComputeUnitPtr> resume_run(
    Pattern pattern, const ckpt::Snapshot& snapshot,
    const std::string& dir) {
  // The restore contract: reset the uid counters BEFORE allocate() so
  // the pilot creation replay reproduces the snapshot's pilot uids.
  reset_uid_counters_for_testing();
  Runtime rt;
  EXPECT_TRUE(rt.handle.allocate().is_ok());
  ckpt::Coordinator::Options options;
  options.directory = dir;
  ckpt::Coordinator coordinator(rt.backend, rt.handle,
                                std::move(options));
  coordinator.set_identity(pattern.name(), "");
  const Status restored = coordinator.restore_runtime(snapshot);
  EXPECT_TRUE(restored.is_ok()) << restored.to_string();
  if (!restored.is_ok()) return {};
  pattern.set_graph_run_observer(&coordinator);
  auto report = rt.handle.run(pattern);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  if (!report.ok()) return {};
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  return report.take().units;
}

template <typename MakePattern>
void expect_kill_resume_equivalence(MakePattern make,
                                    std::size_t expected_units,
                                    const std::string& dir_name) {
  const std::vector<pilot::ComputeUnitPtr> baseline =
      run_uninterrupted(make());
  ASSERT_EQ(baseline.size(), expected_units);

  const std::string dir = fresh_dir(dir_name);
  const ckpt::Snapshot snapshot =
      run_until_crash(make(), dir, /*every_settled=*/2000,
                      /*crash_after=*/2);
  ASSERT_FALSE(snapshot.units.empty());
  EXPECT_GT(snapshot.engine_now, 0.0);

  const std::vector<pilot::ComputeUnitPtr> resumed =
      resume_run(make(), snapshot, dir);
  ASSERT_EQ(resumed.size(), expected_units);

  // Full-trace equality: the pre-cut timeline comes out of the
  // snapshot, the post-cut timeline out of the resumed engine; both
  // must match the run that never died.
  EXPECT_EQ(scale_test::trace_digest(resumed),
            scale_test::trace_digest(baseline));
  // And the post-cut remaining schedule alone, so a regression that
  // only corrupts restored history cannot mask one that reorders the
  // live remainder (and vice versa).
  EXPECT_EQ(
      scale_test::remaining_schedule_digest(resumed, snapshot.engine_now),
      scale_test::remaining_schedule_digest(baseline,
                                            snapshot.engine_now));
  EXPECT_NE(
      scale_test::remaining_schedule_digest(resumed, snapshot.engine_now),
      scale_test::trace_digest(resumed))
      << "the crash point must leave work to resume";
}

TEST(CheckpointRestart, BagKillResumeReplaysRemainingScheduleBitIdentical) {
  expect_kill_resume_equivalence(
      [] { return scale_test::scale_workload(kBagUnits); },
      static_cast<std::size_t>(kBagUnits), "ckpt_bag");
}

TEST(CheckpointRestart, SalKillResumeReplaysRemainingScheduleBitIdentical) {
  expect_kill_resume_equivalence(
      [] { return sal_workload(); },
      static_cast<std::size_t>(kSalIterations *
                               (kSalSimulations + kSalAnalyses)),
      "ckpt_sal");
}

TEST(CheckpointRestart, SnapshotSurvivesEncodeDecodeRoundTrip) {
  const std::string dir = fresh_dir("ckpt_roundtrip");
  const ckpt::Snapshot snapshot = run_until_crash(
      scale_test::scale_workload(200), dir, /*every_settled=*/50,
      /*crash_after=*/1);
  const std::string bytes = ckpt::encode_snapshot(snapshot);
  auto decoded = ckpt::decode_snapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(ckpt::encode_snapshot(decoded.value()), bytes)
      << "decode must be the exact inverse of encode";
  EXPECT_EQ(decoded.value().units.size(), snapshot.units.size());
  EXPECT_EQ(decoded.value().engine_now, snapshot.engine_now);
}

TEST(CheckpointRestart, StopRequestWritesFinalSnapshotAndStops) {
  const std::string dir = fresh_dir("ckpt_stop");
  reset_uid_counters_for_testing();
  Runtime rt;
  ASSERT_TRUE(rt.handle.allocate().is_ok());
  ckpt::Coordinator::Options options;
  options.directory = dir;
  bool stop = false;
  options.stop_requested = [&stop] { return stop; };
  ckpt::Coordinator coordinator(rt.backend, rt.handle,
                                std::move(options));
  BagOfTasks pattern = scale_test::scale_workload(500);
  coordinator.set_identity(pattern.name(), "");
  pattern.set_graph_run_observer(&coordinator);
  // Fire the "signal" the moment a unit settles, mid-run.
  const auto token = rt.handle.unit_manager()->add_settled_observer(
      [&stop](const pilot::ComputeUnitPtr&, pilot::UnitState) {
        stop = true;
      });
  auto report = rt.handle.run(pattern);
  rt.handle.unit_manager()->remove_settled_observer(token);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(
      ckpt::Coordinator::is_checkpoint_stop(report.value().outcome));
  EXPECT_EQ(coordinator.snapshots_written(), 1u);
  EXPECT_TRUE(
      std::filesystem::exists(coordinator.last_snapshot_path()));
}

TEST(CheckpointRestart, WorkloadRunCrashesAndResumesThroughFrontDoor) {
  WorkloadSpec spec;
  spec.backend = "sim";
  spec.machine = "xsede.comet";
  spec.cores = 24;
  spec.runtime = 36000.0;
  spec.scheduler = "backfill";
  spec.pattern = "bag";
  spec.simulations = 64;
  Config task;
  task.set("kernel", "misc.sleep");
  task.set("duration", 30.0);
  spec.sections["task"] = task;
  ASSERT_TRUE(spec.validate().is_ok());
  auto registry = kernels::KernelRegistry::with_builtin_kernels();

  const std::string dir = fresh_dir("ckpt_front_door");
  ckpt::CheckpointedRunOptions options;
  options.directory = dir;
  options.policy.every_settled = 16;
  options.crash_after_snapshots = 1;
  reset_uid_counters_for_testing();
  auto crashed =
      ckpt::run_workload_with_checkpoints(spec, registry, options);
  ASSERT_TRUE(crashed.ok()) << crashed.status().to_string();
  ASSERT_TRUE(crashed.value().checkpoint_stop);
  ASSERT_EQ(crashed.value().snapshots_written, 1u);

  ckpt::CheckpointedRunOptions resume_options;
  resume_options.directory = dir;
  resume_options.resume_path = crashed.value().last_snapshot_path;
  auto resumed = ckpt::run_workload_with_checkpoints(spec, registry,
                                                     resume_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  EXPECT_FALSE(resumed.value().checkpoint_stop);
  EXPECT_TRUE(resumed.value().report.outcome.is_ok())
      << resumed.value().report.outcome.to_string();
  EXPECT_EQ(resumed.value().report.units.size(), 64u);

  // A snapshot from workload A must not resume workload B.
  WorkloadSpec other = spec;
  other.simulations = 65;
  reset_uid_counters_for_testing();
  auto mismatch = ckpt::run_workload_with_checkpoints(other, registry,
                                                      resume_options);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("different workload"),
            std::string::npos)
      << mismatch.status().to_string();
}

}  // namespace
}  // namespace entk::core
