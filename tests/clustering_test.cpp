// Tests of k-means clustering and 2-D free-energy surfaces.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/clustering.hpp"
#include "analysis/fes.hpp"
#include "common/rng.hpp"

namespace entk::analysis {
namespace {

std::vector<std::vector<double>> two_blobs(std::size_t per_blob,
                                           double separation,
                                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<double>> points;
  for (int blob = 0; blob < 2; ++blob) {
    const double cx = blob * separation;
    for (std::size_t i = 0; i < per_blob; ++i) {
      points.push_back({cx + 0.3 * rng.normal(), 0.3 * rng.normal()});
    }
  }
  return points;
}

TEST(KMeans, SeparatesTwoBlobs) {
  const auto points = two_blobs(50, 10.0, 11);
  KMeansOptions options;
  options.k = 2;
  auto result = kmeans(points, options);
  ASSERT_TRUE(result.ok());
  // Each blob is one cluster: the first 50 share a label, the last 50
  // share the other.
  const std::size_t label0 = result.value().assignment[0];
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(result.value().assignment[i], label0);
  }
  for (std::size_t i = 50; i < 100; ++i) {
    EXPECT_NE(result.value().assignment[i], label0);
  }
  // Centroids near (0,0) and (10,0).
  std::vector<double> xs{result.value().centroids[0][0],
                         result.value().centroids[1][0]};
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[0], 0.0, 0.5);
  EXPECT_NEAR(xs[1], 10.0, 0.5);
  EXPECT_GT(cluster_separation_score(points, result.value()), 0.8);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  const auto points = two_blobs(40, 6.0, 21);
  double previous = std::numeric_limits<double>::max();
  for (std::size_t k = 1; k <= 4; ++k) {
    KMeansOptions options;
    options.k = k;
    auto result = kmeans(points, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().inertia, previous + 1e-9) << "k=" << k;
    previous = result.value().inertia;
  }
}

TEST(KMeans, DeterministicForFixedSeed) {
  const auto points = two_blobs(30, 4.0, 31);
  KMeansOptions options;
  options.k = 3;
  const auto a = kmeans(points, options);
  const auto b = kmeans(points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().assignment, b.value().assignment);
  EXPECT_DOUBLE_EQ(a.value().inertia, b.value().inertia);
}

TEST(KMeans, ValidatesInput) {
  KMeansOptions options;
  options.k = 0;
  EXPECT_EQ(kmeans({{1.0}}, options).status().code(),
            Errc::kInvalidArgument);
  options.k = 5;
  EXPECT_EQ(kmeans({{1.0}, {2.0}}, options).status().code(),
            Errc::kInvalidArgument);
  options.k = 1;
  EXPECT_EQ(kmeans({{1.0}, {2.0, 3.0}}, options).status().code(),
            Errc::kInvalidArgument);
}

TEST(KMeans, HandlesDuplicatePoints) {
  std::vector<std::vector<double>> points(10, {1.0, 2.0});
  KMeansOptions options;
  options.k = 3;
  auto result = kmeans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().inertia, 0.0, 1e-12);
}

// ------------------------------------------------------------------- FES

TEST(Histogram2D, CountsAndCenters) {
  Histogram2D histogram(0.0, 4.0, 4, 0.0, 2.0, 2);
  histogram.add(0.5, 0.5);
  histogram.add(0.5, 0.6);
  histogram.add(3.5, 1.5);
  histogram.add(-100.0, 100.0);  // clamps to (0, 1)
  EXPECT_EQ(histogram.total(), 4u);
  EXPECT_EQ(histogram.count(0, 0), 2u);
  EXPECT_EQ(histogram.count(3, 1), 1u);
  EXPECT_EQ(histogram.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(histogram.x_center(0), 0.5);
  EXPECT_DOUBLE_EQ(histogram.y_center(1), 1.5);
}

TEST(Histogram2D, FreeEnergyBasinsOrdered) {
  Histogram2D histogram(0.0, 2.0, 2, 0.0, 1.0, 1);
  for (int i = 0; i < 90; ++i) histogram.add(0.5, 0.5);  // deep basin
  for (int i = 0; i < 10; ++i) histogram.add(1.5, 0.5);  // shallow
  const auto g = histogram.free_energy(1.0);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_NEAR(g[1], std::log(9.0), 1e-12);  // kT ln(p0/p1)
}

TEST(Histogram2D, ProbabilitiesNormalised) {
  Histogram2D histogram(-1.0, 1.0, 8, -1.0, 1.0, 8);
  Xoshiro256 rng(77);
  for (int i = 0; i < 5000; ++i) {
    histogram.add(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  const auto p = histogram.probabilities();
  double sum = 0.0;
  for (const double value : p) sum += value;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace entk::analysis
