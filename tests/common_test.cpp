// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/uid.hpp"

namespace entk {
namespace {

// ------------------------------------------------------------------ status

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), Errc::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status status = make_error(Errc::kNotFound, "nothing here");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), Errc::kNotFound);
  EXPECT_EQ(status.to_string(), "not_found: nothing here");
}

TEST(Status, EveryCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(Errc::kIoError); ++code) {
    EXPECT_STRNE(errc_name(static_cast<Errc>(code)), "unknown");
  }
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> value(42);
  EXPECT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_TRUE(value.status().is_ok());

  Result<int> error(make_error(Errc::kInternal, "boom"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), Errc::kInternal);
  EXPECT_THROW(error.value(), std::runtime_error);
}

TEST(Result, TakeMovesTheValue) {
  Result<std::string> result(std::string("payload"));
  const std::string taken = result.take();
  EXPECT_EQ(taken, "payload");
}

TEST(Result, ConstructingFromOkStatusThrows) {
  EXPECT_THROW(Result<int>(Status::ok()), std::logic_error);
}

TEST(Check, ThrowsWithContext) {
  try {
    ENTK_CHECK(false, "context message");
    FAIL() << "ENTK_CHECK did not throw";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string(error.what()).find("context message"),
              std::string::npos);
  }
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexUnbiasedOverSmallRange) {
  Xoshiro256 rng(11);
  std::vector<int> counts(5, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(5)];
  for (const int count : counts) {
    EXPECT_NEAR(count, draws / 5, draws / 50);  // within 10%
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Xoshiro256 rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Xoshiro256 rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(3.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 parent(23);
  Xoshiro256 child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ------------------------------------------------------------------- stats

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsPooledStats) {
  RunningStats a, b, pooled;
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    (i % 2 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
}

TEST(RunningStats, ResetClearsEverything) {
  RunningStats stats;
  stats.add(5.0);
  stats.add(7.0);
  stats.reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(median(values), 2.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 30.0), 7.0);
}

TEST(LinearFit, RecoversPlantedLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

// ----------------------------------------------------------------- strings

TEST(Strings, SplitJoinTrim) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(join({"x", "y", "z"}, "--"), "x--y--z");
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_TRUE(starts_with("misc.mkfile", "misc."));
  EXPECT_FALSE(starts_with("md", "misc."));
  EXPECT_TRUE(ends_with("traj.dat", ".dat"));
}

TEST(Strings, FormatSeconds) {
  EXPECT_EQ(format_seconds(7200.0), "2.00 h");
  EXPECT_EQ(format_seconds(90.0), "1.50 min");
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
  EXPECT_EQ(format_seconds(0.0025), "2.50 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.50 us");
  EXPECT_EQ(format_seconds(0.0), "0 s");
}

// ------------------------------------------------------------------ config

TEST(Config, TypedRoundTrips) {
  Config config;
  config.set("name", "alanine");
  config.set("steps", std::int64_t{3000});
  config.set("dt", 0.005);
  config.set("mpi", true);
  EXPECT_EQ(config.get_string("name").value(), "alanine");
  EXPECT_EQ(config.get_int("steps").value(), 3000);
  EXPECT_DOUBLE_EQ(config.get_double("dt").value(), 0.005);
  EXPECT_TRUE(config.get_bool("mpi").value());
  EXPECT_EQ(config.size(), 4u);
}

TEST(Config, MissingAndMalformedKeys) {
  Config config;
  config.set("text", "not-a-number");
  EXPECT_EQ(config.get_string("absent").status().code(), Errc::kNotFound);
  EXPECT_EQ(config.get_int("text").status().code(), Errc::kInvalidArgument);
  EXPECT_EQ(config.get_double("text").status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(config.get_bool("text").status().code(), Errc::kInvalidArgument);
  EXPECT_EQ(config.get_int_or("absent", 9), 9);
  EXPECT_EQ(config.get_string_or("absent", "d"), "d");
}

TEST(Config, FromPairsAndMerge) {
  auto parsed = Config::from_pairs({"a=1", "b = two ", "a=3"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().get_int("a").value(), 3);
  EXPECT_EQ(parsed.value().get_string("b").value(), "two");
  EXPECT_EQ(Config::from_pairs({"oops"}).status().code(),
            Errc::kInvalidArgument);

  Config base;
  base.set("x", 1);
  base.set("y", 2);
  Config overlay;
  overlay.set("y", 20);
  overlay.set("z", 30);
  const Config merged = base.merged_with(overlay);
  EXPECT_EQ(merged.get_int("x").value(), 1);
  EXPECT_EQ(merged.get_int("y").value(), 20);
  EXPECT_EQ(merged.get_int("z").value(), 30);
}

// --------------------------------------------------------------------- uid

TEST(Uid, MonotonePerPrefix) {
  const std::string first = next_uid("testprefix");
  const std::string second = next_uid("testprefix");
  const std::string other = next_uid("otherprefix");
  EXPECT_NE(first, second);
  EXPECT_TRUE(starts_with(first, "testprefix."));
  EXPECT_TRUE(starts_with(other, "otherprefix."));
  EXPECT_LT(first, second);  // zero-padded counters sort
}

TEST(Uid, ThreadSafeUniqueness) {
  std::vector<std::thread> threads;
  std::vector<std::vector<std::string>> uids(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&uids, t] {
      for (int i = 0; i < 500; ++i) {
        uids[t].push_back(next_uid("concurrent"));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<std::string> unique;
  for (const auto& batch : uids) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), 2000u);
}

// ------------------------------------------------------------------- table

TEST(Table, RendersAlignedColumnsAndCsv) {
  Table table({"cores", "ttc"});
  table.add_row(std::vector<std::string>{"24", "10.5"});
  table.add_numeric_row({192.0, 3.25}, 2);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("| cores"), std::string::npos);
  EXPECT_NE(rendered.find("| ttc"), std::string::npos);
  EXPECT_NE(rendered.find("192.00"), std::string::npos);
  EXPECT_EQ(table.to_csv(), "cores,ttc\n24,10.5\n192.00,3.25\n");
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsBadRows) {
  Table table({"one", "two"});
  EXPECT_THROW(table.add_row(std::vector<std::string>{"only-one"}),
               std::logic_error);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace entk
