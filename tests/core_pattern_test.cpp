// Tests of the EnTK core: patterns, execution plugin, resource handle,
// overhead profiling — all on the simulated backend.
#include <gtest/gtest.h>

#include "core/entk.hpp"

namespace entk::core {
namespace {

TaskSpec sleep_spec(double duration) {
  TaskSpec spec;
  spec.kernel = "misc.sleep";
  spec.args.set("duration", duration);
  return spec;
}

class CorePatternTest : public ::testing::Test {
 protected:
  CorePatternTest()
      : registry_(kernels::KernelRegistry::with_builtin_kernels()),
        backend_(sim::localhost_profile()) {}

  ResourceHandle make_handle(Count cores) {
    ResourceOptions options;
    options.cores = cores;
    return ResourceHandle(backend_, registry_, options);
  }

  kernels::KernelRegistry registry_;
  pilot::SimBackend backend_;
};

TEST_F(CorePatternTest, BagOfTasksRunsAllTasks) {
  auto handle = make_handle(8);
  ASSERT_TRUE(handle.allocate().is_ok());
  BagOfTasks pattern(16, [](const StageContext&) { return sleep_spec(2.0); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok());
  EXPECT_EQ(report.value().units.size(), 16u);
  for (const auto& unit : report.value().units) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
  }
  EXPECT_TRUE(handle.deallocate().is_ok());
}

TEST_F(CorePatternTest, RunWithoutAllocateFails) {
  auto handle = make_handle(4);
  BagOfTasks pattern(1, [](const StageContext&) { return sleep_spec(1.0); });
  EXPECT_EQ(handle.run(pattern).status().code(), Errc::kFailedPrecondition);
}

TEST_F(CorePatternTest, PipelineStagesChainInOrderPerPipeline) {
  auto handle = make_handle(8);
  ASSERT_TRUE(handle.allocate().is_ok());

  EnsembleOfPipelines pattern(4, 3);
  for (Count s = 1; s <= 3; ++s) {
    pattern.set_stage(s, [](const StageContext&) { return sleep_spec(5.0); });
  }
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  ASSERT_EQ(pattern.units().size(), 12u);

  // Units are submitted stage-by-stage per pipeline; group them back by
  // pipeline through their submission order: the first 4 are stage 1.
  // Verify chaining: every stage-2 unit starts only after some stage-1
  // unit stopped, and per-pipeline ordering is strictly increasing.
  // (Pipeline identity is implied by chained submission in this test:
  // each stage-1 completion triggers exactly one stage-2 submission.)
  std::vector<TimePoint> stage1_stops;
  for (std::size_t i = 0; i < 4; ++i) {
    stage1_stops.push_back(pattern.units()[i]->exec_stopped_at());
  }
  for (std::size_t i = 4; i < pattern.units().size(); ++i) {
    const auto& unit = pattern.units()[i];
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
    EXPECT_GE(unit->submitted_at(),
              *std::min_element(stage1_stops.begin(), stage1_stops.end()));
  }
}

TEST_F(CorePatternTest, PipelinesProgressIndependently) {
  // 2 pipelines x 2 stages on 2 cores, but pipeline 0 has much shorter
  // tasks: its stage 2 must start before pipeline 1's stage 1 ends —
  // i.e. no global barrier between stages.
  auto handle = make_handle(2);
  ASSERT_TRUE(handle.allocate().is_ok());

  EnsembleOfPipelines pattern(2, 2);
  auto stage_fn = [](const StageContext& context) {
    return sleep_spec(context.instance == 0 ? 2.0 : 50.0);
  };
  pattern.set_stage(1, stage_fn);
  pattern.set_stage(2, stage_fn);
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());

  // Submission order: [p0s1, p1s1] then chained stage-2 units. The
  // fast pipeline's stage-2 unit must have started while the slow
  // pipeline's stage-1 unit was still executing.
  const auto& units = pattern.units();
  ASSERT_EQ(units.size(), 4u);
  const auto& slow_stage1 = units[1];
  const auto& fast_stage2 = units[2];
  EXPECT_LT(fast_stage2->exec_started_at(), slow_stage1->exec_stopped_at());
}

TEST_F(CorePatternTest, PipelineAbortsOnStageFailure) {
  auto handle = make_handle(4);
  ASSERT_TRUE(handle.allocate().is_ok());
  EnsembleOfPipelines pattern(2, 3);
  pattern.set_stage(1, [](const StageContext& context) {
    auto spec = sleep_spec(1.0);
    spec.inject_failure = context.instance == 1;  // pipeline 1 fails
    return spec;
  });
  pattern.set_stage(2, [](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_stage(3, [](const StageContext&) { return sleep_spec(1.0); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().outcome.is_ok());
  // Pipeline 0 completed all three stages; pipeline 1 only attempted
  // stage 1: 3 + 1 units.
  EXPECT_EQ(pattern.units().size(), 4u);
}

TEST_F(CorePatternTest, PipelineRetriesFailedStageAndContinues) {
  auto handle = make_handle(4);
  ASSERT_TRUE(handle.allocate().is_ok());
  EnsembleOfPipelines pattern(1, 2);
  pattern.set_stage(1, [](const StageContext&) {
    auto spec = sleep_spec(1.0);
    spec.inject_failure = true;
    spec.retry.max_retries = 1;
    return spec;
  });
  pattern.set_stage(2, [](const StageContext&) { return sleep_spec(1.0); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  ASSERT_EQ(pattern.units().size(), 2u);
  EXPECT_EQ(pattern.units()[0]->retries(), 1);
  EXPECT_EQ(pattern.units()[0]->state(), pilot::UnitState::kDone);
}

TEST_F(CorePatternTest, SalIteratesWithBarriers) {
  auto handle = make_handle(8);
  ASSERT_TRUE(handle.allocate().is_ok());
  SimulationAnalysisLoop pattern(2, 4, 1);
  pattern.set_simulation(
      [](const StageContext&) { return sleep_spec(10.0); });
  pattern.set_analysis([](const StageContext&) { return sleep_spec(3.0); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  ASSERT_EQ(pattern.simulation_units().size(), 8u);
  ASSERT_EQ(pattern.analysis_units().size(), 2u);

  // Barrier: iteration-1 analysis starts after every iteration-1
  // simulation stopped, and iteration-2 simulations start after it.
  TimePoint last_sim_stop_iter1 = 0.0;
  for (std::size_t s = 0; s < 4; ++s) {
    last_sim_stop_iter1 = std::max(
        last_sim_stop_iter1, pattern.simulation_units()[s]->exec_stopped_at());
  }
  const auto& analysis1 = pattern.analysis_units()[0];
  EXPECT_GE(analysis1->exec_started_at(), last_sim_stop_iter1);
  for (std::size_t s = 4; s < 8; ++s) {
    EXPECT_GE(pattern.simulation_units()[s]->exec_started_at(),
              analysis1->exec_stopped_at());
  }
}

TEST_F(CorePatternTest, SalAdaptiveCountsChangeBetweenIterations) {
  auto handle = make_handle(8);
  ASSERT_TRUE(handle.allocate().is_ok());
  SimulationAnalysisLoop pattern(3, 2, 1);
  pattern.set_adaptive_counts([](Count iteration) {
    return std::make_pair<Count, Count>(iteration + 1, 1);
  });
  pattern.set_simulation(
      [](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_analysis([](const StageContext&) { return sleep_spec(1.0); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  // 2 + 3 + 4 simulations, 3 analyses.
  EXPECT_EQ(pattern.simulation_units().size(), 9u);
  EXPECT_EQ(pattern.analysis_units().size(), 3u);
}

TEST_F(CorePatternTest, EnsembleExchangeGlobalSweepAlternatesStages) {
  auto handle = make_handle(8);
  ASSERT_TRUE(handle.allocate().is_ok());
  EnsembleExchange pattern(4, 3, EnsembleExchange::ExchangeMode::kGlobalSweep);
  pattern.set_simulation(
      [](const StageContext&) { return sleep_spec(8.0); });
  pattern.set_exchange([](const StageContext&) { return sleep_spec(1.0); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  EXPECT_EQ(pattern.simulation_units().size(), 12u);
  EXPECT_EQ(pattern.exchange_units().size(), 3u);
  // Exchange k must start after all cycle-k simulations.
  for (std::size_t cycle = 0; cycle < 3; ++cycle) {
    TimePoint last_sim = 0.0;
    for (std::size_t r = 0; r < 4; ++r) {
      last_sim = std::max(last_sim, pattern.simulation_units()[cycle * 4 + r]
                                        ->exec_stopped_at());
    }
    EXPECT_GE(pattern.exchange_units()[cycle]->exec_started_at(), last_sim);
  }
}

TEST_F(CorePatternTest, EnsembleExchangePairwiseSkipsGlobalBarrier) {
  // 4 replicas on 4 cores; replicas 0,1 finish fast, 2,3 slowly. In
  // pairwise mode the (0,1) exchange must run before replica 3's
  // simulation has finished.
  auto handle = make_handle(4);
  ASSERT_TRUE(handle.allocate().is_ok());
  EnsembleExchange pattern(4, 1, EnsembleExchange::ExchangeMode::kPairwise);
  pattern.set_simulation([](const StageContext& context) {
    return sleep_spec(context.instance < 2 ? 2.0 : 60.0);
  });
  pattern.set_pair_exchange([](Count, Count, Count) {
    return sleep_spec(1.0);
  });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  ASSERT_EQ(pattern.exchange_units().size(), 2u);
  const auto& fast_exchange = pattern.exchange_units()[0];
  const auto& slow_sim = pattern.simulation_units()[3];
  EXPECT_LT(fast_exchange->exec_stopped_at(), slow_sim->exec_stopped_at());
}

TEST_F(CorePatternTest, SequenceComposesPatterns) {
  auto handle = make_handle(4);
  ASSERT_TRUE(handle.allocate().is_ok());
  auto first = std::make_unique<BagOfTasks>(
      2, [](const StageContext&) { return sleep_spec(2.0); });
  auto second = std::make_unique<BagOfTasks>(
      3, [](const StageContext&) { return sleep_spec(2.0); });
  auto* first_raw = first.get();
  auto* second_raw = second.get();
  SequencePattern sequence("combo");
  sequence.append(std::move(first));
  sequence.append(std::move(second));
  auto report = handle.run(sequence);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  EXPECT_EQ(report.value().units.size(), 5u);
  // Second pattern's units start after the first pattern finished.
  TimePoint first_done = 0.0;
  for (const auto& unit : first_raw->units()) {
    first_done = std::max(first_done, unit->exec_stopped_at());
  }
  for (const auto& unit : second_raw->units()) {
    EXPECT_GE(unit->exec_started_at(), first_done);
  }
}

TEST_F(CorePatternTest, ValidationErrorsAreReported) {
  auto handle = make_handle(4);
  ASSERT_TRUE(handle.allocate().is_ok());

  BagOfTasks empty_bag(0, [](const StageContext&) { return TaskSpec{}; });
  auto report = handle.run(empty_bag);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().outcome.code(), Errc::kInvalidArgument);

  EnsembleOfPipelines missing_stage(2, 2);
  missing_stage.set_stage(1,
                          [](const StageContext&) { return TaskSpec{}; });
  report = handle.run(missing_stage);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().outcome.code(), Errc::kInvalidArgument);

  BagOfTasks unknown_kernel(1, [](const StageContext&) {
    TaskSpec spec;
    spec.kernel = "no.such.kernel";
    return spec;
  });
  report = handle.run(unknown_kernel);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().outcome.code(), Errc::kNotFound);
}

TEST_F(CorePatternTest, OverheadProfileDecomposesTtc) {
  auto handle = make_handle(8);
  ASSERT_TRUE(handle.allocate().is_ok());
  BagOfTasks pattern(8, [](const StageContext&) { return sleep_spec(10.0); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  const OverheadProfile& overheads = report.value().overheads;
  EXPECT_EQ(overheads.n_units, 8u);
  EXPECT_DOUBLE_EQ(overheads.core_overhead, handle.core_overhead());
  EXPECT_NEAR(overheads.pattern_overhead,
              8 * handle.options().per_task_overhead, 1e-9);
  // All tasks concurrent: execution spans ~10s plus the staggered
  // spawn offsets.
  EXPECT_GE(overheads.execution_time, 10.0);
  EXPECT_LT(overheads.execution_time, 12.0);
  EXPECT_GT(overheads.runtime_overhead, 0.0);
  EXPECT_NEAR(overheads.ttc,
              overheads.core_overhead + report.value().run_span, 1e-9);
  EXPECT_GT(overheads.pilot_startup, 0.0);
  EXPECT_NEAR(overheads.mean_unit_execution, 10.0, 1e-9);
}

TEST_F(CorePatternTest, ExecutionPluginTranslatesSpecs) {
  auto handle = make_handle(4);
  ASSERT_TRUE(handle.allocate().is_ok());
  ExecutionPlugin plugin(registry_, *handle.unit_manager(), backend_);

  TaskSpec spec;
  spec.kernel = "md.simulate";
  spec.args.set("steps", 3000);
  spec.args.set("n_particles", 2881);
  spec.args.set("cores", 4);
  auto description = plugin.translate(spec);
  ASSERT_TRUE(description.ok()) << description.status().to_string();
  EXPECT_EQ(description.value().cores, 4);
  EXPECT_TRUE(description.value().uses_mpi);
  EXPECT_GT(description.value().simulated_duration, 0.0);
  EXPECT_EQ(description.value().output_staging.size(), 1u);

  // Core override rescales the cost model linearly.
  TaskSpec serial = spec;
  serial.args.set("cores", 1);
  TaskSpec overridden = serial;
  overridden.cores = 4;
  const auto serial_duration =
      plugin.translate(serial).value().simulated_duration;
  const auto overridden_duration =
      plugin.translate(overridden).value().simulated_duration;
  EXPECT_NEAR(overridden_duration, serial_duration / 4.0, 1e-9);
}

}  // namespace
}  // namespace entk::core
