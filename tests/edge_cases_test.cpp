// Edge-case and regression tests across the stack.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/entk.hpp"
#include "pilot/local_backend.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/unit_manager.hpp"
#include "sim/engine.hpp"

namespace entk {
namespace {

core::TaskSpec sleep_spec(double duration) {
  core::TaskSpec spec;
  spec.kernel = "misc.sleep";
  spec.args.set("duration", duration);
  return spec;
}

// ---------------------------------------------------------------- engine

TEST(EngineEdge, CancelFromInsideACallback) {
  sim::Engine engine;
  bool second_fired = false;
  sim::EventId second = 0;
  engine.schedule(1.0, [&] { EXPECT_TRUE(engine.cancel(second)); });
  second = engine.schedule(2.0, [&] { second_fired = true; });
  engine.run();
  EXPECT_FALSE(second_fired);
}

TEST(EngineEdge, SameTimeEventsScheduledFromCallbackRunAfter) {
  sim::Engine engine;
  std::vector<int> order;
  engine.schedule(1.0, [&] {
    order.push_back(1);
    engine.schedule(0.0, [&] { order.push_back(3); });
  });
  engine.schedule(1.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineEdge, DispatchingFlagVisibleInsideCallbacks) {
  sim::Engine engine;
  bool observed = false;
  engine.schedule(1.0, [&] { observed = engine.dispatching(); });
  EXPECT_FALSE(engine.dispatching());
  engine.run();
  EXPECT_TRUE(observed);
  EXPECT_FALSE(engine.dispatching());
}

// --------------------------------------------------------- local payloads

TEST(LocalPayloadEdge, ThrowingPayloadFailsUnitNotProcess) {
  pilot::LocalBackend backend(2);
  pilot::PilotManager pilot_manager(backend);
  pilot::PilotDescription description;
  description.resource = "localhost";
  description.cores = 2;
  auto pilot = pilot_manager.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot_manager.wait_active(pilot.value()).is_ok());

  pilot::UnitManager units(backend);
  units.add_pilot(pilot.value());
  pilot::UnitDescription unit;
  unit.name = "thrower";
  unit.executable = "x";
  unit.payload = [](const pilot::UnitRuntimeContext&) -> Status {
    throw std::runtime_error("kaboom");
  };
  auto submitted = units.submit_units({std::move(unit)});
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(units.wait_units(submitted.value(), 30.0).is_ok());
  EXPECT_EQ(submitted.value()[0]->state(), pilot::UnitState::kFailed);
  EXPECT_NE(submitted.value()[0]->final_status().message().find("kaboom"),
            std::string::npos);
}

// ------------------------------------------------------------ EE async DAG

TEST(AsyncExchangeEdge, FastPairReachesCycleTwoBeforeSlowPairFinishes) {
  // 4 replicas, 2 cycles, pairwise: replicas 0/1 are fast, 2/3 slow.
  // With no barrier, the (0,1) pair's cycle-2 simulations must start
  // before replica 3's cycle-1 simulation ends.
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 8;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  core::EnsembleExchange pattern(
      4, 2, core::EnsembleExchange::ExchangeMode::kPairwise);
  pattern.set_simulation([](const core::StageContext& context) {
    return sleep_spec(context.instance < 2 ? 5.0 : 200.0);
  });
  pattern.set_pair_exchange(
      [](Count, Count, Count) { return sleep_spec(1.0); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  // 8 sims + exchanges. Cycle-1 pairs (parity 0): (0,1), (2,3);
  // cycle-2 pairs (parity 1): (1,2) — replicas 0 and 3 are unpaired.
  ASSERT_EQ(pattern.simulation_units().size(), 8u);
  // Replica 0 is unpaired in cycle 2 (parity 1), so after the fast
  // (0,1) exchange at t ~ 6 its cycle-2 simulation runs immediately:
  // at least three simulations must have *finished* long before the
  // slow replicas' cycle-1 simulations end at t ~ 200. Under a global
  // barrier no cycle-2 simulation could finish before t ~ 200.
  std::size_t finished_early = 0;
  for (const auto& unit : pattern.simulation_units()) {
    if (unit->exec_stopped_at() < 150.0) ++finished_early;
  }
  EXPECT_GE(finished_early, 3u);
  for (const auto& unit : report.value().units) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
  }
}

TEST(AsyncExchangeEdge, SimFailureReleasesThePartner) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  core::EnsembleExchange pattern(
      4, 2, core::EnsembleExchange::ExchangeMode::kPairwise);
  pattern.set_simulation([](const core::StageContext& context) {
    auto spec = sleep_spec(2.0);
    // Replica 1 fails in cycle 1: its partner 0 must not deadlock.
    spec.inject_failure = context.instance == 1 && context.iteration == 1;
    return spec;
  });
  pattern.set_pair_exchange(
      [](Count, Count, Count) { return sleep_spec(0.5); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().outcome.is_ok());  // failure is surfaced
  // The run completed (no deadlock); replicas 2/3 went on.
  EXPECT_GE(pattern.simulation_units().size(), 4u);
}

// --------------------------------------------------------------- sequence

TEST(SequenceEdge, AbortsAtFirstFailingChild) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  auto failing = std::make_unique<core::BagOfTasks>(
      1, [](const core::StageContext&) {
        auto spec = sleep_spec(1.0);
        spec.inject_failure = true;
        return spec;
      });
  auto never_runs = std::make_unique<core::BagOfTasks>(
      1, [](const core::StageContext&) { return sleep_spec(1.0); });
  auto* never_raw = never_runs.get();
  core::SequencePattern sequence;
  sequence.append(std::move(failing));
  sequence.append(std::move(never_runs));
  auto report = handle.run(sequence);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().outcome.is_ok());
  EXPECT_TRUE(never_raw->units().empty());  // second child never started
}

// ---------------------------------------------------------- resource handle

TEST(ResourceHandleEdge, ReallocateAfterDeallocate) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(handle.allocate().is_ok()) << "round " << round;
    core::BagOfTasks pattern(
        2, [](const core::StageContext&) { return sleep_spec(1.0); });
    auto report = handle.run(pattern);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().outcome.is_ok());
    ASSERT_TRUE(handle.deallocate().is_ok());
  }
  // Double allocate is rejected while a pilot is held.
  ASSERT_TRUE(handle.allocate().is_ok());
  EXPECT_EQ(handle.allocate().code(), Errc::kFailedPrecondition);
  ASSERT_TRUE(handle.deallocate().is_ok());
  // Deallocate with no pilot is rejected.
  EXPECT_EQ(handle.deallocate().code(), Errc::kFailedPrecondition);
}

TEST(ResourceHandleEdge, WaitUnitsTimeoutSurfaces) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  pilot::PilotManager pilot_manager(backend);
  pilot::PilotDescription description;
  description.resource = "localhost";
  description.cores = 1;
  auto pilot = pilot_manager.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot_manager.wait_active(pilot.value()).is_ok());
  pilot::UnitManager units(backend);
  units.add_pilot(pilot.value());
  pilot::UnitDescription unit;
  unit.name = "long";
  unit.executable = "x";
  unit.simulated_duration = 1000.0;
  auto submitted = units.submit_units({std::move(unit)});
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(units.wait_units(submitted.value(), /*timeout=*/10.0).code(),
            Errc::kTimedOut);
  // After the timeout we can still wait to completion.
  ASSERT_TRUE(units.wait_units(submitted.value()).is_ok());
}

// ------------------------------------------------------------ sim agent

TEST(SimAgentEdge, CancelDuringInputStagingWindow) {
  // A unit with heavy input staging is killed while staging: its cores
  // come back and the state ends cancelled.
  auto machine = sim::localhost_profile();
  machine.staging_latency = 5.0;  // long staging window
  pilot::SimBackend backend(machine);
  pilot::PilotManager pilot_manager(backend);
  pilot::PilotDescription description;
  description.resource = "localhost";
  description.cores = 1;
  auto pilot = pilot_manager.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot_manager.wait_active(pilot.value()).is_ok());
  pilot::UnitManager units(backend);
  units.add_pilot(pilot.value());

  pilot::UnitDescription unit;
  unit.name = "stager";
  unit.executable = "x";
  unit.simulated_duration = 50.0;
  unit.input_staging.push_back(
      {"big.bin", "", pilot::StagingDirective::Action::kCopy, 100.0});
  auto submitted = units.submit_units({std::move(unit)});
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(backend
                  .drive_until([&] {
                    return submitted.value()[0]->state() ==
                           pilot::UnitState::kStagingInput;
                  })
                  .is_ok());
  ASSERT_TRUE(units.cancel_unit(submitted.value()[0]).is_ok());
  EXPECT_EQ(submitted.value()[0]->state(), pilot::UnitState::kCanceled);
  // The core is free again: a fresh unit runs to completion.
  pilot::UnitDescription follow_up;
  follow_up.name = "next";
  follow_up.executable = "x";
  follow_up.simulated_duration = 1.0;
  auto next = units.submit_units({std::move(follow_up)});
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(units.wait_units(next.value()).is_ok());
  EXPECT_EQ(next.value()[0]->state(), pilot::UnitState::kDone);
}

// ---------------------------------------------------------------- strategy

TEST(StrategyEdge, ImpossibleCoreCapRejectsEverything) {
  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  core::ExecutionStrategy strategy(catalog);
  core::WorkloadProfile workload;
  workload.total_tasks = 8;
  workload.max_concurrent_tasks = 8;
  workload.cores_per_task = 16;  // wide MPI tasks
  workload.reference_task_duration = 10.0;
  core::StrategyObjective objective;
  objective.max_cores = 8;  // smaller than one task
  EXPECT_EQ(strategy.plan(workload, objective).status().code(),
            Errc::kResourceExhausted);
}

}  // namespace
}  // namespace entk
