// Fault injection and fault-tolerant execution.
//
// Exercises the FaultModel (node failures, transient launch failures,
// hung units), the RetryPolicy (budget, exponential backoff, execution
// timeout), pilot-loss recovery (walltime expiry re-queuing in-flight
// units onto survivors or replacements) and the determinism guarantee
// (same seed => same fault trace and unit timeline).
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <utility>
#include <vector>

#include "ckpt/coordinator.hpp"
#include "ckpt/snapshot.hpp"
#include "common/uid.hpp"
#include "core/entk.hpp"
#include "pilot/agent.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/sim_backend.hpp"
#include "pilot/unit_manager.hpp"
#include "scale_test_util.hpp"

namespace entk::pilot {
namespace {

UnitDescription simple_unit(Duration duration, Count cores = 1) {
  UnitDescription description;
  description.name = "ft.unit";
  description.executable = "/bin/true";
  description.cores = cores;
  description.uses_mpi = cores > 1;
  description.simulated_duration = duration;
  return description;
}

PilotPtr make_active_pilot(SimBackend& backend, Count cores,
                           Duration runtime = 100000.0) {
  PilotManager manager(backend);
  PilotDescription description;
  description.resource = "localhost";
  description.cores = cores;
  description.runtime = runtime;
  auto pilot = manager.submit_pilot(description);
  EXPECT_TRUE(pilot.ok()) << pilot.status().to_string();
  EXPECT_TRUE(manager.wait_active(pilot.value()).is_ok());
  return pilot.take();
}

// ------------------------------------------------------------ RetryPolicy

TEST(RetryPolicy, ValidatesItsParameters) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.validate().is_ok());  // defaults are valid

  policy.max_retries = -1;
  EXPECT_EQ(policy.validate().code(), Errc::kInvalidArgument);
  policy.max_retries = 3;

  policy.backoff_multiplier = 0.5;
  EXPECT_EQ(policy.validate().code(), Errc::kInvalidArgument);
  policy.backoff_multiplier = 2.0;

  policy.jitter = 1.0;  // must stay < 1
  EXPECT_EQ(policy.validate().code(), Errc::kInvalidArgument);
  policy.jitter = 0.25;

  policy.execution_timeout = -1.0;
  EXPECT_EQ(policy.validate().code(), Errc::kInvalidArgument);
  policy.execution_timeout = 60.0;
  EXPECT_TRUE(policy.validate().is_ok());
}

TEST(RetryPolicy, ExponentialBackoffWithCap) {
  RetryPolicy policy;
  policy.backoff_base = 2.0;
  policy.backoff_multiplier = 3.0;
  EXPECT_DOUBLE_EQ(policy.delay_for(1), 2.0);
  EXPECT_DOUBLE_EQ(policy.delay_for(2), 6.0);
  EXPECT_DOUBLE_EQ(policy.delay_for(3), 18.0);
  policy.backoff_max = 10.0;
  EXPECT_DOUBLE_EQ(policy.delay_for(3), 10.0);
  // No base delay => immediate retries regardless of attempt.
  policy.backoff_base = 0.0;
  EXPECT_DOUBLE_EQ(policy.delay_for(5), 0.0);
}

TEST(RetryPolicy, JitterScalesTheDelay) {
  RetryPolicy policy;
  policy.backoff_base = 10.0;
  policy.jitter = 0.2;
  // jitter_draw 0 => low edge, 0.5 => nominal, 1 => high edge.
  EXPECT_DOUBLE_EQ(policy.delay_for(1, 0.0), 8.0);
  EXPECT_DOUBLE_EQ(policy.delay_for(1, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(policy.delay_for(1, 1.0), 12.0);
}

// -------------------------------------------------------------- FaultSpec

TEST(FaultSpec, DisabledByDefaultAndValidated) {
  sim::FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_TRUE(spec.validate().is_ok());
  spec.node_mtbf = 100.0;
  EXPECT_TRUE(spec.enabled());
  EXPECT_TRUE(spec.validate().is_ok());
  spec.launch_failure_rate = 1.5;
  EXPECT_EQ(spec.validate().code(), Errc::kInvalidArgument);
  spec.launch_failure_rate = 0.0;
  spec.node_mtbf = -1.0;
  EXPECT_EQ(spec.validate().code(), Errc::kInvalidArgument);
}

// --------------------------------------------- scenario: node failure

TEST(FaultTolerance, NodeFailureKillsUnitsAndRetryCompletesTheRun) {
  auto machine = sim::localhost_profile();
  machine.fault.seed = 42;
  machine.fault.node_mtbf = 100.0;      // 2 nodes => mean ~50 s to first
  machine.fault.max_node_failures = 1;  // lose exactly one node
  SimBackend backend(machine);
  auto pilot = make_active_pilot(backend, 16);  // 2 nodes x 8 cores

  UnitManager manager(backend);
  manager.add_pilot(pilot);
  auto description = simple_unit(300.0, 8);
  description.retry.max_retries = 3;
  description.retry.backoff_base = 5.0;
  auto units = manager.submit_units(
      {description, description, description, description});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());

  ASSERT_NE(backend.faults(), nullptr);
  EXPECT_EQ(backend.faults()->node_failures(), 1);
  EXPECT_EQ(pilot->agent()->total_cores(), 8);  // one node gone
  // The unit executing on the dead node was killed and retried; the
  // whole ensemble still completed on the surviving node.
  EXPECT_GE(manager.total_retries(), 1u);
  for (const auto& unit : units.value()) {
    EXPECT_EQ(unit->state(), UnitState::kDone);
  }
}

// ------------------------------------- scenario: transient launch failure

TEST(FaultTolerance, TransientLaunchFailureConsumesRetryBudget) {
  auto machine = sim::localhost_profile();
  machine.fault.seed = 7;
  machine.fault.launch_failure_rate = 1.0;  // every launch fails
  SimBackend backend(machine);
  auto pilot = make_active_pilot(backend, 4);

  UnitManager manager(backend);
  manager.add_pilot(pilot);
  auto description = simple_unit(5.0);
  description.retry.max_retries = 2;
  auto units = manager.submit_units({std::move(description)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());

  // Rate 1.0: the first attempt and both retries all fail at launch.
  const auto& unit = units.value()[0];
  EXPECT_EQ(unit->state(), UnitState::kFailed);
  EXPECT_EQ(unit->final_status().code(), Errc::kExecutionFailed);
  EXPECT_EQ(unit->retries(), 2);
  EXPECT_EQ(backend.faults()->launch_failures(), 3);
}

// ------------------------------------------- scenario: hung unit, timeout

TEST(FaultTolerance, ExecutionTimeoutKillsHungUnitAndRetrySucceeds) {
  SimBackend backend(sim::localhost_profile());
  auto pilot = make_active_pilot(backend, 4);
  UnitManager manager(backend);
  manager.add_pilot(pilot);

  auto description = simple_unit(5.0);
  description.simulated_hang = true;  // first attempt never finishes
  description.retry.max_retries = 1;
  description.retry.execution_timeout = 10.0;
  auto units = manager.submit_units({std::move(description)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());

  // Attempt 1 hung and was killed after 10 s; attempt 2 ran normally.
  const auto& unit = units.value()[0];
  EXPECT_EQ(unit->state(), UnitState::kDone);
  EXPECT_EQ(unit->retries(), 1);
  EXPECT_NEAR(unit->execution_time(), 5.0, 1e-9);
  EXPECT_GT(unit->exec_started_at(), 10.0);  // relaunched after the kill
}

TEST(FaultTolerance, HungUnitWithoutRetryBudgetFailsWithTimeout) {
  SimBackend backend(sim::localhost_profile());
  auto pilot = make_active_pilot(backend, 4);
  UnitManager manager(backend);
  manager.add_pilot(pilot);

  auto description = simple_unit(5.0);
  description.simulated_hang = true;
  description.retry.execution_timeout = 10.0;
  auto units = manager.submit_units({std::move(description)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  EXPECT_EQ(units.value()[0]->state(), UnitState::kFailed);
  EXPECT_EQ(units.value()[0]->final_status().code(), Errc::kTimedOut);
  // The timeout kill released the cores: the agent is idle again.
  EXPECT_EQ(pilot->agent()->free_cores(), 4);
}

TEST(FaultTolerance, HangRateDrawsApplyToEveryAttempt) {
  auto machine = sim::localhost_profile();
  machine.fault.seed = 11;
  machine.fault.hang_rate = 1.0;
  SimBackend backend(machine);
  auto pilot = make_active_pilot(backend, 4);
  UnitManager manager(backend);
  manager.add_pilot(pilot);

  auto description = simple_unit(5.0);
  description.retry.max_retries = 1;
  description.retry.execution_timeout = 8.0;
  auto units = manager.submit_units({std::move(description)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  EXPECT_EQ(units.value()[0]->state(), UnitState::kFailed);
  EXPECT_EQ(units.value()[0]->final_status().code(), Errc::kTimedOut);
  EXPECT_EQ(backend.faults()->hangs(), 2);
}

// --------------------------------------------- scenario: retry backoff

TEST(FaultTolerance, RetryWaitsForTheBackoffDelay) {
  SimBackend backend(sim::localhost_profile());
  auto pilot = make_active_pilot(backend, 4);
  UnitManager manager(backend);
  manager.add_pilot(pilot);

  auto description = simple_unit(2.0);
  description.simulated_fail = true;  // attempt 1 fails at exec end
  description.retry.max_retries = 1;
  description.retry.backoff_base = 50.0;
  auto units = manager.submit_units({std::move(description)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());

  const auto& unit = units.value()[0];
  EXPECT_EQ(unit->state(), UnitState::kDone);
  EXPECT_EQ(unit->retries(), 1);
  // The relaunch (the timestamps belong to attempt 2) happened only
  // after the 50 s backoff window.
  EXPECT_GE(unit->exec_started_at(), 50.0);
  EXPECT_EQ(manager.total_retries(), 1u);
}

// ----------------------------------- scenario: pilot walltime expiry

TEST(FaultTolerance, PilotWalltimeExpiryRequeuesUnitsOntoSurvivor) {
  SimBackend backend(sim::localhost_profile());
  PilotManager pilot_manager(backend);
  PilotDescription doomed;
  doomed.resource = "localhost";
  doomed.cores = 8;
  doomed.runtime = 50.0;  // expires mid-workload
  auto short_pilot = pilot_manager.submit_pilot(doomed);
  ASSERT_TRUE(short_pilot.ok());
  PilotDescription survivor = doomed;
  survivor.runtime = 100000.0;
  auto long_pilot = pilot_manager.submit_pilot(survivor);
  ASSERT_TRUE(long_pilot.ok());
  ASSERT_TRUE(pilot_manager.wait_active(short_pilot.value()).is_ok());
  ASSERT_TRUE(pilot_manager.wait_active(long_pilot.value()).is_ok());

  UnitManager manager(backend);
  manager.add_pilot(short_pilot.value());
  manager.add_pilot(long_pilot.value());

  // 4 x 8-core units of 40 s, routed round-robin: two land on each
  // pilot and serialize there. The short pilot dies at t=50 with its
  // second unit executing; that unit must finish on the survivor.
  std::vector<UnitDescription> descriptions(4, simple_unit(40.0, 8));
  auto units = manager.submit_units(std::move(descriptions));
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());

  EXPECT_EQ(short_pilot.value()->state(), PilotState::kFailed);
  EXPECT_GE(manager.recovered_units(), 1u);
  for (const auto& unit : units.value()) {
    EXPECT_EQ(unit->state(), UnitState::kDone);
    // Pilot-loss recovery must not burn retry budget.
    EXPECT_EQ(unit->retries(), 0);
  }
}

// --------------------------------------------- scenario: determinism

struct TraceRun {
  std::vector<std::string> fault_trace;
  std::vector<std::pair<TimePoint, TimePoint>> unit_times;
};

TraceRun run_faulty_workload(std::uint64_t seed) {
  auto machine = sim::localhost_profile();
  machine.fault.seed = seed;
  machine.fault.node_mtbf = 60.0;
  machine.fault.max_node_failures = 1;
  machine.fault.launch_failure_rate = 0.2;
  SimBackend backend(machine);
  auto pilot = make_active_pilot(backend, 16);
  UnitManager manager(backend);
  manager.add_pilot(pilot);

  auto description = simple_unit(60.0, 4);
  description.retry.max_retries = 6;
  description.retry.backoff_base = 2.0;
  description.retry.backoff_multiplier = 2.0;
  description.retry.jitter = 0.3;
  std::vector<UnitDescription> descriptions(8, description);
  auto units = manager.submit_units(std::move(descriptions));
  EXPECT_TRUE(units.ok());
  EXPECT_TRUE(manager.wait_units(units.value()).is_ok());

  TraceRun run;
  run.fault_trace = backend.faults()->trace();
  for (const auto& unit : units.value()) {
    run.unit_times.emplace_back(unit->exec_started_at(),
                                unit->finished_at());
  }
  return run;
}

TEST(FaultTolerance, SameSeedYieldsIdenticalFaultTraceAndTimeline) {
  const TraceRun first = run_faulty_workload(0xdecafULL);
  const TraceRun second = run_faulty_workload(0xdecafULL);
  EXPECT_FALSE(first.fault_trace.empty());
  EXPECT_EQ(first.fault_trace, second.fault_trace);
  EXPECT_EQ(first.unit_times, second.unit_times);
}

// ------------------------------------------ scenario: replacement pilot

TEST(FaultTolerance, ResourceHandleRestartsFailedPilot) {
  SimBackend backend(sim::localhost_profile());
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  core::ResourceOptions options;
  options.cores = 4;
  options.runtime = 50.0;  // the pilot dies before the workload is done
  options.restart_failed_pilots = true;
  options.max_pilot_restarts = 3;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  // 8 x 30 s tasks on 4 cores: two waves; the second wave outlives the
  // first pilot's walltime and finishes on the replacement.
  core::BagOfTasks bag(8, [](const core::StageContext&) {
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration", 30.0);
    return spec;
  });
  auto report = handle.run(bag);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(report.value().units_done, 8u);
  EXPECT_GE(report.value().recovered_units, 1u);
  EXPECT_GE(handle.pilots().size(), 2u);  // original + replacement
}

// ------------------------------------------------ wait_units deadline

TEST(FaultTolerance, WaitUnitsFiniteTimeoutExpiresWithoutSettling) {
  SimBackend backend(sim::localhost_profile());
  auto pilot = make_active_pilot(backend, 4);
  UnitManager manager(backend);
  manager.add_pilot(pilot);
  auto units = manager.submit_units({simple_unit(1000.0)});
  ASSERT_TRUE(units.ok());

  const TimePoint wait_start = backend.clock().now();
  const Status expired = manager.wait_units(units.value(), 10.0);
  EXPECT_EQ(expired.code(), Errc::kTimedOut);
  // The deadline truly bounded the wait — the unit's completion event
  // lies far beyond it and must not have been dispatched — and the
  // unit was not spuriously settled.
  EXPECT_NEAR(backend.clock().now(), wait_start + 10.0, 1e-9);
  EXPECT_FALSE(is_final(units.value()[0]->state()));
  EXPECT_EQ(manager.inflight_units(), 1u);

  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  EXPECT_EQ(units.value()[0]->state(), UnitState::kDone);
  EXPECT_EQ(manager.inflight_units(), 0u);
}

// ----------------------------------------- exhaustive transition tables

TEST(StateMachines, UnitTransitionTableIsExact) {
  using U = UnitState;
  const U all[] = {U::kNew,       U::kPendingExecution, U::kStagingInput,
                   U::kExecuting, U::kStagingOutput,    U::kDone,
                   U::kFailed,    U::kCanceled};
  std::set<std::pair<U, U>> allowed;
  auto allow = [&allowed](U from, U to) { allowed.insert({from, to}); };
  // Forward lifecycle.
  allow(U::kNew, U::kPendingExecution);
  allow(U::kPendingExecution, U::kStagingInput);
  allow(U::kPendingExecution, U::kExecuting);
  allow(U::kStagingInput, U::kExecuting);
  allow(U::kExecuting, U::kStagingOutput);
  allow(U::kExecuting, U::kDone);
  allow(U::kStagingOutput, U::kDone);
  // Failure/cancellation exits from every non-final state.
  for (U from : all) {
    if (is_final(from)) continue;
    allow(from, U::kFailed);
    allow(from, U::kCanceled);
  }
  // Pilot-loss rewind of in-flight units.
  allow(U::kStagingInput, U::kPendingExecution);
  allow(U::kExecuting, U::kPendingExecution);
  allow(U::kStagingOutput, U::kPendingExecution);

  for (U from : all) {
    for (U to : all) {
      EXPECT_EQ(is_valid_transition(from, to),
                allowed.count({from, to}) == 1)
          << unit_state_name(from) << " -> " << unit_state_name(to);
    }
  }
}

TEST(StateMachines, PilotTransitionTableIsExact) {
  using P = PilotState;
  const P all[] = {P::kNew,  P::kPendingQueue, P::kActive,
                   P::kDone, P::kFailed,       P::kCanceled};
  std::set<std::pair<P, P>> allowed;
  auto allow = [&allowed](P from, P to) { allowed.insert({from, to}); };
  allow(P::kNew, P::kPendingQueue);
  allow(P::kPendingQueue, P::kActive);
  allow(P::kActive, P::kDone);
  for (P from : all) {
    if (is_final(from)) continue;
    allow(from, P::kFailed);
    allow(from, P::kCanceled);
  }

  for (P from : all) {
    for (P to : all) {
      EXPECT_EQ(is_valid_transition(from, to),
                allowed.count({from, to}) == 1)
          << pilot_state_name(from) << " -> " << pilot_state_name(to);
    }
  }
}

// --------------------------------------------- pattern failure policies

class FailurePolicyTest : public ::testing::Test {
 protected:
  FailurePolicyTest()
      : registry_(kernels::KernelRegistry::with_builtin_kernels()),
        backend_(sim::localhost_profile()) {}

  Status run_bag(core::FailureRules rules) {
    core::ResourceOptions options;
    options.cores = 4;
    core::ResourceHandle handle(backend_, registry_, options);
    EXPECT_TRUE(handle.allocate().is_ok());
    // Task 1 of 4 fails permanently (no retry budget).
    core::BagOfTasks bag(4, [](const core::StageContext& context) {
      core::TaskSpec spec;
      spec.kernel = "misc.sleep";
      spec.args.set("duration", 1.0);
      spec.inject_failure = context.instance == 1;
      return spec;
    });
    bag.set_failure_rules(rules);
    auto report = handle.run(bag);
    EXPECT_TRUE(report.ok()) << report.status().to_string();
    if (!report.ok()) return report.status();
    EXPECT_EQ(report.value().units_failed, 1u);
    EXPECT_EQ(report.value().units_done, 3u);
    return report.value().outcome;
  }

  kernels::KernelRegistry registry_;
  pilot::SimBackend backend_;
};

TEST_F(FailurePolicyTest, FailFastReportsTheFailure) {
  EXPECT_FALSE(run_bag({core::FailurePolicy::kFailFast, 1.0}).is_ok());
}

TEST_F(FailurePolicyTest, ContinueOnFailureSucceeds) {
  EXPECT_TRUE(
      run_bag({core::FailurePolicy::kContinueOnFailure, 1.0}).is_ok());
}

TEST_F(FailurePolicyTest, QuorumComparesTheDoneFraction) {
  // 3/4 done: a 0.75 quorum passes, a 0.9 quorum fails.
  EXPECT_TRUE(run_bag({core::FailurePolicy::kQuorum, 0.75}).is_ok());
  EXPECT_FALSE(run_bag({core::FailurePolicy::kQuorum, 0.9}).is_ok());
}

// --------------------------------- scenario: checkpoint/resume × faults
//
// The recovery tiers must compose: a snapshot carries retry budgets,
// fault-model RNG streams and graph verdicts across a kill/resume, so
// faults that strike after the resume play out exactly as they would
// have in a run that never died. See docs/RESILIENCE.md.

/// Heterogeneous bag under a quorum verdict: generous retry budgets
/// (transient launch failures + node loss burn them) plus a sprinkle
/// of permanent failures the quorum must absorb (instances 1, 25, 49,
/// 73, 97 — five of 120).
core::BagOfTasks faulty_checkpoint_bag() {
  core::BagOfTasks bag(120, [](const core::StageContext& context) {
    Xoshiro256 rng(static_cast<std::uint64_t>(context.instance) * 977 + 5);
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration", 20.0 + 20.0 * rng.uniform());
    spec.cores = context.instance % 3 == 0 ? 2 : 1;
    spec.retry.max_retries = 6;
    spec.retry.backoff_base = 2.0;
    spec.retry.backoff_multiplier = 2.0;
    spec.retry.jitter = 0.3;
    if (context.instance % 24 == 1) {
      spec.inject_failure = true;
      spec.retry.max_retries = 0;  // settles failed, verdict decides
    }
    return spec;
  });
  bag.set_failure_rules({core::FailurePolicy::kQuorum, 0.75});
  return bag;
}

sim::MachineProfile faulty_checkpoint_machine() {
  auto machine = sim::localhost_profile();
  machine.fault.seed = 0xC0FFEE;
  machine.fault.node_mtbf = 150.0;
  machine.fault.max_node_failures = 2;
  machine.fault.launch_failure_rate = 0.05;
  return machine;
}

struct CheckpointFtReport {
  std::vector<ComputeUnitPtr> units;
  std::size_t units_done = 0;
  std::size_t units_failed = 0;
  std::size_t total_retries = 0;
  std::size_t recovered_units = 0;
};

CheckpointFtReport unpack(core::RunReport report) {
  CheckpointFtReport out;
  out.units_done = report.units_done;
  out.units_failed = report.units_failed;
  out.total_retries = report.total_retries;
  out.recovered_units = report.recovered_units;
  out.units = std::move(report.units);
  return out;
}

std::string fresh_ckpt_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

template <typename MakeMachine, typename MakePattern>
CheckpointFtReport run_ft_uninterrupted(MakeMachine make_machine,
                                        MakePattern make_pattern,
                                        core::ResourceOptions options) {
  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  SimBackend backend(make_machine());
  core::ResourceHandle handle(backend, registry, options);
  EXPECT_TRUE(handle.allocate().is_ok());
  auto pattern = make_pattern();
  auto report = handle.run(pattern);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  if (!report.ok()) return {};
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  return unpack(report.take());
}

template <typename MakeMachine, typename MakePattern>
CheckpointFtReport run_ft_kill_resume(MakeMachine make_machine,
                                      MakePattern make_pattern,
                                      core::ResourceOptions options,
                                      const std::string& dir,
                                      std::uint64_t every_settled,
                                      std::uint64_t crash_after) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  ckpt::Snapshot snapshot;
  {
    reset_uid_counters_for_testing();
    SimBackend backend(make_machine());
    core::ResourceHandle handle(backend, registry, options);
    EXPECT_TRUE(handle.allocate().is_ok());
    ckpt::Coordinator::Options coordinator_options;
    coordinator_options.directory = dir;
    coordinator_options.policy.every_settled = every_settled;
    coordinator_options.crash_after_snapshots = crash_after;
    ckpt::Coordinator coordinator(backend, handle,
                                  std::move(coordinator_options));
    auto pattern = make_pattern();
    coordinator.set_identity(pattern.name(), "");
    pattern.set_graph_run_observer(&coordinator);
    auto report = handle.run(pattern);
    EXPECT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_TRUE(
        ckpt::Coordinator::is_checkpoint_stop(report.value().outcome))
        << report.value().outcome.to_string();
    auto loaded =
        ckpt::read_snapshot_file(coordinator.last_snapshot_path());
    EXPECT_TRUE(loaded.ok()) << loaded.status().to_string();
    if (!loaded.ok()) return {};
    snapshot = loaded.take();
  }
  reset_uid_counters_for_testing();
  SimBackend backend(make_machine());
  core::ResourceHandle handle(backend, registry, options);
  EXPECT_TRUE(handle.allocate().is_ok());
  ckpt::Coordinator::Options coordinator_options;
  coordinator_options.directory = dir;
  ckpt::Coordinator coordinator(backend, handle,
                                std::move(coordinator_options));
  auto pattern = make_pattern();
  coordinator.set_identity(pattern.name(), "");
  const Status restored = coordinator.restore_runtime(snapshot);
  EXPECT_TRUE(restored.is_ok()) << restored.to_string();
  if (!restored.is_ok()) return {};
  pattern.set_graph_run_observer(&coordinator);
  auto report = handle.run(pattern);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  if (!report.ok()) return {};
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  return unpack(report.take());
}

TEST(FaultTolerance, CheckpointResumeCarriesRetryBudgetsAndVerdicts) {
  core::ResourceOptions options;
  // All 4 localhost nodes: losing max_node_failures = 2 of them still
  // leaves capacity, so the run can always finish.
  options.cores = 32;
  options.runtime = 100000.0;
  const CheckpointFtReport baseline = run_ft_uninterrupted(
      faulty_checkpoint_machine, faulty_checkpoint_bag, options);
  ASSERT_EQ(baseline.units.size(), 120u);
  EXPECT_EQ(baseline.units_failed, 5u);  // quorum absorbed them
  EXPECT_GT(baseline.total_retries, 0u)
      << "the fault spec must actually burn retry budget for this "
         "test to mean anything";

  const CheckpointFtReport resumed = run_ft_kill_resume(
      faulty_checkpoint_machine, faulty_checkpoint_bag, options,
      fresh_ckpt_dir("ckpt_ft_faults"), /*every_settled=*/25,
      /*crash_after=*/2);
  ASSERT_EQ(resumed.units.size(), 120u);
  // Identical timelines => retry budgets, backoff RNG draws, fault
  // strikes and quorum verdicts all carried across the snapshot.
  EXPECT_EQ(core::scale_test::trace_digest(resumed.units),
            core::scale_test::trace_digest(baseline.units));
  EXPECT_EQ(resumed.units_done, baseline.units_done);
  EXPECT_EQ(resumed.units_failed, baseline.units_failed);
  EXPECT_EQ(resumed.total_retries, baseline.total_retries);
}

TEST(FaultTolerance, ResumeThenPilotLossRecoversWithRestoredState) {
  // Mirror of ResourceHandleRestartsFailedPilot with a kill/resume
  // before the pilot's walltime expiry: the expiry, the replacement
  // pilot and the requeue all happen AFTER the resume, driven purely
  // by restored state.
  core::ResourceOptions options;
  options.cores = 4;
  options.runtime = 50.0;  // the pilot dies before the workload is done
  options.restart_failed_pilots = true;
  options.max_pilot_restarts = 3;
  const auto make_machine = [] { return sim::localhost_profile(); };
  const auto make_pattern = [] {
    return core::BagOfTasks(8, [](const core::StageContext&) {
      core::TaskSpec spec;
      spec.kernel = "misc.sleep";
      spec.args.set("duration", 30.0);
      return spec;
    });
  };
  const CheckpointFtReport baseline =
      run_ft_uninterrupted(make_machine, make_pattern, options);
  ASSERT_EQ(baseline.units.size(), 8u);
  ASSERT_GE(baseline.recovered_units, 1u);

  // Crash after 2 settles (t ~= 30, before the t = 50 expiry).
  const CheckpointFtReport resumed = run_ft_kill_resume(
      make_machine, make_pattern, options,
      fresh_ckpt_dir("ckpt_ft_pilot_loss"), /*every_settled=*/2,
      /*crash_after=*/1);
  ASSERT_EQ(resumed.units.size(), 8u);
  EXPECT_EQ(resumed.units_done, 8u);
  EXPECT_GE(resumed.recovered_units, 1u)
      << "the pilot loss must have happened after the resume";
  EXPECT_EQ(core::scale_test::trace_digest(resumed.units),
            core::scale_test::trace_digest(baseline.units));
}

TEST(FailureRules, QuorumValidation) {
  core::FailureRules rules{core::FailurePolicy::kQuorum, 0.0};
  EXPECT_EQ(rules.validate().code(), Errc::kInvalidArgument);
  rules.quorum = 1.5;
  EXPECT_EQ(rules.validate().code(), Errc::kInvalidArgument);
  rules.quorum = 0.5;
  EXPECT_TRUE(rules.validate().is_ok());
  // Quorum bounds only matter under the quorum policy.
  core::FailureRules fail_fast{core::FailurePolicy::kFailFast, 99.0};
  EXPECT_TRUE(fail_fast.validate().is_ok());
}

}  // namespace
}  // namespace entk::pilot
