// Final coverage sweep: cross-feature paths not covered elsewhere.
#include <gtest/gtest.h>

#include "core/entk.hpp"
#include "pilot/agent.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/unit_manager.hpp"

namespace entk {
namespace {

core::TaskSpec sleep_spec(double duration) {
  core::TaskSpec spec;
  spec.kernel = "misc.sleep";
  spec.args.set("duration", duration);
  return spec;
}

TEST(WorkloadEndToEnd, EnsembleExchangeViaFile) {
  auto spec = core::parse_workload(
      "backend = sim\nmachine = lsu.supermic\ncores = 32\n"
      "pattern = ee\nreplicas = 8\ncycles = 2\n"
      "[simulation]\nkernel = md.simulate\nsteps = 300\n"
      "n_particles = 2881\nout = traj_{instance}.dat\n"
      "energy_out = replica_{instance}.energy\n"
      "[exchange]\nkernel = md.exchange\nn_replicas = 8\n"
      "sweep = {iteration}\n");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto report = core::run_workload(spec.value(), registry);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  // 2 cycles x (8 sims + 1 exchange).
  EXPECT_EQ(report.value().units.size(), 18u);
}

TEST(PairwiseOddReplicas, UnpairedEdgeReplicasAdvanceAlone) {
  // 5 replicas, 2 cycles: in every cycle someone is unpaired and must
  // proceed without an exchange.
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 8;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  core::EnsembleExchange pattern(
      5, 2, core::EnsembleExchange::ExchangeMode::kPairwise);
  pattern.set_simulation(
      [](const core::StageContext&) { return sleep_spec(3.0); });
  pattern.set_pair_exchange(
      [](Count, Count, Count) { return sleep_spec(0.5); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(pattern.simulation_units().size(), 10u);
  // Cycle 1 (parity 0): pairs (0,1), (2,3), replica 4 unpaired -> 2
  // exchanges. Cycle 2 (parity 1): pairs (1,2), (3,4), replica 0
  // unpaired -> 2 exchanges.
  EXPECT_EQ(pattern.exchange_units().size(), 4u);
  for (const auto& unit : report.value().units) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
  }
}

TEST(UnitManagerBooks, InflightCountsSettleToZero) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  pilot::PilotManager pilot_manager(backend);
  pilot::PilotDescription description;
  description.resource = "localhost";
  description.cores = 4;
  auto pilot = pilot_manager.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot_manager.wait_active(pilot.value()).is_ok());
  pilot::UnitManager units(backend);
  units.add_pilot(pilot.value());

  std::vector<pilot::UnitDescription> descriptions;
  for (int i = 0; i < 6; ++i) {
    pilot::UnitDescription unit;
    unit.name = "books";
    unit.executable = "x";
    unit.simulated_duration = 5.0;
    descriptions.push_back(std::move(unit));
  }
  auto submitted = units.submit_units(std::move(descriptions));
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(units.total_units(), 6u);
  EXPECT_EQ(units.inflight_units(), 6u);
  ASSERT_TRUE(units.wait_units(submitted.value()).is_ok());
  EXPECT_EQ(units.inflight_units(), 0u);
  EXPECT_EQ(units.total_units(), 6u);
}

TEST(UtilizationInReport, SerialAnalysisDragsUtilizationDown) {
  // A SAL run whose serial analysis idles the pilot: utilization must
  // reflect it (this is what entk-run reports).
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 8;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());
  core::SimulationAnalysisLoop sal(1, 8, 1);
  sal.set_simulation(
      [](const core::StageContext&) { return sleep_spec(10.0); });
  sal.set_analysis(
      [](const core::StageContext&) { return sleep_spec(40.0); });
  auto report = handle.run(sal);
  ASSERT_TRUE(report.ok());
  const auto utilization =
      core::compute_utilization(report.value().units, options.cores);
  // 8x10 parallel + 1x40 serial over ~50 s window on 8 cores:
  // (80 + 40) / (8 * ~50) ~ 0.3.
  EXPECT_LT(utilization.average_utilization, 0.45);
  EXPECT_GT(utilization.average_utilization, 0.2);
  EXPECT_EQ(utilization.peak_concurrent_cores, 8);
}

TEST(AdaptiveLoopNested, SequenceInsideLoop) {
  // Higher-order composition composes: a sequence inside an adaptive
  // loop.
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  auto sequence = std::make_unique<core::SequencePattern>();
  sequence->append(std::make_unique<core::BagOfTasks>(
      2, [](const core::StageContext&) { return sleep_spec(1.0); }));
  sequence->append(std::make_unique<core::BagOfTasks>(
      1, [](const core::StageContext&) { return sleep_spec(1.0); }));
  core::AdaptiveLoop loop(std::move(sequence), 4,
                          [](Count round) { return round < 2; });
  auto report = handle.run(loop);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  EXPECT_EQ(loop.rounds_completed(), 2);
  EXPECT_EQ(report.value().units.size(), 6u);  // 2 rounds x 3 tasks
}

TEST(MultiPilotHandle, SplitsCoresAndRunsAcrossPilots) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 10;
  options.n_pilots = 3;  // 4 + 3 + 3 cores
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());
  ASSERT_EQ(handle.pilots().size(), 3u);
  Count total = 0;
  for (const auto& held : handle.pilots()) {
    EXPECT_EQ(held->state(), pilot::PilotState::kActive);
    total += held->description().cores;
  }
  EXPECT_EQ(total, 10);
  EXPECT_EQ(handle.pilots()[0]->description().cores, 4);

  core::BagOfTasks pattern(
      20, [](const core::StageContext&) { return sleep_spec(5.0); });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  for (const auto& unit : report.value().units) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
  }
  // Work spread over all three agents.
  for (const auto& held : handle.pilots()) {
    EXPECT_GT(held->agent()->total_spawn_overhead(), 0.0);
  }
  ASSERT_TRUE(handle.deallocate().is_ok());
  // All pilots retired.
  for (const auto& held : handle.pilots()) (void)held;  // cleared
  EXPECT_TRUE(handle.pilots().empty());
}

TEST(MultiPilotHandle, ValidatesPilotCount) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 2;
  options.n_pilots = 4;  // more pilots than cores
  EXPECT_THROW(core::ResourceHandle(backend, registry, options),
               std::logic_error);
}

}  // namespace
}  // namespace entk
