// Schedule equivalence of the TaskGraph executor vs the pre-graph
// imperative run loops.
//
// The expected makespans below were captured by running these exact
// workloads on the simulated backend BEFORE the patterns were
// rewritten as graph compilers (same seed, same machine profile, same
// per-task overhead). The event-driven executor must reproduce each
// schedule's structure — barriers, chaining, cross-pipeline overlap —
// and land within a small tolerance of the original makespan (it may
// only differ by submission-overhead batching, a few milliseconds).
#include <gtest/gtest.h>

#include <vector>

#include "core/entk.hpp"

namespace entk::core {
namespace {

/// Timestamp jitter allowed vs the pre-refactor traces: the graph
/// executor charges a frontier's per-task overhead in one batch where
/// the old loops charged it per submit, and it submits follow-ups at
/// exact settlement instead of after drive-granularity lag.
constexpr double kTolerance = 0.05;

TaskSpec sleep_spec(double duration) {
  TaskSpec spec;
  spec.kernel = "misc.sleep";
  spec.args.set("duration", duration);
  return spec;
}

struct Slot {
  TimePoint submitted;
  TimePoint started;
  TimePoint finished;
};

std::vector<Slot> timeline(const std::vector<pilot::ComputeUnitPtr>& units) {
  std::vector<Slot> slots;
  slots.reserve(units.size());
  for (const auto& unit : units) {
    slots.push_back(
        {unit->submitted_at(), unit->exec_started_at(), unit->finished_at()});
  }
  return slots;
}

TimePoint makespan(const std::vector<pilot::ComputeUnitPtr>& units) {
  TimePoint last = 0.0;
  for (const auto& unit : units) {
    last = std::max(last, unit->finished_at());
  }
  return last;
}

template <typename Pattern>
Status run_fresh(Pattern& pattern, Count cores) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  ResourceOptions options;
  options.cores = cores;
  ResourceHandle handle(backend, registry, options);
  EXPECT_TRUE(handle.allocate().is_ok());
  auto report = handle.run(pattern);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  if (!report.ok()) return report.status();
  return report.value().outcome;
}

// The fixed workloads the pre-refactor traces were captured from.

BagOfTasks bot_workload() {
  return BagOfTasks(5, [](const StageContext& c) {
    return sleep_spec(1.0 + static_cast<double>(c.instance));
  });
}

EnsembleOfPipelines eop_workload() {
  EnsembleOfPipelines pattern(3, 2);
  pattern.set_stage(1, [](const StageContext& c) {
    return sleep_spec(1.0 + 2.0 * static_cast<double>(c.instance));
  });
  pattern.set_stage(2, [](const StageContext& c) {
    return sleep_spec(2.0 + static_cast<double>(c.instance));
  });
  return pattern;
}

SimulationAnalysisLoop sal_workload() {
  SimulationAnalysisLoop pattern(2, 3, 2);
  pattern.set_simulation([](const StageContext& c) {
    return sleep_spec(1.0 + static_cast<double>(c.instance) +
                      0.5 * static_cast<double>(c.iteration));
  });
  pattern.set_analysis([](const StageContext& c) {
    return sleep_spec(0.5 + static_cast<double>(c.instance));
  });
  return pattern;
}

EnsembleExchange ee_global_workload() {
  EnsembleExchange pattern(3, 2);
  pattern.set_simulation([](const StageContext& c) {
    return sleep_spec(1.0 + static_cast<double>(c.instance) +
                      static_cast<double>(c.iteration));
  });
  pattern.set_exchange([](const StageContext&) { return sleep_spec(0.5); });
  return pattern;
}

EnsembleExchange ee_pairwise_workload() {
  EnsembleExchange pattern(4, 2, EnsembleExchange::ExchangeMode::kPairwise);
  pattern.set_simulation([](const StageContext& c) {
    return sleep_spec(1.0 + 2.0 * static_cast<double>(c.instance));
  });
  pattern.set_pair_exchange([](Count cycle, Count a, Count b) {
    return sleep_spec(0.25 * static_cast<double>(cycle + a + b));
  });
  return pattern;
}

// ------------------------------------------------------ trace equivalence

TEST(GraphSchedule, BagOfTasksMatchesSeedTrace) {
  auto pattern = bot_workload();
  ASSERT_TRUE(run_fresh(pattern, 2).is_ok());
  ASSERT_EQ(pattern.units().size(), 5u);
  // Pre-refactor makespan: 11.179 (2 cores, longest task last).
  EXPECT_NEAR(makespan(pattern.units()), 11.179, kTolerance);
  // One batched submission: every unit shares a submit timestamp.
  for (const auto& unit : pattern.units()) {
    EXPECT_DOUBLE_EQ(unit->submitted_at(),
                     pattern.units().front()->submitted_at());
  }
}

TEST(GraphSchedule, PipelinesMatchSeedTraceAndOverlap) {
  auto pattern = eop_workload();
  ASSERT_TRUE(run_fresh(pattern, 4).is_ok());
  const auto& units = pattern.units();
  ASSERT_EQ(units.size(), 6u);
  // Pre-refactor makespan: 11.168.
  EXPECT_NEAR(makespan(units), 11.168, kTolerance);
  // units() order: stage 1 in pipeline order, then stage 2 chained in
  // completion order (stage-1 durations increase with pipeline index).
  EXPECT_LT(units[0]->finished_at(), units[1]->finished_at());
  EXPECT_LT(units[1]->finished_at(), units[2]->finished_at());
  // Cross-pipeline overlap: pipeline 0's stage 2 starts (a) right at
  // its own stage-1 completion and (b) long before pipeline 2's
  // stage 1 even finished — the no-barrier property.
  EXPECT_NEAR(units[3]->submitted_at(), units[0]->finished_at(),
              kTolerance);
  EXPECT_LT(units[3]->exec_started_at(), units[2]->finished_at());
  // Each stage 2 still respects its own pipeline's stage 1.
  for (int p = 0; p < 3; ++p) {
    EXPECT_GE(units[3 + p]->exec_started_at(), units[p]->finished_at());
  }
}

TEST(GraphSchedule, SalMatchesSeedTraceAndKeepsBarriers) {
  auto pattern = sal_workload();
  ASSERT_TRUE(run_fresh(pattern, 4).is_ok());
  ASSERT_EQ(pattern.units().size(), 10u);
  ASSERT_EQ(pattern.simulation_units().size(), 6u);
  ASSERT_EQ(pattern.analysis_units().size(), 4u);
  // Pre-refactor makespan: 12.702 (the graph executor may only beat it
  // by skipping the old drive-granularity lag between stages).
  EXPECT_LE(makespan(pattern.units()), 12.702 + kTolerance);
  EXPECT_GE(makespan(pattern.units()), 12.702 - kTolerance);
  // Global barrier per stage: iteration-1 analyses start only after
  // ALL iteration-1 sims finished; iteration-2 sims only after ALL
  // iteration-1 analyses.
  const auto& sims = pattern.simulation_units();
  const auto& analyses = pattern.analysis_units();
  TimePoint sims1_done = 0.0;
  for (int s = 0; s < 3; ++s) {
    sims1_done = std::max(sims1_done, sims[s]->finished_at());
  }
  for (int a = 0; a < 2; ++a) {
    EXPECT_GE(analyses[a]->exec_started_at(), sims1_done);
  }
  TimePoint ana1_done = 0.0;
  for (int a = 0; a < 2; ++a) {
    ana1_done = std::max(ana1_done, analyses[a]->finished_at());
  }
  for (int s = 3; s < 6; ++s) {
    EXPECT_GE(sims[s]->exec_started_at(), ana1_done);
  }
}

TEST(GraphSchedule, GlobalExchangeMatchesSeedTrace) {
  auto pattern = ee_global_workload();
  ASSERT_TRUE(run_fresh(pattern, 4).is_ok());
  ASSERT_EQ(pattern.units().size(), 8u);
  // Pre-refactor makespan: 12.194.
  EXPECT_NEAR(makespan(pattern.units()), 12.194, kTolerance);
  // Cycle barrier: the exchange starts after every cycle-1 sim, and
  // every cycle-2 sim starts after the cycle-1 exchange.
  const auto& sims = pattern.simulation_units();
  const auto& exchanges = pattern.exchange_units();
  ASSERT_EQ(sims.size(), 6u);
  ASSERT_EQ(exchanges.size(), 2u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_GE(exchanges[0]->exec_started_at(), sims[r]->finished_at());
    EXPECT_GE(sims[3 + r]->exec_started_at(),
              exchanges[0]->finished_at());
  }
}

TEST(GraphSchedule, PairwiseMatchesSeedTraceAndStaysAsync) {
  auto pattern = ee_pairwise_workload();
  ASSERT_TRUE(run_fresh(pattern, 4).is_ok());
  ASSERT_EQ(pattern.units().size(), 11u);
  ASSERT_EQ(pattern.simulation_units().size(), 8u);
  ASSERT_EQ(pattern.exchange_units().size(), 3u);
  // Pre-refactor makespan: 17.675.
  EXPECT_NEAR(makespan(pattern.units()), 17.675, kTolerance);
  // No global barrier: the (0,1) cycle-1 exchange runs while replica
  // 3's cycle-1 simulation is still executing.
  const auto& exchanges = pattern.exchange_units();
  const auto& sims = pattern.simulation_units();
  EXPECT_LT(exchanges[0]->finished_at(), sims[3]->finished_at());
}

// ---------------------------------------------------------- determinism

TEST(GraphSchedule, SameWorkloadGivesIdenticalTimelines) {
  std::vector<Slot> first;
  {
    auto pattern = eop_workload();
    ASSERT_TRUE(run_fresh(pattern, 4).is_ok());
    first = timeline(pattern.units());
  }
  auto pattern = eop_workload();
  ASSERT_TRUE(run_fresh(pattern, 4).is_ok());
  const std::vector<Slot> second = timeline(pattern.units());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].submitted, second[i].submitted) << i;
    EXPECT_DOUBLE_EQ(first[i].started, second[i].started) << i;
    EXPECT_DOUBLE_EQ(first[i].finished, second[i].finished) << i;
  }
}

}  // namespace
}  // namespace entk::core
