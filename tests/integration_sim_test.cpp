// Large-scale integration and property tests on the simulated backend:
// paper-scale workloads, multi-pilot execution, and randomized
// stress of the engine/batch substrate.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/entk.hpp"
#include "pilot/agent.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/unit_manager.hpp"

namespace entk {
namespace {

TEST(PaperScale, TwoThousandReplicasOnSupermic) {
  // The Figure 5/6 extreme point, end to end: 2560 replicas, one EE
  // cycle, 2560 cores.
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::supermic_profile());
  core::ResourceOptions options;
  options.cores = 2560;
  options.runtime = 1e6;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  core::EnsembleExchange pattern(
      2560, 1, core::EnsembleExchange::ExchangeMode::kGlobalSweep);
  pattern.set_simulation([](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.simulate";
    spec.args.set("steps", 3000);
    spec.args.set("n_particles", 2881);
    spec.args.set("out", "traj_" + std::to_string(context.instance) +
                             ".dat");
    return spec;
  });
  pattern.set_exchange([](const core::StageContext&) {
    core::TaskSpec spec;
    spec.kernel = "md.exchange";
    spec.args.set("n_replicas", 2560);
    return spec;
  });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  EXPECT_EQ(report.value().units.size(), 2561u);
  for (const auto& unit : report.value().units) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
  }
  // All replicas concurrent: simulation wall time ~ one task duration.
  EXPECT_LT(report.value().overheads.execution_time, 200.0);
  ASSERT_TRUE(handle.deallocate().is_ok());
}

TEST(MultiPilot, UnitsDistributeAcrossPilots) {
  pilot::SimBackend backend(sim::localhost_profile());
  pilot::PilotManager pilot_manager(backend);
  pilot::UnitManager unit_manager(backend);

  std::vector<pilot::PilotPtr> pilots;
  for (int p = 0; p < 2; ++p) {
    pilot::PilotDescription description;
    description.resource = "localhost";
    description.cores = 8;
    description.runtime = 100000.0;
    auto pilot = pilot_manager.submit_pilot(description);
    ASSERT_TRUE(pilot.ok());
    unit_manager.add_pilot(pilot.value());
    pilots.push_back(pilot.take());
  }
  for (const auto& pilot : pilots) {
    ASSERT_TRUE(pilot_manager.wait_active(pilot).is_ok());
  }

  std::vector<pilot::UnitDescription> descriptions;
  for (int i = 0; i < 16; ++i) {
    pilot::UnitDescription description;
    description.name = "spread.unit";
    description.executable = "x";
    description.simulated_duration = 10.0;
    descriptions.push_back(std::move(description));
  }
  auto units = unit_manager.submit_units(std::move(descriptions));
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(unit_manager.wait_units(units.value()).is_ok());
  // Round-robin across two 8-core pilots: 16 concurrent units finish
  // in one wave; a single pilot would need two.
  TimePoint last_stop = 0.0;
  for (const auto& unit : units.value()) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
    last_stop = std::max(last_stop, unit->exec_stopped_at());
  }
  TimePoint first_start = kTimeInfinity;
  for (const auto& unit : units.value()) {
    first_start = std::min(first_start, unit->exec_started_at());
  }
  EXPECT_LT(last_stop - first_start, 15.0);
  // Both agents did work.
  EXPECT_GT(pilots[0]->agent()->total_spawn_overhead(), 0.0);
  EXPECT_GT(pilots[1]->agent()->total_spawn_overhead(), 0.0);
}

TEST(MultiPilot, WideUnitsRouteToTheLargerPilot) {
  pilot::SimBackend backend(sim::localhost_profile());
  pilot::PilotManager pilot_manager(backend);
  pilot::UnitManager unit_manager(backend);

  auto make_pilot = [&](Count cores) {
    pilot::PilotDescription description;
    description.resource = "localhost";
    description.cores = cores;
    description.runtime = 100000.0;
    auto pilot = pilot_manager.submit_pilot(description);
    EXPECT_TRUE(pilot.ok());
    unit_manager.add_pilot(pilot.value());
    return pilot.take();
  };
  auto small = make_pilot(2);
  auto large = make_pilot(16);
  ASSERT_TRUE(pilot_manager.wait_active(small).is_ok());
  ASSERT_TRUE(pilot_manager.wait_active(large).is_ok());

  pilot::UnitDescription wide;
  wide.name = "wide.unit";
  wide.executable = "x";
  wide.cores = 8;
  wide.uses_mpi = true;
  wide.simulated_duration = 5.0;
  auto units = unit_manager.submit_units({wide, wide, wide});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(unit_manager.wait_units(units.value()).is_ok());
  for (const auto& unit : units.value()) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
  }
  // Only the 16-core pilot can host them.
  EXPECT_GT(large->agent()->total_spawn_overhead(), 0.0);
  EXPECT_DOUBLE_EQ(small->agent()->total_spawn_overhead(), 0.0);
}

// ------------------------------------------------- randomized stress tests

TEST(EngineProperty, RandomStormDispatchesEverythingInOrder) {
  Xoshiro256 rng(20260708);
  for (int trial = 0; trial < 5; ++trial) {
    sim::Engine engine;
    std::vector<double> fired_times;
    std::set<sim::EventId> cancelled;
    std::vector<sim::EventId> ids;
    const int n_events = 500;
    for (int i = 0; i < n_events; ++i) {
      const double when = rng.uniform(0.0, 1000.0);
      ids.push_back(engine.schedule(
          when, [&fired_times, &engine] {
            fired_times.push_back(engine.now());
          }));
    }
    // Cancel a random quarter.
    for (int i = 0; i < n_events / 4; ++i) {
      const auto victim = ids[rng.uniform_index(ids.size())];
      if (engine.cancel(victim)) cancelled.insert(victim);
    }
    engine.run();
    EXPECT_EQ(fired_times.size(), n_events - cancelled.size());
    EXPECT_TRUE(std::is_sorted(fired_times.begin(), fired_times.end()));
    EXPECT_EQ(engine.pending_events(), 0u);
  }
}

TEST(BatchProperty, RandomWorkloadNeverCorruptsAccounting) {
  Xoshiro256 rng(424242);
  for (int trial = 0; trial < 3; ++trial) {
    sim::Engine engine;
    sim::Cluster cluster(sim::localhost_profile());  // 32 cores
    sim::BatchQueue batch(engine, cluster);
    std::vector<sim::BatchJobId> running;
    std::size_t ended = 0;
    const int n_jobs = 100;
    for (int i = 0; i < n_jobs; ++i) {
      sim::BatchJobRequest request;
      request.cores = 1 + static_cast<Count>(rng.uniform_index(32));
      request.walltime = rng.uniform(5.0, 50.0);
      request.on_end = [&ended](sim::BatchJobState) { ++ended; };
      auto id = batch.submit(std::move(request));
      ASSERT_TRUE(id.ok());
      // Randomly interleave cancellations and time progress.
      if (rng.uniform() < 0.2) {
        (void)batch.cancel(id.value());
      }
      if (rng.uniform() < 0.5) {
        engine.run_until(engine.now() + rng.uniform(0.0, 5.0));
      }
      // Invariant: the cluster is never oversubscribed.
      ASSERT_GE(cluster.free_cores(), 0);
      ASSERT_LE(cluster.used_cores(), cluster.total_cores());
    }
    engine.run();  // everything expires or finishes
    EXPECT_EQ(cluster.free_cores(), cluster.total_cores());
    EXPECT_EQ(ended, static_cast<std::size_t>(n_jobs));
  }
}

// Parameterised sweep: every pattern size yields exactly the expected
// unit count and all-done states on the simulated backend.
class PatternSizeSweep : public ::testing::TestWithParam<Count> {};

TEST_P(PatternSizeSweep, EopUnitCountMatches) {
  const Count n = GetParam();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::comet_profile());
  core::ResourceOptions options;
  options.cores = std::min<Count>(n, 96);
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());
  core::EnsembleOfPipelines pattern(n, 2);
  for (Count s = 1; s <= 2; ++s) {
    pattern.set_stage(s, [](const core::StageContext&) {
      core::TaskSpec spec;
      spec.kernel = "misc.sleep";
      spec.args.set("duration", 1.0);
      return spec;
    });
  }
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  EXPECT_EQ(report.value().units.size(), static_cast<std::size_t>(2 * n));
  for (const auto& unit : report.value().units) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PatternSizeSweep,
                         ::testing::Values(1, 2, 7, 24, 96, 256));

}  // namespace
}  // namespace entk
