// Tests of JSDL-style job-description serialization.
#include <gtest/gtest.h>

#include "saga/jsdl.hpp"

namespace entk::saga {
namespace {

JobDescription sample_description() {
  JobDescription description;
  description.name = "md-production-17";
  description.executable = "/opt/amber/bin/pmemd.MPI";
  description.arguments = {"-i", "prod.in", "-o", "prod.out"};
  description.environment = {{"OMP_NUM_THREADS", "1"},
                             {"AMBERHOME", "/opt/amber"}};
  description.working_directory = "/scratch/run17";
  description.total_cpu_count = 64;
  description.processes_per_host = 16;
  description.wall_time_limit = 7200.0;
  description.queue = "normal";
  description.project = "TG-MCB090174";
  return description;
}

TEST(Jsdl, RoundTripPreservesEveryField) {
  const JobDescription original = sample_description();
  const std::string text = to_jsdl(original);
  auto parsed = from_jsdl(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const JobDescription& restored = parsed.value();
  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.executable, original.executable);
  EXPECT_EQ(restored.arguments, original.arguments);
  EXPECT_EQ(restored.environment, original.environment);
  EXPECT_EQ(restored.working_directory, original.working_directory);
  EXPECT_EQ(restored.total_cpu_count, original.total_cpu_count);
  EXPECT_EQ(restored.processes_per_host, original.processes_per_host);
  EXPECT_DOUBLE_EQ(restored.wall_time_limit, original.wall_time_limit);
  EXPECT_EQ(restored.queue, original.queue);
  EXPECT_EQ(restored.project, original.project);
}

TEST(Jsdl, SerializationUsesJsdlElementNames) {
  const std::string text = to_jsdl(sample_description());
  for (const char* element :
       {"jsdl:ApplicationName", "jsdl:Executable", "jsdl:Argument",
        "jsdl:Environment", "jsdl:TotalCPUCount", "jsdl:WallTimeLimit",
        "jsdl:Queue", "jsdl:Project", "jsdl:WorkingDirectory"}) {
    EXPECT_NE(text.find(element), std::string::npos) << element;
  }
}

TEST(Jsdl, OptionalFieldsOmittedWhenEmpty) {
  JobDescription minimal;
  minimal.executable = "/bin/true";
  const std::string text = to_jsdl(minimal);
  EXPECT_EQ(text.find("jsdl:Queue"), std::string::npos);
  EXPECT_EQ(text.find("jsdl:Project"), std::string::npos);
  EXPECT_EQ(text.find("jsdl:ProcessesPerHost"), std::string::npos);
  auto parsed = from_jsdl(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().executable, "/bin/true");
}

TEST(Jsdl, ParserRejectsGarbage) {
  EXPECT_EQ(from_jsdl("not jsdl at all").status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(from_jsdl("jsdl:Unknown = 1\n").status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(from_jsdl("jsdl:Environment = NOEQUALS\n").status().code(),
            Errc::kInvalidArgument);
  // Valid syntax but invalid description (no executable).
  EXPECT_EQ(from_jsdl("jsdl:Queue = normal\n").status().code(),
            Errc::kInvalidArgument);
}

TEST(Jsdl, CommentsAndBlankLinesIgnored) {
  auto parsed = from_jsdl(
      "# produced by entk\n\njsdl:Executable = /bin/date\n"
      "jsdl:TotalCPUCount = 2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().total_cpu_count, 2);
}

}  // namespace
}  // namespace entk::saga
