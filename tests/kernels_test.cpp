// Tests of the kernel plugins: registry, validation, machine binding,
// cost models, and real payload execution in a scratch sandbox.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/uid.hpp"
#include "kernels/registry.hpp"
#include "md/builder.hpp"
#include "md/integrator.hpp"
#include "md/trajectory.hpp"

namespace entk::kernels {
namespace {

namespace fs = std::filesystem;

/// Scratch sandbox + shared dir, cleaned up per test.
class KernelPayloadTest : public ::testing::Test {
 protected:
  KernelPayloadTest() {
    // Pid-qualified: uid counters are per-process, and ctest -j runs
    // each test case as its own process against the shared /tmp.
    root_ = fs::temp_directory_path() /
            next_uid("entk-kernel-test." + std::to_string(::getpid()));
    sandbox_ = root_ / "sandbox";
    shared_ = root_ / "shared";
    fs::create_directories(sandbox_);
    fs::create_directories(shared_);
    context_.sandbox = sandbox_;
    context_.shared = shared_;
    context_.cores = 1;
  }
  ~KernelPayloadTest() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  KernelRegistry registry_ = KernelRegistry::with_builtin_kernels();
  sim::MachineProfile machine_ = sim::localhost_profile();
  fs::path root_, sandbox_, shared_;
  pilot::UnitRuntimeContext context_;
};

TEST(KernelRegistry, BuiltinsPresent) {
  const auto registry = KernelRegistry::with_builtin_kernels();
  for (const char* name :
       {"misc.mkfile", "misc.ccount", "misc.chksum", "misc.sleep",
        "md.simulate", "md.exchange", "md.coco", "md.lsdmap"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_EQ(registry.find("nope").status().code(), Errc::kNotFound);
  EXPECT_EQ(registry.names().size(), 8u);
}

TEST(KernelRegistry, RejectsDuplicates) {
  KernelRegistry registry;
  ASSERT_TRUE(registry.register_kernel(make_mkfile_kernel()).is_ok());
  EXPECT_EQ(registry.register_kernel(make_mkfile_kernel()).code(),
            Errc::kAlreadyExists);
}

TEST(KernelValidation, CatchesBadArguments) {
  const auto registry = KernelRegistry::with_builtin_kernels();
  Config bad_size;
  bad_size.set("size_kb", -1.0);
  EXPECT_EQ(registry.find("misc.mkfile")
                .value()
                ->validate(bad_size)
                .code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(registry.find("misc.ccount").value()->validate({}).code(),
            Errc::kInvalidArgument);  // missing input
  Config bad_engine;
  bad_engine.set("engine", "namd");
  EXPECT_EQ(registry.find("md.simulate")
                .value()
                ->validate(bad_engine)
                .code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(registry.find("md.exchange").value()->validate({}).code(),
            Errc::kInvalidArgument);  // missing n_replicas
  Config one_replica;
  one_replica.set("n_replicas", 1);
  EXPECT_EQ(registry.find("md.exchange")
                .value()
                ->validate(one_replica)
                .code(),
            Errc::kInvalidArgument);
}

TEST(KernelBinding, MachineSpecificExecutablesResolve) {
  const auto registry = KernelRegistry::with_builtin_kernels();
  const auto kernel = registry.find("md.simulate").value();
  Config args;
  const auto comet = kernel->bind(args, sim::comet_profile());
  const auto stampede = kernel->bind(args, sim::stampede_profile());
  const auto local = kernel->bind(args, sim::localhost_profile());
  ASSERT_TRUE(comet.ok());
  ASSERT_TRUE(stampede.ok());
  ASSERT_TRUE(local.ok());
  EXPECT_NE(comet.value().executable, stampede.value().executable);
  EXPECT_EQ(local.value().executable, "pmemd");  // the "*" fallback
  EXPECT_FALSE(comet.value().pre_exec.empty());
}

TEST(KernelBinding, CostModelScalesWithWorkAndMachine) {
  const auto registry = KernelRegistry::with_builtin_kernels();
  const auto kernel = registry.find("md.simulate").value();
  Config small;
  small.set("steps", 1000);
  small.set("n_particles", 2881);
  Config big = small;
  big.set("steps", 2000);
  const auto machine = sim::stampede_profile();
  const double small_cost =
      kernel->bind(small, machine).value().estimated_duration;
  const double big_cost =
      kernel->bind(big, machine).value().estimated_duration;
  EXPECT_NEAR(big_cost, 2.0 * small_cost, 1e-9);

  // MPI: cores divide the cost.
  Config mpi = small;
  mpi.set("cores", 16);
  const auto bound_mpi = kernel->bind(mpi, machine).value();
  EXPECT_TRUE(bound_mpi.uses_mpi);
  EXPECT_EQ(bound_mpi.cores, 16);
  EXPECT_NEAR(bound_mpi.estimated_duration, small_cost / 16.0, 1e-9);

  // Faster machine, lower cost.
  const double comet_cost =
      kernel->bind(small, sim::comet_profile()).value().estimated_duration;
  EXPECT_LT(comet_cost, small_cost);

  // Gromacs profile is cheaper per step than Amber.
  Config gromacs = small;
  gromacs.set("engine", "gromacs");
  EXPECT_LT(kernel->bind(gromacs, machine).value().estimated_duration,
            small_cost);
}

TEST(KernelBinding, ExchangeCostGrowsWithReplicas) {
  const auto registry = KernelRegistry::with_builtin_kernels();
  const auto kernel = registry.find("md.exchange").value();
  const auto machine = sim::supermic_profile();
  Config few;
  few.set("n_replicas", 20);
  Config many;
  many.set("n_replicas", 2560);
  EXPECT_GT(kernel->bind(many, machine).value().estimated_duration,
            kernel->bind(few, machine).value().estimated_duration);
}

TEST(KernelBinding, StagingDirectivesFromConvention) {
  const auto registry = KernelRegistry::with_builtin_kernels();
  Config args;
  args.set("input", "data.txt");
  const auto bound = registry.find("misc.ccount")
                         .value()
                         ->bind(args, sim::localhost_profile())
                         .value();
  ASSERT_EQ(bound.input_staging.size(), 1u);
  EXPECT_EQ(bound.input_staging[0].source, "data.txt");
  ASSERT_EQ(bound.output_staging.size(), 1u);
  EXPECT_EQ(bound.output_staging[0].source, "data.txt.count");
}

// ----------------------------------------------------------- real payloads

TEST_F(KernelPayloadTest, MkfileWritesRequestedBytes) {
  Config args;
  args.set("filename", "made.txt");
  args.set("size_kb", 4.0);
  auto bound = registry_.find("misc.mkfile")
                   .value()
                   ->bind(args, machine_)
                   .value();
  ASSERT_TRUE(bound.payload(context_).is_ok());
  EXPECT_EQ(fs::file_size(sandbox_ / "made.txt"), 4096u);
}

TEST_F(KernelPayloadTest, CcountCountsWhatMkfileMade) {
  // Two-stage hand-off through the sandbox (the staging layer is
  // exercised separately in the pilot tests).
  Config mkfile_args;
  mkfile_args.set("filename", "payload.txt");
  mkfile_args.set("size_kb", 2.0);
  auto mkfile = registry_.find("misc.mkfile")
                    .value()
                    ->bind(mkfile_args, machine_)
                    .value();
  ASSERT_TRUE(mkfile.payload(context_).is_ok());

  Config ccount_args;
  ccount_args.set("input", "payload.txt");
  auto ccount = registry_.find("misc.ccount")
                    .value()
                    ->bind(ccount_args, machine_)
                    .value();
  ASSERT_TRUE(ccount.payload(context_).is_ok());
  std::ifstream count_file(sandbox_ / "payload.txt.count");
  std::size_t count = 0;
  ASSERT_TRUE(count_file >> count);
  EXPECT_EQ(count, 2048u);
}

TEST_F(KernelPayloadTest, CcountFailsOnMissingInput) {
  Config args;
  args.set("input", "never-staged.txt");
  auto bound = registry_.find("misc.ccount")
                   .value()
                   ->bind(args, machine_)
                   .value();
  EXPECT_EQ(bound.payload(context_).code(), Errc::kIoError);
}

TEST_F(KernelPayloadTest, ChksumIsDeterministic) {
  {
    std::ofstream file(sandbox_ / "blob.bin", std::ios::binary);
    file << "ensemble toolkit";
  }
  Config args;
  args.set("input", "blob.bin");
  auto bound = registry_.find("misc.chksum")
                   .value()
                   ->bind(args, machine_)
                   .value();
  ASSERT_TRUE(bound.payload(context_).is_ok());
  std::uint64_t first = 0;
  {
    std::ifstream sum(sandbox_ / "blob.bin.sum");
    ASSERT_TRUE(sum >> first);
  }
  ASSERT_TRUE(bound.payload(context_).is_ok());
  std::uint64_t second = 0;
  {
    std::ifstream sum(sandbox_ / "blob.bin.sum");
    ASSERT_TRUE(sum >> second);
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0u);
}

TEST_F(KernelPayloadTest, MdSimulateProducesTrajectoryAndEnergy) {
  Config args;
  args.set("steps", 50);
  args.set("n_particles", 48);
  args.set("sample_every", 10);
  args.set("out", "run.dat");
  args.set("energy_out", "run.energy");
  auto bound = registry_.find("md.simulate")
                   .value()
                   ->bind(args, machine_)
                   .value();
  ASSERT_TRUE(bound.payload(context_).is_ok());
  auto trajectory = md::Trajectory::load((sandbox_ / "run.dat").string());
  ASSERT_TRUE(trajectory.ok());
  EXPECT_EQ(trajectory.value().size(), 5u);
  EXPECT_EQ(trajectory.value().frame(0).positions.size(), 48u);
  std::ifstream energy(sandbox_ / "run.energy");
  double potential = 0.0, temperature = 0.0;
  ASSERT_TRUE(energy >> potential >> temperature);
  EXPECT_TRUE(std::isfinite(potential));
  EXPECT_GT(temperature, 0.0);
}

TEST_F(KernelPayloadTest, MdSimulateRestartsFromSharedTrajectory) {
  // Produce a first trajectory directly into the shared space.
  Config first_args;
  first_args.set("steps", 20);
  first_args.set("n_particles", 27);
  first_args.set("out", "seed.dat");
  auto first = registry_.find("md.simulate")
                   .value()
                   ->bind(first_args, machine_)
                   .value();
  pilot::UnitRuntimeContext seed_context = context_;
  seed_context.sandbox = shared_;  // write where the restart reads
  ASSERT_TRUE(first.payload(seed_context).is_ok());

  Config restart_args;
  restart_args.set("steps", 20);
  restart_args.set("n_particles", 27);
  restart_args.set("start_from", "seed.dat");
  restart_args.set("out", "continued.dat");
  auto restart = registry_.find("md.simulate")
                     .value()
                     ->bind(restart_args, machine_)
                     .value();
  EXPECT_EQ(restart.input_staging.size(), 1u);
  ASSERT_TRUE(restart.payload(context_).is_ok());
  EXPECT_TRUE(fs::exists(sandbox_ / "continued.dat"));

  // Mismatched particle count is rejected.
  Config bad_args = restart_args;
  bad_args.set("n_particles", 64);
  auto bad = registry_.find("md.simulate")
                 .value()
                 ->bind(bad_args, machine_)
                 .value();
  EXPECT_EQ(bad.payload(context_).code(), Errc::kInvalidArgument);
}

TEST_F(KernelPayloadTest, MdExchangeReadsEnergiesAndWritesAssignments) {
  for (int r = 0; r < 4; ++r) {
    std::ofstream energy(shared_ / ("replica_" + std::to_string(r) +
                                    ".energy"));
    energy << (-10.0 * r) << " 1.0\n";
  }
  Config args;
  args.set("n_replicas", 4);
  auto bound = registry_.find("md.exchange")
                   .value()
                   ->bind(args, machine_)
                   .value();
  ASSERT_TRUE(bound.payload(context_).is_ok());
  std::ifstream result(sandbox_ / "exchange_result.txt");
  std::string key;
  std::size_t attempted = 0;
  ASSERT_TRUE(result >> key >> attempted);
  EXPECT_EQ(key, "attempted");
  EXPECT_EQ(attempted, 2u);  // even sweep over 4 replicas
}

TEST_F(KernelPayloadTest, MdExchangeFailsOnMissingEnergyFile) {
  Config args;
  args.set("n_replicas", 3);
  auto bound = registry_.find("md.exchange")
                   .value()
                   ->bind(args, machine_)
                   .value();
  EXPECT_EQ(bound.payload(context_).code(), Errc::kIoError);
}

TEST_F(KernelPayloadTest, MdCocoAnalysesTrajectoriesFromSharedSpace) {
  // Generate two small trajectories into the shared space.
  for (int s = 0; s < 2; ++s) {
    Config args;
    args.set("steps", 30);
    args.set("n_particles", 27);
    args.set("sample_every", 5);
    args.set("seed", 100 + s);
    args.set("out", "traj_" + std::to_string(s) + ".dat");
    auto bound = registry_.find("md.simulate")
                     .value()
                     ->bind(args, machine_)
                     .value();
    pilot::UnitRuntimeContext shared_context = context_;
    shared_context.sandbox = shared_;
    ASSERT_TRUE(bound.payload(shared_context).is_ok());
  }
  Config coco_args;
  coco_args.set("n_sims", 2);
  coco_args.set("n_new_points", 3);
  auto coco = registry_.find("md.coco")
                  .value()
                  ->bind(coco_args, machine_)
                  .value();
  ASSERT_TRUE(coco.payload(context_).is_ok());
  std::ifstream result(sandbox_ / "coco_points.txt");
  std::string key;
  double occupancy = 0.0;
  ASSERT_TRUE(result >> key >> occupancy);
  EXPECT_EQ(key, "occupancy");
  EXPECT_GT(occupancy, 0.0);
}

TEST_F(KernelPayloadTest, MdLsdmapProducesCoordinates) {
  Config sim_args;
  sim_args.set("steps", 40);
  sim_args.set("n_particles", 27);
  sim_args.set("sample_every", 4);
  sim_args.set("out", "traj.dat");
  auto simulate = registry_.find("md.simulate")
                      .value()
                      ->bind(sim_args, machine_)
                      .value();
  ASSERT_TRUE(simulate.payload(context_).is_ok());

  Config lsdmap_args;
  lsdmap_args.set("traj", "traj.dat");
  lsdmap_args.set("n_coords", 2);
  auto lsdmap = registry_.find("md.lsdmap")
                    .value()
                    ->bind(lsdmap_args, machine_)
                    .value();
  ASSERT_TRUE(lsdmap.payload(context_).is_ok());
  std::ifstream result(sandbox_ / "lsdmap.txt");
  std::string key;
  double epsilon = 0.0;
  ASSERT_TRUE(result >> key >> epsilon);
  EXPECT_EQ(key, "epsilon");
  EXPECT_GT(epsilon, 0.0);
}

}  // namespace
}  // namespace entk::kernels
