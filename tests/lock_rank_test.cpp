// Tests of the runtime lock-rank validator (common/lock_rank.hpp).
//
// The interesting assertions only exist under ENTK_LOCK_RANK_CHECK
// (the `lock-rank` CMake preset): out-of-order acquisition must abort
// the process, which we observe from a forked child. In ordinary
// builds the validator compiles to no-ops and this file only checks
// the rank table itself.
#include <gtest/gtest.h>

#include "common/lock_rank.hpp"
#include "common/mutex.hpp"

#if defined(ENTK_LOCK_RANK_CHECK)
#include <csignal>
#include <cstdio>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace entk {
namespace {

TEST(LockRank, NamesAreStable) {
  EXPECT_STREQ(lock_rank_name(LockRank::kNone), "kNone");
  EXPECT_STREQ(lock_rank_name(LockRank::kUnitManager), "kUnitManager");
  EXPECT_STREQ(lock_rank_name(LockRank::kThreadPool), "kThreadPool");
  EXPECT_STREQ(lock_rank_name(LockRank::kLogger), "kLogger");
}

TEST(LockRank, RanksAreStrictlyOrderedAlongTheRuntimeChain) {
  // The documented nesting chains must be strictly increasing; this
  // pins the table against accidental reordering (the full graph is
  // checked statically by entk-analyze --locks).
  EXPECT_LT(static_cast<int>(LockRank::kGraphExecutor),
            static_cast<int>(LockRank::kComputeUnit));
  EXPECT_LT(static_cast<int>(LockRank::kUnitManager),
            static_cast<int>(LockRank::kPilot));
  EXPECT_LT(static_cast<int>(LockRank::kLocalAdaptor),
            static_cast<int>(LockRank::kSagaJob));
  EXPECT_LT(static_cast<int>(LockRank::kLocalAgent),
            static_cast<int>(LockRank::kThreadPool));
  EXPECT_LT(static_cast<int>(LockRank::kComputeUnit),
            static_cast<int>(LockRank::kTraceRecorder));
  EXPECT_LT(static_cast<int>(LockRank::kTraceRecorder),
            static_cast<int>(LockRank::kLogger));
}

#if defined(ENTK_LOCK_RANK_CHECK)

/// Runs `body` in a forked child and returns its wait status. The
/// child's stderr is silenced: an expected abort should not spray the
/// validator's diagnostic into the test log.
template <typename Body>
int exit_status_of(Body body) {
  const pid_t pid = fork();
  if (pid == 0) {
    std::freopen("/dev/null", "w", stderr);
    body();
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

TEST(LockRankCheck, InOrderAcquisitionPasses) {
  Mutex low(LockRank::kUnitManager);
  Mutex high(LockRank::kThreadPool);
  {
    MutexLock outer(low);
    MutexLock inner(high);
    EXPECT_EQ(lockrank::held_count(), 2);
  }
  EXPECT_EQ(lockrank::held_count(), 0);
}

TEST(LockRankCheck, UnrankedLocksAreExemptFromOrdering) {
  Mutex ranked(LockRank::kThreadPool);
  Mutex unranked;
  MutexLock outer(ranked);
  MutexLock inner(unranked);  // kNone after a high rank: allowed
  EXPECT_EQ(lockrank::held_count(), 2);
}

TEST(LockRankCheck, OutOfOrderAcquisitionAborts) {
  const int status = exit_status_of([] {
    Mutex low(LockRank::kUnitManager);
    Mutex high(LockRank::kThreadPool);
    MutexLock outer(high);
    MutexLock inner(low);  // rank 30 while holding 80: must abort
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

TEST(LockRankCheck, EqualRankAcquisitionAborts) {
  const int status = exit_status_of([] {
    Mutex first(LockRank::kComputeUnit);
    Mutex second(LockRank::kComputeUnit);
    MutexLock outer(first);
    MutexLock inner(second);  // equal rank: order is ambiguous
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

TEST(LockRankCheck, SelfDeadlockAborts) {
  const int status = exit_status_of([] {
    Mutex mutex;  // even unranked locks catch re-acquisition
    mutex.lock();
    mutex.lock();
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

TEST(LockRankCheck, SharedMutexParticipates) {
  const int status = exit_status_of([] {
    SharedMutex low(LockRank::kUnitManager);
    Mutex high(LockRank::kThreadPool);
    MutexLock outer(high);
    SharedReaderLock inner(low);  // readers obey the same order
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

#else  // !ENTK_LOCK_RANK_CHECK

TEST(LockRankCheck, DisabledValidatorIsFree) {
  // Release builds keep the rank argument but compile the hooks to
  // no-ops; held_count is always zero.
  Mutex mutex(LockRank::kThreadPool);
  MutexLock lock(mutex);
  EXPECT_EQ(lockrank::held_count(), 0);
}

#endif  // ENTK_LOCK_RANK_CHECK

}  // namespace
}  // namespace entk
