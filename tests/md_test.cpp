// Unit and property tests of the MD substrate.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/stats.hpp"
#include "md/builder.hpp"
#include "md/forcefield.hpp"
#include "md/integrator.hpp"
#include "md/remd.hpp"
#include "md/trajectory.hpp"

namespace entk::md {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -2.0, 0.5};
  const Vec3 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 5.0);
  EXPECT_DOUBLE_EQ(sum.y, 0.0);
  EXPECT_DOUBLE_EQ(sum.z, 3.5);
  EXPECT_DOUBLE_EQ(a.dot(b), 1.5);
  EXPECT_DOUBLE_EQ((2.0 * a).norm2(), 4.0 * a.norm2());
  EXPECT_DOUBLE_EQ((Vec3{3.0, 4.0, 0.0}).norm(), 5.0);
}

TEST(System, MinimumImageWrapsAcrossTheBox) {
  System sys(2, 10.0);
  sys.positions[0] = {0.5, 0.5, 0.5};
  sys.positions[1] = {9.5, 0.5, 0.5};
  const Vec3 d = sys.minimum_image(sys.positions[0], sys.positions[1]);
  EXPECT_NEAR(d.x, 1.0, 1e-12);  // through the boundary, not across
  EXPECT_NEAR(d.norm(), 1.0, 1e-12);
}

TEST(System, WrapPositionsKeepsEverythingInBox) {
  System sys(3, 5.0);
  sys.positions[0] = {-1.0, 6.0, 2.0};
  sys.positions[1] = {12.5, -7.5, 5.0};
  sys.wrap_positions();
  for (const auto& p : sys.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 5.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 5.0);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, 5.0);
  }
}

TEST(System, ThermalizeHitsTargetTemperature) {
  System sys = build_fluid(2000);
  Xoshiro256 rng(5);
  sys.thermalize_velocities(1.5, rng);
  EXPECT_NEAR(sys.temperature(), 1.5, 0.1);
  // Drift removed.
  Vec3 momentum{};
  for (std::size_t i = 0; i < sys.size(); ++i) {
    momentum += sys.masses[i] * sys.velocities[i];
  }
  EXPECT_NEAR(momentum.norm(), 0.0, 1e-9);
}

TEST(ForceField, ForcesAreMinusEnergyGradient) {
  // Finite-difference check on a small random configuration with every
  // bonded term: bonds, angles and torsions.
  System sys = build_fluid(24, 0.5);
  sys.bonds.push_back({0, 1, 50.0, 1.0});
  sys.bonds.push_back({1, 2, 80.0, 0.8});
  sys.angles.push_back({0, 1, 2, 25.0, 1.911});
  sys.angles.push_back({3, 4, 5, 10.0, 2.1});
  sys.dihedrals.push_back({0, 1, 2, 3, 2.5, 3, 0.4});
  sys.dihedrals.push_back({4, 5, 6, 7, 1.5, 1, 0.0});
  Xoshiro256 rng(9);
  for (auto& p : sys.positions) {
    p += Vec3{rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1),
              rng.uniform(-0.1, 0.1)};
  }
  const ForceField forcefield;
  forcefield.compute(sys);
  const double h = 1e-6;
  for (const std::size_t i : {0UL, 1UL, 5UL, 23UL}) {
    for (int axis = 0; axis < 3; ++axis) {
      auto& coordinate = axis == 0   ? sys.positions[i].x
                         : axis == 1 ? sys.positions[i].y
                                     : sys.positions[i].z;
      const double original = coordinate;
      coordinate = original + h;
      const double e_plus = forcefield.energy(sys);
      coordinate = original - h;
      const double e_minus = forcefield.energy(sys);
      coordinate = original;
      const double numeric = -(e_plus - e_minus) / (2.0 * h);
      const double analytic = axis == 0   ? sys.forces[i].x
                              : axis == 1 ? sys.forces[i].y
                                          : sys.forces[i].z;
      EXPECT_NEAR(analytic, numeric,
                  1e-4 * std::max(1.0, std::fabs(numeric)))
          << "particle " << i << " axis " << axis;
    }
  }
}

TEST(ForceField, CellListMatchesBruteForce) {
  // A system large enough to use the cell list; compare with a tiny
  // dense system whose brute-force path is exact by construction.
  System big = build_fluid(600, 0.6);
  const ForceField forcefield;
  const double e_cell = forcefield.energy(big);
  // Reference: direct O(N^2) evaluation.
  const double cutoff = forcefield.cutoff();
  double e_ref = 0.0;
  const auto& params = forcefield.params();
  for (std::size_t i = 0; i < big.size(); ++i) {
    for (std::size_t j = i + 1; j < big.size(); ++j) {
      const Vec3 d = big.minimum_image(big.positions[i], big.positions[j]);
      const double r2 = d.norm2();
      if (r2 >= cutoff * cutoff || r2 < 1e-16) continue;
      const double s2 = params.sigma * params.sigma / r2;
      const double s6 = s2 * s2 * s2;
      e_ref += 4.0 * params.epsilon * (s6 * s6 - s6) + params.epsilon;
    }
  }
  EXPECT_NEAR(e_cell, e_ref, 1e-9 * std::max(1.0, std::fabs(e_ref)));
}

TEST(ForceField, EnergyIsNonNegativeForWcaOnly) {
  System sys = build_fluid(100, 0.8);
  const ForceField forcefield;
  EXPECT_GE(forcefield.energy(sys), 0.0);  // WCA is purely repulsive
}

TEST(VelocityVerlet, ConservesEnergyInNve) {
  System sys = build_fluid(64, 0.4);
  Xoshiro256 rng(21);
  sys.thermalize_velocities(0.5, rng);
  const ForceField forcefield;
  double potential = forcefield.compute(sys);
  const double e0 = potential + sys.kinetic_energy();
  const VelocityVerlet integrator(0.002);
  RunningStats drift;
  for (int step = 0; step < 500; ++step) {
    potential = integrator.step(sys, forcefield);
    drift.add(potential + sys.kinetic_energy() - e0);
  }
  // Total energy stays within a small fraction of the initial value.
  EXPECT_LT(std::fabs(drift.mean()), 0.02 * std::max(1.0, std::fabs(e0)));
  EXPECT_LT(drift.max() - drift.min(), 0.05 * std::max(1.0, std::fabs(e0)));
}

TEST(Langevin, ThermostatsToTargetTemperature) {
  System sys = build_fluid(216, 0.4);
  Xoshiro256 rng(33);
  sys.thermalize_velocities(0.2, rng);  // start cold
  const ForceField forcefield;
  forcefield.compute(sys);
  const double target = 1.2;
  const LangevinIntegrator integrator(0.005, 1.0, target);
  for (int step = 0; step < 500; ++step) {
    integrator.step(sys, forcefield, rng);
  }
  RunningStats temperature;
  for (int step = 0; step < 1500; ++step) {
    integrator.step(sys, forcefield, rng);
    temperature.add(sys.temperature());
  }
  EXPECT_NEAR(temperature.mean(), target, 0.08);
}

TEST(Builder, DipeptideHasThePaperComposition) {
  const BuiltSystem built = build_solvated_dipeptide();
  EXPECT_EQ(built.system.size(), 2881u);  // 22 + 3 * 953
  EXPECT_EQ(built.solute_atoms, 22u);
  // Topology: 13 backbone + 8 branch + 3 * 953 water bonds.
  EXPECT_EQ(built.system.bonds.size(), 13u + 8u + 3u * 953u);
  // Bonds reference valid particles.
  for (const auto& bond : built.system.bonds) {
    EXPECT_LT(bond.i, built.system.size());
    EXPECT_LT(bond.j, built.system.size());
    EXPECT_NE(bond.i, bond.j);
  }
}

TEST(Builder, DipeptideIsStableUnderDynamics) {
  const BuiltSystem built = build_solvated_dipeptide(100);  // small: 322
  System sys = built.system;
  Xoshiro256 rng(41);
  sys.thermalize_velocities(1.0, rng);
  const ForceField forcefield;
  forcefield.compute(sys);
  const LangevinIntegrator integrator(0.002, 1.0, 1.0);
  for (int step = 0; step < 200; ++step) {
    const double potential = integrator.step(sys, forcefield, rng);
    ASSERT_TRUE(std::isfinite(potential)) << "blew up at step " << step;
  }
  EXPECT_NEAR(sys.temperature(), 1.0, 0.35);
}

TEST(Remd, GeometricLadderIsAscendingGeometric) {
  const auto ladder = geometric_ladder(8, 1.0, 2.0);
  ASSERT_EQ(ladder.size(), 8u);
  EXPECT_DOUBLE_EQ(ladder.front(), 1.0);
  EXPECT_NEAR(ladder.back(), 2.0, 1e-12);
  const double ratio = ladder[1] / ladder[0];
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_NEAR(ladder[i] / ladder[i - 1], ratio, 1e-12);
  }
  EXPECT_EQ(geometric_ladder(1, 1.5, 3.0).size(), 1u);
}

TEST(Remd, EqualEnergiesAlwaysSwap) {
  // delta == 0 -> acceptance probability 1.
  ReplicaExchange remd(geometric_ladder(4, 1.0, 2.0));
  Xoshiro256 rng(55);
  const std::vector<double> energies(4, -10.0);
  const ExchangeStats sweep = remd.attempt_sweep(energies, rng);
  EXPECT_EQ(sweep.attempted, 2u);
  EXPECT_EQ(sweep.accepted, 2u);
  // Rungs 0<->1 and 2<->3 swapped.
  EXPECT_EQ(remd.rung_of(0), 1u);
  EXPECT_EQ(remd.rung_of(1), 0u);
}

TEST(Remd, FavourableSwapsAlwaysAccepted) {
  // Hot replica with *lower* energy than the cold one: delta > 0.
  ReplicaExchange remd(geometric_ladder(2, 1.0, 2.0));
  Xoshiro256 rng(56);
  const std::vector<double> energies{100.0, -100.0};
  const ExchangeStats sweep = remd.attempt_sweep(energies, rng);
  EXPECT_EQ(sweep.accepted, 1u);
}

TEST(Remd, VeryUnfavourableSwapsRejected) {
  ReplicaExchange remd(geometric_ladder(2, 1.0, 2.0));
  Xoshiro256 rng(57);
  // Cold replica far below the hot one: delta very negative.
  const std::vector<double> energies{-1e6, 1e6};
  const ExchangeStats sweep = remd.attempt_sweep(energies, rng);
  EXPECT_EQ(sweep.accepted, 0u);
  EXPECT_EQ(remd.rung_of(0), 0u);
}

TEST(Remd, SweepParityAlternates) {
  ReplicaExchange remd(geometric_ladder(5, 1.0, 2.0));
  Xoshiro256 rng(58);
  const std::vector<double> energies(5, 0.0);
  // Even sweep: pairs (0,1),(2,3) -> 2 attempts.
  EXPECT_EQ(remd.attempt_sweep(energies, rng).attempted, 2u);
  // Odd sweep: pairs (1,2),(3,4) -> 2 attempts.
  EXPECT_EQ(remd.attempt_sweep(energies, rng).attempted, 2u);
  EXPECT_EQ(remd.sweeps_completed(), 2u);
  EXPECT_EQ(remd.cumulative_stats().attempted, 4u);
}

TEST(Remd, VisitsTrackMixing) {
  ReplicaExchange remd(geometric_ladder(4, 1.0, 2.0));
  Xoshiro256 rng(59);
  const std::vector<double> energies(4, 0.0);
  for (int sweep = 0; sweep < 100; ++sweep) {
    (void)remd.attempt_sweep(energies, rng);
  }
  // With always-accepted swaps every replica must leave its rung.
  const auto& visits = remd.visits();
  for (std::size_t r = 0; r < 4; ++r) {
    std::size_t rungs_visited = 0;
    for (std::size_t rung = 0; rung < 4; ++rung) {
      if (visits[r][rung] > 0) ++rungs_visited;
    }
    EXPECT_GT(rungs_visited, 1u) << "replica " << r << " never mixed";
  }
}

TEST(Trajectory, RoundTripsThroughDisk) {
  Trajectory trajectory;
  Xoshiro256 rng(61);
  for (int f = 0; f < 3; ++f) {
    Frame frame;
    frame.time = f * 0.5;
    frame.potential_energy = rng.normal(0, 10);
    frame.temperature = 1.0 + 0.1 * f;
    for (int i = 0; i < 17; ++i) {
      frame.positions.push_back(
          {rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(0, 5)});
    }
    trajectory.add_frame(std::move(frame));
  }
  const auto path =
      (std::filesystem::temp_directory_path() / "entk_traj_test.dat")
          .string();
  ASSERT_TRUE(trajectory.save(path).is_ok());
  auto loaded = Trajectory::load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  for (std::size_t f = 0; f < 3; ++f) {
    const Frame& a = trajectory.frame(f);
    const Frame& b = loaded.value().frame(f);
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_NEAR(a.potential_energy, b.potential_energy, 1e-9);
    ASSERT_EQ(a.positions.size(), b.positions.size());
    for (std::size_t i = 0; i < a.positions.size(); ++i) {
      EXPECT_NEAR(a.positions[i].x, b.positions[i].x, 1e-9);
    }
  }
  std::filesystem::remove(path);
}

TEST(Trajectory, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_EQ(Trajectory::load("/nonexistent/file.dat").status().code(),
            Errc::kIoError);
  const auto path =
      (std::filesystem::temp_directory_path() / "entk_corrupt.dat").string();
  {
    std::ofstream out(path);
    out << "2\n0.0 0.0 0.0 5\n1 2 3\n";  // truncated payload
  }
  EXPECT_EQ(Trajectory::load(path).status().code(), Errc::kIoError);
  std::filesystem::remove(path);
}

TEST(Trajectory, RmsdProperties) {
  Frame a;
  Frame b;
  Xoshiro256 rng(67);
  for (int i = 0; i < 10; ++i) {
    const Vec3 p{rng.uniform(0, 3), rng.uniform(0, 3), rng.uniform(0, 3)};
    a.positions.push_back(p);
    b.positions.push_back(p + Vec3{5.0, -2.0, 1.0});  // rigid translation
  }
  EXPECT_NEAR(Trajectory::rmsd(a, a), 0.0, 1e-12);
  // Centroid removal makes rmsd translation invariant.
  EXPECT_NEAR(Trajectory::rmsd(a, b), 0.0, 1e-12);
  b.positions[0] += Vec3{1.0, 0.0, 0.0};
  EXPECT_GT(Trajectory::rmsd(a, b), 0.0);
}

}  // namespace
}  // namespace entk::md
