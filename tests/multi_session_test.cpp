// Concurrent sessions over one shared backend.
//
// The Session/Runtime split promises that N workloads sharing one
// process (one PilotManager, one engine) behave exactly as if each ran
// alone: same schedules, isolated failures, independent lifecycles.
// These tests pin the four corners of that claim:
//
//  - Determinism: with private same-size pilots and zero global-clock
//    overheads, a session's trace digest under run_concurrent is
//    bit-identical to the same-seed solo run (uids AND timestamps).
//  - Failure isolation: one session's fail_fast abort leaves the
//    other session's run converging untouched.
//  - Checkpoint/resume: one session is captured and later resumed
//    while another session runs concurrently on the same backend both
//    times, and the resumed trace still matches the solo baseline.
//  - Teardown under load: destroying a session with a run in flight
//    drains through its UnitManager (no callback races) and leaves
//    the surviving session able to finish.
//  - Dynamic lifecycle: adding a session or cancelling a run between
//    engine steps of a live drive leaves the other sessions' traces
//    bit-identical to their solo baselines (the contract entk-serve
//    leans on when tenants come and go mid-flight).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/coordinator.hpp"
#include "ckpt/snapshot.hpp"
#include "common/uid.hpp"
#include "core/entk.hpp"
#include "core/parallel_runtime.hpp"
#include "scale_test_util.hpp"

namespace entk::core {
namespace {

constexpr Count kUnits = 2000;

/// The scale machine with instant pilot bootstrap: session B's
/// allocate() must not advance the shared clock past the point where
/// session A's solo run would start, or the timestamp comparison
/// against solo baselines breaks for a reason that has nothing to do
/// with scheduling.
sim::MachineProfile multi_machine() {
  sim::MachineProfile p = scale_test::scale_machine();
  p.name = "test.multi";
  p.pilot_bootstrap = 0.0;
  return p;
}

/// Half the machine per session, and no toolkit overheads charged to
/// the shared clock (init/allocate/per-task advances would shift one
/// session's timeline by the other's bookkeeping).
ResourceOptions session_options() {
  ResourceOptions options;
  options.cores = 1024;
  options.runtime = 4.0e6;
  options.scheduler_policy = "backfill";
  options.init_overhead = 0.0;
  options.allocate_overhead = 0.0;
  options.deallocate_overhead = 0.0;
  options.per_task_overhead = 0.0;
  return options;
}

std::shared_ptr<Session> make_session(Runtime& runtime,
                                      const std::string& name) {
  auto session = runtime.create_session({name, session_options()});
  EXPECT_TRUE(session.ok()) << session.status().to_string();
  EXPECT_TRUE(session.value()->allocate().is_ok());
  return session.take();
}

/// Same-seed solo baseline: the named session alone on a fresh
/// backend.
std::uint64_t solo_digest(const std::string& name) {
  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(multi_machine());
  Runtime runtime(backend, registry);
  auto session = make_session(runtime, name);
  BagOfTasks pattern = scale_test::scale_workload(kUnits);
  auto report = session->run(pattern);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  if (!report.ok()) return 0;
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(report.value().session, name);
  return scale_test::trace_digest(report.value().units);
}

TEST(MultiSession, ConcurrentTracesMatchSoloRunsBitIdentical) {
  const std::uint64_t solo_alpha = solo_digest("alpha");
  const std::uint64_t solo_beta = solo_digest("beta");
  ASSERT_NE(solo_alpha, 0u);
  ASSERT_NE(solo_beta, 0u);
  // Same workload, different uid family: the digests must differ, or
  // the equality checks below would pass vacuously.
  ASSERT_NE(solo_alpha, solo_beta);

  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(multi_machine());
  Runtime runtime(backend, registry);
  auto alpha = make_session(runtime, "alpha");
  auto beta = make_session(runtime, "beta");
  BagOfTasks pattern_a = scale_test::scale_workload(kUnits);
  BagOfTasks pattern_b = scale_test::scale_workload(kUnits);
  auto reports = runtime.run_concurrent(
      {{alpha, &pattern_a}, {beta, &pattern_b}});
  ASSERT_TRUE(reports.ok()) << reports.status().to_string();
  ASSERT_EQ(reports.value().size(), 2u);
  for (const auto& report : reports.value()) {
    EXPECT_TRUE(report.outcome.is_ok()) << report.outcome.to_string();
    EXPECT_EQ(report.units.size(), static_cast<std::size_t>(kUnits));
  }
  EXPECT_EQ(reports.value()[0].session, "alpha");
  EXPECT_EQ(reports.value()[1].session, "beta");
  EXPECT_EQ(scale_test::trace_digest(reports.value()[0].units),
            solo_alpha);
  EXPECT_EQ(scale_test::trace_digest(reports.value()[1].units),
            solo_beta);
}

TEST(MultiSession, ParallelAdvancementMatchesSoloRunsBitIdentical) {
  // Same contract as above, with the work-stealing pool advancing the
  // two sessions' executors as parallel tasks between engine steps
  // (Runtime::run_concurrent's deferred-pumping path). Parallelism
  // must change WHEN graph bookkeeping happens on the host, never
  // WHAT gets scheduled on the simulated clock.
  const std::uint64_t solo_alpha = solo_digest("alpha");
  const std::uint64_t solo_beta = solo_digest("beta");
  ASSERT_NE(solo_alpha, 0u);
  ASSERT_NE(solo_beta, 0u);

  struct PoolReset {
    ~PoolReset() { set_parallel_threads(0); }
  } reset_on_exit;
  set_parallel_threads(4);
  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(multi_machine());
  Runtime runtime(backend, registry);
  auto alpha = make_session(runtime, "alpha");
  auto beta = make_session(runtime, "beta");
  BagOfTasks pattern_a = scale_test::scale_workload(kUnits);
  BagOfTasks pattern_b = scale_test::scale_workload(kUnits);
  auto reports = runtime.run_concurrent(
      {{alpha, &pattern_a}, {beta, &pattern_b}});
  ASSERT_TRUE(reports.ok()) << reports.status().to_string();
  ASSERT_EQ(reports.value().size(), 2u);
  for (const auto& report : reports.value()) {
    EXPECT_TRUE(report.outcome.is_ok()) << report.outcome.to_string();
    EXPECT_EQ(report.units.size(), static_cast<std::size_t>(kUnits));
  }
  EXPECT_EQ(scale_test::trace_digest(reports.value()[0].units),
            solo_alpha);
  EXPECT_EQ(scale_test::trace_digest(reports.value()[1].units),
            solo_beta);
}

TEST(MultiSession, FailFastAbortLeavesTheOtherSessionConverging) {
  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(multi_machine());
  Runtime runtime(backend, registry);
  auto flaky = make_session(runtime, "flaky");
  auto steady = make_session(runtime, "steady");

  // One permanently failing task (no retry budget) under fail_fast.
  BagOfTasks failing(64, [](const StageContext& context) {
    TaskSpec spec = scale_test::scale_task(context);
    spec.inject_failure = context.instance == 1;
    return spec;
  });
  failing.set_failure_rules({FailurePolicy::kFailFast, 1.0});
  BagOfTasks healthy = scale_test::scale_workload(kUnits);

  auto reports = runtime.run_concurrent(
      {{flaky, &failing}, {steady, &healthy}});
  ASSERT_TRUE(reports.ok()) << reports.status().to_string();
  ASSERT_EQ(reports.value().size(), 2u);
  EXPECT_FALSE(reports.value()[0].outcome.is_ok())
      << "the injected failure must fail the fail_fast session";
  EXPECT_EQ(reports.value()[0].units_failed, 1u);
  EXPECT_TRUE(reports.value()[1].outcome.is_ok())
      << reports.value()[1].outcome.to_string();
  EXPECT_EQ(reports.value()[1].units_done,
            static_cast<std::size_t>(kUnits))
      << "the healthy session must converge despite the abort next door";
}

TEST(MultiSession, CheckpointResumeOfOneSessionWhileAnotherRuns) {
  const std::uint64_t baseline = solo_digest("alpha");
  ASSERT_NE(baseline, 0u);

  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "multi_ckpt")
          .string();
  std::filesystem::remove_all(dir);

  // Crash run: alpha is checkpointed (and killed after one snapshot)
  // while beta runs concurrently on the same backend.
  ckpt::Snapshot snapshot;
  {
    reset_uid_counters_for_testing();
    auto registry = kernels::KernelRegistry::with_builtin_kernels();
    pilot::SimBackend backend(multi_machine());
    Runtime runtime(backend, registry);
    auto alpha = make_session(runtime, "alpha");
    auto beta = make_session(runtime, "beta");
    ckpt::Coordinator::Options options;
    options.directory = dir;
    options.policy.every_settled = 500;
    options.crash_after_snapshots = 1;
    ckpt::Coordinator coordinator(backend, *alpha, std::move(options));
    BagOfTasks pattern_a = scale_test::scale_workload(kUnits);
    BagOfTasks pattern_b = scale_test::scale_workload(kUnits);
    coordinator.set_identity(pattern_a.name(), "");
    pattern_a.set_graph_run_observer(&coordinator);
    auto reports = runtime.run_concurrent(
        {{alpha, &pattern_a}, {beta, &pattern_b}});
    ASSERT_FALSE(reports.ok())
        << "the simulated crash must abort the shared drive";
    EXPECT_TRUE(ckpt::Coordinator::is_checkpoint_stop(reports.status()))
        << reports.status().to_string();
    ASSERT_EQ(coordinator.snapshots_written(), 1u);
    auto read = ckpt::read_snapshot_file(coordinator.last_snapshot_path());
    ASSERT_TRUE(read.ok()) << read.status().to_string();
    snapshot = read.take();
  }
  EXPECT_EQ(snapshot.session, "alpha");
  ASSERT_FALSE(snapshot.units.empty());
  for (const auto& [family, next] : snapshot.uid_counters) {
    EXPECT_EQ(family.rfind("alpha.", 0), 0u)
        << "a named session's snapshot must not capture foreign uid "
           "families (found " << family << ")";
  }

  // Resume run: alpha is restored from the snapshot and finishes while
  // a fresh beta runs concurrently. Allocation happens before the
  // restore so nothing drives the engine between the restore and the
  // shared wait.
  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(multi_machine());
  Runtime runtime(backend, registry);
  auto beta = make_session(runtime, "beta");
  auto alpha = make_session(runtime, "alpha");
  ckpt::Coordinator::Options options;
  options.directory = dir;
  ckpt::Coordinator coordinator(backend, *alpha, std::move(options));
  BagOfTasks pattern_a = scale_test::scale_workload(kUnits);
  BagOfTasks pattern_b = scale_test::scale_workload(kUnits);
  coordinator.set_identity(pattern_a.name(), "");
  const Status restored = coordinator.restore_runtime(snapshot);
  ASSERT_TRUE(restored.is_ok()) << restored.to_string();
  pattern_a.set_graph_run_observer(&coordinator);
  auto reports = runtime.run_concurrent(
      {{alpha, &pattern_a}, {beta, &pattern_b}});
  ASSERT_TRUE(reports.ok()) << reports.status().to_string();
  ASSERT_EQ(reports.value().size(), 2u);
  EXPECT_TRUE(reports.value()[0].outcome.is_ok())
      << reports.value()[0].outcome.to_string();
  EXPECT_TRUE(reports.value()[1].outcome.is_ok())
      << reports.value()[1].outcome.to_string();
  ASSERT_EQ(reports.value()[0].units.size(),
            static_cast<std::size_t>(kUnits));
  EXPECT_EQ(scale_test::trace_digest(reports.value()[0].units), baseline)
      << "the resumed session must replay the solo schedule exactly";
  EXPECT_EQ(reports.value()[1].units.size(),
            static_cast<std::size_t>(kUnits));
}

TEST(MultiSession, DestroyingASessionMidRunLeavesTheOtherAlive) {
  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(multi_machine());
  Runtime runtime(backend, registry);
  auto doomed = make_session(runtime, "doomed");
  auto survivor = make_session(runtime, "survivor");

  BagOfTasks pattern_d = scale_test::scale_workload(kUnits);
  BagOfTasks pattern_s = scale_test::scale_workload(kUnits);
  ASSERT_TRUE(doomed->start_run(pattern_d).is_ok());
  ASSERT_TRUE(survivor->start_run(pattern_s).is_ok());

  // Drive until the doomed session is visibly mid-flight, then drop it
  // with its run active: the destructor must cancel the run and drain
  // its unit manager instead of racing the agents' callbacks.
  std::size_t settled = 0;
  doomed->unit_manager()->add_settled_observer(
      [&settled](const pilot::ComputeUnitPtr&, pilot::UnitState) {
        ++settled;
      });
  const Status driven =
      backend.drive_until([&settled] { return settled >= 32; }, 4.0e6);
  ASSERT_TRUE(driven.is_ok()) << driven.to_string();
  ASSERT_FALSE(doomed->run_finished());
  doomed.reset();
  EXPECT_EQ(runtime.find_session("doomed"), nullptr);

  const Status rest = backend.drive_until(
      [&survivor] { return survivor->run_finished(); }, 4.0e6);
  ASSERT_TRUE(rest.is_ok()) << rest.to_string();
  auto report = survivor->finish_run(Status::ok());
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(report.value().units_done, static_cast<std::size_t>(kUnits));
  EXPECT_TRUE(survivor->deallocate().is_ok());
}

TEST(MultiSession, AddingASessionMidDriveLeavesRunningTracesUntouched) {
  const std::uint64_t baseline = solo_digest("alpha");
  ASSERT_NE(baseline, 0u);

  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(multi_machine());
  Runtime runtime(backend, registry);
  auto alpha = make_session(runtime, "alpha");
  BagOfTasks pattern_a = scale_test::scale_workload(kUnits);
  ASSERT_TRUE(alpha->start_run(pattern_a).is_ok());

  // Drive alpha visibly mid-flight, then bring up a brand-new session
  // between engine steps — allocation, pattern start and all — the way
  // entk-serve admits a tenant while others are running.
  std::size_t settled = 0;
  alpha->unit_manager()->add_settled_observer(
      [&settled](const pilot::ComputeUnitPtr&, pilot::UnitState) {
        ++settled;
      });
  const Status driven =
      backend.drive_until([&settled] { return settled >= 32; }, 4.0e6);
  ASSERT_TRUE(driven.is_ok()) << driven.to_string();
  ASSERT_FALSE(alpha->run_finished());

  auto late = make_session(runtime, "late");
  BagOfTasks pattern_l = scale_test::scale_workload(256);
  ASSERT_TRUE(late->start_run(pattern_l).is_ok());

  const Status rest = backend.drive_until(
      [&alpha, &late] {
        return alpha->run_finished() && late->run_finished();
      },
      4.0e6);
  ASSERT_TRUE(rest.is_ok()) << rest.to_string();

  auto late_report = late->finish_run(Status::ok());
  ASSERT_TRUE(late_report.ok()) << late_report.status().to_string();
  EXPECT_TRUE(late_report.value().outcome.is_ok())
      << late_report.value().outcome.to_string();
  EXPECT_EQ(late_report.value().units_done, 256u);

  auto report = alpha->finish_run(Status::ok());
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  ASSERT_EQ(report.value().units.size(), static_cast<std::size_t>(kUnits));
  EXPECT_EQ(scale_test::trace_digest(report.value().units), baseline)
      << "admitting a session mid-drive must not perturb a running "
         "session's schedule";
}

TEST(MultiSession, CancellingARunMidDriveLeavesTheOtherTraceUntouched) {
  const std::uint64_t baseline = solo_digest("alpha");
  ASSERT_NE(baseline, 0u);

  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(multi_machine());
  Runtime runtime(backend, registry);
  auto alpha = make_session(runtime, "alpha");
  auto victim = make_session(runtime, "victim");
  BagOfTasks pattern_a = scale_test::scale_workload(kUnits);
  BagOfTasks pattern_v = scale_test::scale_workload(kUnits);
  ASSERT_TRUE(alpha->start_run(pattern_a).is_ok());
  ASSERT_TRUE(victim->start_run(pattern_v).is_ok());

  // Cancel the victim once it is visibly mid-flight (units settling),
  // exactly between two engine steps — the point entk-serve's drive
  // loop issues CANCELs from.
  std::size_t settled = 0;
  victim->unit_manager()->add_settled_observer(
      [&settled](const pilot::ComputeUnitPtr&, pilot::UnitState) {
        ++settled;
      });
  const Status driven =
      backend.drive_until([&settled] { return settled >= 32; }, 4.0e6);
  ASSERT_TRUE(driven.is_ok()) << driven.to_string();
  ASSERT_FALSE(victim->run_finished());
  ASSERT_TRUE(victim->cancel_run().is_ok());

  const Status settled_victim = backend.drive_until(
      [&victim] { return victim->run_finished(); }, 4.0e6);
  ASSERT_TRUE(settled_victim.is_ok()) << settled_victim.to_string();
  auto victim_report = victim->finish_run(Status::ok());
  ASSERT_TRUE(victim_report.ok()) << victim_report.status().to_string();
  EXPECT_FALSE(victim_report.value().outcome.is_ok())
      << "a cancelled run must settle with a non-ok outcome";
  EXPECT_LT(victim_report.value().units_done,
            static_cast<std::size_t>(kUnits));

  const Status rest = backend.drive_until(
      [&alpha] { return alpha->run_finished(); }, 4.0e6);
  ASSERT_TRUE(rest.is_ok()) << rest.to_string();
  auto report = alpha->finish_run(Status::ok());
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  ASSERT_EQ(report.value().units.size(), static_cast<std::size_t>(kUnits));
  EXPECT_EQ(scale_test::trace_digest(report.value().units), baseline)
      << "cancelling a neighbour mid-drive must not perturb a running "
         "session's schedule";
}

}  // namespace
}  // namespace entk::core
