// Tests for the observability subsystem (src/obs): recorder
// semantics, metrics registry, Chrome trace-event export, and the
// trace-derived TTC decomposition cross-checked against the post-hoc
// profile on a deterministic sim run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "core/entk.hpp"
#include "core/trace_overheads.hpp"
#include "core/workload_file.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace entk {
namespace {

// ------------------------------------------------------------ recorder

/// Fresh-recorder fixture: the recorder is a process-wide singleton,
/// so every test starts from a cleared, disabled state and leaves it
/// that way.
class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::instance().set_enabled(false);
    obs::TraceRecorder::instance().clear();
  }
  void TearDown() override {
    obs::TraceRecorder::instance().set_enabled(false);
    obs::TraceRecorder::instance().clear();
  }
};

TEST_F(TraceRecorderTest, DisabledRecorderKeepsNothing) {
  auto& recorder = obs::TraceRecorder::instance();
  ASSERT_FALSE(recorder.enabled());
  recorder.record("noop", "test", obs::TraceKind::kInstant);
  EXPECT_EQ(recorder.stats().recorded, 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST_F(TraceRecorderTest, RecordsAndSnapshotsInTimeOrder) {
  auto& recorder = obs::TraceRecorder::instance();
  ManualClock clock;
  obs::ScopedTraceClock scope(clock);
  recorder.set_enabled(true);

  clock.advance_to(1.0);
  recorder.record("first", "test", obs::TraceKind::kSpanBegin);
  clock.advance_to(2.0);
  recorder.record("second", "test", obs::TraceKind::kCounter, 42.0);
  clock.advance_to(3.0);
  recorder.record("third", "test", obs::TraceKind::kSpanEnd);
  recorder.set_enabled(false);

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "first");
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_EQ(events[1].kind, obs::TraceKind::kCounter);
  EXPECT_DOUBLE_EQ(events[1].value, 42.0);
  EXPECT_STREQ(events[2].name, "third");
  const auto stats = recorder.stats();
  EXPECT_EQ(stats.recorded, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.threads, 1u);
}

TEST_F(TraceRecorderTest, RingOverwritesOldestAndCountsDrops) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.set_capacity_per_thread(1);  // rounds up to one slab (4096)
  const std::size_t capacity = recorder.capacity_per_thread();
  recorder.set_enabled(true);
  const std::size_t total = capacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    recorder.record("tick", "test", obs::TraceKind::kInstant,
                    static_cast<double>(i));
  }
  recorder.set_enabled(false);

  const auto stats = recorder.stats();
  EXPECT_EQ(stats.recorded, capacity);
  EXPECT_EQ(stats.dropped, 100u);
  // The survivors are exactly the newest `capacity` events.
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), capacity);
  EXPECT_DOUBLE_EQ(events.front().value, 100.0);
  EXPECT_DOUBLE_EQ(events.back().value, static_cast<double>(total - 1));

  // Restore the default capacity for later tests in this process.
  recorder.set_capacity_per_thread(std::size_t{1} << 16);
}

TEST_F(TraceRecorderTest, ClearDropsEverything) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.set_enabled(true);
  recorder.record("gone", "test", obs::TraceKind::kInstant);
  recorder.clear();
  EXPECT_TRUE(recorder.snapshot().empty());
  recorder.record("kept", "test", obs::TraceKind::kInstant);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "kept");
}

TEST(TraceFlow, IdsAreStableAndNonZero) {
  const auto a = obs::trace_flow_id("unit.0000");
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a, obs::trace_flow_id("unit.0000"));
  EXPECT_NE(a, obs::trace_flow_id("unit.0001"));
  EXPECT_EQ(obs::trace_flow_id(""), obs::trace_flow_id(""));
}

// ------------------------------------------------------------- metrics

TEST(Metrics, WellKnownCountersAreSharedProcessWide) {
  auto& metrics = obs::Metrics::instance();
  auto& counter =
      metrics.counter(obs::WellKnownCounter::kUnitsSubmitted);
  const auto before = counter.get();
  counter.add(3);
  EXPECT_EQ(
      metrics.counter(obs::WellKnownCounter::kUnitsSubmitted).get(),
      before + 3);
}

TEST(Metrics, DynamicMetricsInternByNameToAStableReference) {
  auto& metrics = obs::Metrics::instance();
  auto& first = metrics.counter("test.dynamic.counter");
  const auto before = first.get();
  metrics.counter("test.dynamic.counter").add(7);
  EXPECT_EQ(first.get(), before + 7);
  EXPECT_NE(&first, &metrics.counter("test.dynamic.other"));

  auto& gauge = metrics.gauge("test.dynamic.gauge");
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(metrics.gauge("test.dynamic.gauge").get(), 2.5);
}

TEST(Metrics, HistogramTracksCountSumMeanAndQuantiles) {
  obs::Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  for (int i = 0; i < 100; ++i) histogram.observe(1.0);
  histogram.observe(100.0);
  EXPECT_EQ(histogram.count(), 101u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 200.0);
  EXPECT_NEAR(histogram.mean(), 200.0 / 101.0, 1e-12);
  // Buckets are [2^k, 2^(k+1)) reporting the exclusive upper bound:
  // 1.0 lands in [1, 2), 100.0 in [64, 128).
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 128.0);
}

TEST(Metrics, ExportsListEveryWellKnownName) {
  auto& metrics = obs::Metrics::instance();
  const auto names = metrics.names();
  const std::string text = metrics.to_text();
  const std::string json = metrics.to_json();
  for (const char* expected :
       {"engine.events_dispatched", "scheduler.cycles", "units.submitted",
        "saga.jobs_submitted", "engine.pending_events",
        "unit.execution_seconds", "graph.frontier_batch_size"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected),
              names.end())
        << expected;
    EXPECT_NE(text.find(expected), std::string::npos) << expected;
    EXPECT_NE(json.find('"' + std::string(expected) + '"'),
              std::string::npos)
        << expected;
  }
}

// -------------------------------------------------- chrome trace JSON

/// Minimal recursive-descent JSON validator — enough to prove the
/// exporter emits syntactically-valid JSON without third-party deps.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return at_ == text_.size();
  }

 private:
  bool value() {
    if (at_ >= text_.size()) return false;
    switch (text_[at_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++at_;  // '{'
    skip_ws();
    if (peek() == '}') { ++at_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++at_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++at_; continue; }
      if (peek() == '}') { ++at_; return true; }
      return false;
    }
  }
  bool array() {
    ++at_;  // '['
    skip_ws();
    if (peek() == ']') { ++at_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++at_; continue; }
      if (peek() == ']') { ++at_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++at_;
    while (at_ < text_.size() && text_[at_] != '"') {
      if (text_[at_] == '\\') ++at_;
      ++at_;
    }
    if (at_ >= text_.size()) return false;
    ++at_;
    return true;
  }
  bool number() {
    const std::size_t start = at_;
    if (peek() == '-') ++at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) ||
            text_[at_] == '.' || text_[at_] == 'e' || text_[at_] == 'E' ||
            text_[at_] == '+' || text_[at_] == '-')) {
      ++at_;
    }
    return at_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(at_, n, word) != 0) return false;
    at_ += n;
    return true;
  }
  char peek() const { return at_ < text_.size() ? text_[at_] : '\0'; }
  void skip_ws() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\n' ||
            text_[at_] == '\t' || text_[at_] == '\r')) {
      ++at_;
    }
  }

  const std::string& text_;
  std::size_t at_ = 0;
};

TEST(ChromeTrace, HandBuiltEventsExportValidJson) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent begin;
  begin.name = "unit.exec";
  begin.category = "unit";
  begin.time = 1.5;
  begin.flow_id = obs::trace_flow_id("unit.0001");
  begin.pilot = 1;
  begin.kind = obs::TraceKind::kSpanBegin;
  obs::TraceEvent end = begin;
  end.time = 2.5;
  end.kind = obs::TraceKind::kSpanEnd;
  obs::TraceEvent counter;
  counter.name = "queue \"depth\"\n";  // must be escaped
  counter.category = "engine";
  counter.time = 2.0;
  counter.value = 17.0;
  counter.kind = obs::TraceKind::kCounter;
  events = {begin, counter, end};

  const std::string json = obs::to_chrome_trace(events);
  JsonParser parser(json);
  EXPECT_TRUE(parser.valid()) << json;
  // Async begin/end pairs carry the flow id; the counter its value.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The quotes and newline in the counter's name must arrive escaped.
  EXPECT_NE(json.find("queue \\\"depth\\\"\\n"), std::string::npos);
}

#if ENTK_ENABLE_TRACING

TEST(ChromeTrace, SalExampleWorkloadProducesAValidTrace) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);

  auto spec = core::load_workload(std::string(ENTK_EXAMPLES_DIR) +
                                  "/sal.entk");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto report = core::run_workload(spec.value(), registry);
  recorder.set_enabled(false);
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  const auto events = recorder.snapshot();
  recorder.clear();
  ASSERT_FALSE(events.empty());

  const std::string json = obs::to_chrome_trace(events);
  JsonParser parser(json);
  EXPECT_TRUE(parser.valid());
  // The schema-level invariants the Perfetto/Chrome loaders rely on.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Unit lifecycles appear as flow-tagged async spans.
  EXPECT_NE(json.find("\"unit.exec\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
}

// ---------------------------------------------- trace-derived profile

TEST(TraceReduce, MatchesPostHocProfileOnDeterministicSimRun) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  recorder.set_capacity_per_thread(std::size_t{1} << 18);
  recorder.set_enabled(true);

  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::comet_profile());
  core::ResourceOptions options;
  options.cores = 64;
  options.runtime = 1e6;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  core::SimulationAnalysisLoop pattern(3, 16, 4);
  pattern.set_simulation([](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration",
                  5.0 + 0.25 * static_cast<double>(context.instance));
    return spec;
  });
  pattern.set_analysis([](const core::StageContext&) {
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration", 2.0);
    return spec;
  });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());
  // Core overhead is modelled per-run (init + allocate + deallocate),
  // so the trace only carries all of it once the handle is released.
  ASSERT_TRUE(handle.deallocate().is_ok());
  recorder.set_enabled(false);

  const auto events = recorder.snapshot();
  recorder.clear();
  auto reduced = core::reduce_trace_overheads(events);
  ASSERT_TRUE(reduced.ok()) << reduced.status().to_string();

  const core::OverheadProfile& expected = report.value().overheads;
  const core::OverheadProfile& derived = reduced.value();
  EXPECT_EQ(derived.n_units, expected.n_units);
  EXPECT_NEAR(derived.ttc, expected.ttc, 1e-6);
  EXPECT_NEAR(derived.core_overhead, expected.core_overhead, 1e-6);
  EXPECT_NEAR(derived.pattern_overhead, expected.pattern_overhead, 1e-6);
  EXPECT_NEAR(derived.execution_time, expected.execution_time, 1e-6);
  EXPECT_NEAR(derived.runtime_overhead, expected.runtime_overhead, 1e-6);
  EXPECT_NEAR(derived.pilot_startup, expected.pilot_startup, 1e-6);
  EXPECT_NEAR(derived.total_unit_execution,
              expected.total_unit_execution, 1e-6);
  EXPECT_NEAR(derived.mean_unit_execution, expected.mean_unit_execution,
              1e-6);
}

TEST(TraceReduce, FailsWithoutARunSpan) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent counter;
  counter.name = "overhead.core";
  counter.category = "core";
  counter.value = 2.9;
  counter.kind = obs::TraceKind::kCounter;
  events.push_back(counter);
  auto reduced = core::reduce_trace_overheads(events);
  EXPECT_FALSE(reduced.ok());
}

#endif  // ENTK_ENABLE_TRACING

}  // namespace
}  // namespace entk
