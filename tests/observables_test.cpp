// Tests of the MD observables and their integration with the
// strategy-resolved workload front end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/workload_file.hpp"
#include "md/builder.hpp"
#include "md/integrator.hpp"
#include "md/observables.hpp"

namespace entk::md {
namespace {

TEST(Observables, RadiusOfGyrationKnownConfigurations) {
  // Two particles distance d apart: Rg = d/2.
  std::vector<Vec3> pair{{0, 0, 0}, {4, 0, 0}};
  EXPECT_DOUBLE_EQ(radius_of_gyration(pair), 2.0);
  // Four corners of a square with side 2: Rg = sqrt(2).
  std::vector<Vec3> square{{1, 1, 0}, {1, -1, 0}, {-1, 1, 0}, {-1, -1, 0}};
  EXPECT_NEAR(radius_of_gyration(square), std::sqrt(2.0), 1e-12);
  // Subranges work.
  EXPECT_DOUBLE_EQ(radius_of_gyration(square, 0, 1), 0.0);
}

TEST(Observables, EndToEndDistance) {
  std::vector<Vec3> positions{{0, 0, 0}, {1, 2, 2}};
  EXPECT_DOUBLE_EQ(end_to_end_distance(positions, 0, 1), 3.0);
  EXPECT_DOUBLE_EQ(end_to_end_distance(positions, 1, 1), 0.0);
}

TEST(Observables, DihedralAngleKnownGeometries) {
  // cis (phi = 0): all four atoms in a plane, d on the same side as a.
  const Vec3 a{-1, 1, 0}, b{0, 0, 0}, c{1, 0, 0};
  EXPECT_NEAR(dihedral_angle(a, b, c, {2, 1, 0}), 0.0, 1e-12);
  // trans (phi = pi): d on the opposite side.
  EXPECT_NEAR(std::fabs(dihedral_angle(a, b, c, {2, -1, 0})), M_PI,
              1e-12);
  // +90 degrees out of plane.
  EXPECT_NEAR(std::fabs(dihedral_angle(a, b, c, {2, 0, 1})), M_PI / 2.0,
              1e-12);
}

TEST(Observables, DihedralMatchesForceFieldConvention) {
  // The observable and the force field must agree on the angle so FES
  // plots line up with the potential's minima.
  System sys(4, 100.0);
  sys.positions[0] = {50, 50, 50};
  sys.positions[1] = {51.5, 50.3, 49.85};
  sys.positions[2] = {52.25, 51.5, 50.45};
  sys.positions[3] = {53.6, 51.8, 51.65};
  const double phi =
      dihedral_angle(sys.positions[0], sys.positions[1], sys.positions[2],
                     sys.positions[3]);
  // Energy of a torsion with phi0 = measured phi and n = 1 must sit at
  // its minimum (U = k(1 + cos(phi - phi0 - pi)) = 0 at phi = phi0+pi);
  // easier: U = k(1 + cos(1*phi - phi0)) minimised when phi - phi0 = pi.
  sys.dihedrals.push_back({0, 1, 2, 3, 3.0, 1, phi + M_PI});
  const ForceField forcefield;
  EXPECT_NEAR(forcefield.energy(sys), 0.0, 1e-9);
}

TEST(Observables, MsdGrowsForDiffusingFluid) {
  System sys = build_fluid(64, 0.3);
  Xoshiro256 rng(101);
  sys.thermalize_velocities(1.0, rng);
  const ForceField forcefield;
  forcefield.compute(sys);
  const LangevinIntegrator integrator(0.005, 1.0, 1.0);
  Trajectory trajectory;
  for (int step = 0; step < 400; ++step) {
    integrator.step(sys, forcefield, rng);
    if (step % 20 == 0) {
      Frame frame;
      frame.time = step * 0.005;
      frame.positions = sys.positions;  // unwrapped (no wrap calls)
      trajectory.add_frame(std::move(frame));
    }
  }
  auto msd = mean_squared_displacement(trajectory);
  ASSERT_TRUE(msd.ok());
  ASSERT_GE(msd.value().size(), 10u);
  // Diffusive: MSD increases with lag (allow small non-monotonic noise
  // by comparing first and last).
  EXPECT_GT(msd.value().back(), msd.value().front());
  EXPECT_GT(msd.value().front(), 0.0);
}

TEST(Observables, MsdValidation) {
  Trajectory empty;
  EXPECT_EQ(mean_squared_displacement(empty).status().code(),
            Errc::kInvalidArgument);
}

TEST(Observables, SeriesHelper) {
  Trajectory trajectory;
  for (int f = 0; f < 3; ++f) {
    Frame frame;
    frame.positions = {{0, 0, 0}, {2.0 + f, 0, 0}};
    trajectory.add_frame(std::move(frame));
  }
  const auto series =
      observable_series(trajectory, [](const Frame& frame) {
        return end_to_end_distance(frame.positions, 0, 1);
      });
  EXPECT_EQ(series, (std::vector<double>{2.0, 3.0, 4.0}));
}

}  // namespace
}  // namespace entk::md

namespace entk::core {
namespace {

TEST(ResolveWorkload, AutoPicksMachineAndCores) {
  auto spec = parse_workload(
      "backend = sim\nmachine = auto\ncores = auto\npattern = bag\n"
      "tasks = 128\n[task]\nkernel = md.simulate\nsteps = 300\n"
      "n_particles = 2881\n");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_TRUE(spec.value().auto_cores);
  EXPECT_TRUE(spec.value().auto_machine);
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto resolved = resolve_workload(spec.value(), registry);
  ASSERT_TRUE(resolved.ok()) << resolved.status().to_string();
  EXPECT_FALSE(resolved.value().auto_cores);
  EXPECT_GE(resolved.value().cores, 1);
  EXPECT_LE(resolved.value().cores, 128);
  // The strategy picks one of the paper's machines.
  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  EXPECT_TRUE(catalog.contains(resolved.value().machine));
}

TEST(ResolveWorkload, AutoRequiresSimBackend) {
  auto spec = parse_workload(
      "backend = local\ncores = auto\npattern = bag\ntasks = 4\n"
      "[task]\nkernel = misc.sleep\n");
  EXPECT_EQ(spec.status().code(), Errc::kInvalidArgument);
}

TEST(ResolveWorkload, NoAutoIsIdentity) {
  auto spec = parse_workload(
      "backend = sim\ncores = 16\npattern = bag\ntasks = 4\n"
      "[task]\nkernel = misc.sleep\n");
  ASSERT_TRUE(spec.ok());
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto resolved = resolve_workload(spec.value(), registry);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().cores, 16);
  EXPECT_EQ(resolved.value().machine, spec.value().machine);
}

TEST(RunWorkload, AutoEndToEnd) {
  auto spec = parse_workload(
      "backend = sim\ncores = auto\nmachine = xsede.stampede\n"
      "pattern = bag\ntasks = 64\n[task]\nkernel = md.simulate\n"
      "steps = 300\nn_particles = 2881\nout = t{instance}.dat\n");
  ASSERT_TRUE(spec.ok());
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto report = run_workload(spec.value(), registry);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok());
  EXPECT_EQ(report.value().units.size(), 64u);
}

}  // namespace
}  // namespace entk::core
