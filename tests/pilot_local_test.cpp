// Integration tests of the local backend: real payload execution,
// real staging, and the full EnTK stack running genuine work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>

#include "core/entk.hpp"
#include "pilot/local_agent.hpp"
#include "pilot/local_backend.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/scheduler.hpp"
#include "pilot/stager.hpp"
#include "pilot/unit_manager.hpp"

namespace entk::pilot {
namespace {

namespace fs = std::filesystem;

UnitDescription payload_unit(UnitPayload payload, Count cores = 1) {
  UnitDescription description;
  description.name = "local.unit";
  description.executable = "inproc";
  description.cores = cores;
  description.uses_mpi = cores > 1;
  description.payload = std::move(payload);
  return description;
}

TEST(Stager, CopiesLinksAndMoves) {
  const fs::path root = fs::temp_directory_path() / "entk-stager-test";
  fs::remove_all(root);
  fs::create_directories(root / "from");
  fs::create_directories(root / "to");
  {
    std::ofstream f(root / "from" / "a.txt");
    f << "alpha";
  }
  {
    std::ofstream f(root / "from" / "b.txt");
    f << "beta";
  }
  {
    std::ofstream f(root / "from" / "c.txt");
    f << "gamma";
  }
  std::vector<StagingDirective> directives;
  directives.push_back({"a.txt", "", StagingDirective::Action::kCopy, 0});
  directives.push_back(
      {"b.txt", "renamed/b2.txt", StagingDirective::Action::kLink, 0});
  directives.push_back({"c.txt", "", StagingDirective::Action::kMove, 0});
  ASSERT_TRUE(
      execute_staging(directives, root / "from", root / "to").is_ok());
  EXPECT_TRUE(fs::exists(root / "to" / "a.txt"));
  EXPECT_TRUE(fs::exists(root / "from" / "a.txt"));  // copy keeps source
  EXPECT_TRUE(fs::exists(root / "to" / "renamed" / "b2.txt"));
  EXPECT_TRUE(fs::exists(root / "to" / "c.txt"));
  EXPECT_FALSE(fs::exists(root / "from" / "c.txt"));  // move removes it

  // Missing source is an error.
  std::vector<StagingDirective> missing;
  missing.push_back({"ghost.txt", "", StagingDirective::Action::kCopy, 0});
  EXPECT_EQ(execute_staging(missing, root / "from", root / "to").code(),
            Errc::kIoError);
  fs::remove_all(root);
}

TEST(Stager, SimDelayModel) {
  const auto machine = sim::comet_profile();
  std::vector<StagingDirective> directives;
  directives.push_back({"x", "", StagingDirective::Action::kCopy, 500.0});
  directives.push_back({"y", "", StagingDirective::Action::kCopy, 0.0});
  const Duration delay = staging_delay(machine, directives);
  EXPECT_NEAR(delay,
              2 * machine.staging_latency +
                  500.0 / machine.staging_bandwidth_mb_per_s,
              1e-12);
  EXPECT_DOUBLE_EQ(staging_delay(machine, {}), 0.0);
}

class LocalBackendTest : public ::testing::Test {
 protected:
  LocalBackendTest() : backend_(4) {}

  PilotPtr make_active_pilot(Count cores) {
    PilotDescription description;
    description.resource = "localhost";
    description.cores = cores;
    description.runtime = 3600.0;
    auto pilot = manager_.submit_pilot(description);
    EXPECT_TRUE(pilot.ok()) << pilot.status().to_string();
    EXPECT_TRUE(manager_.wait_active(pilot.value()).is_ok());
    return pilot.take();
  }

  LocalBackend backend_;
  PilotManager manager_{backend_};
};

TEST_F(LocalBackendTest, PayloadsReallyExecute) {
  auto pilot = make_active_pilot(4);
  UnitManager units(backend_);
  units.add_pilot(pilot);
  std::atomic<int> executed{0};
  std::vector<UnitDescription> descriptions;
  for (int i = 0; i < 10; ++i) {
    descriptions.push_back(payload_unit(
        [&executed](const UnitRuntimeContext& context) -> Status {
          executed.fetch_add(1);
          std::ofstream marker(context.sandbox / "ran.txt");
          marker << "yes";
          return Status::ok();
        }));
  }
  auto submitted = units.submit_units(std::move(descriptions));
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(units.wait_units(submitted.value(), 30.0).is_ok());
  EXPECT_EQ(executed.load(), 10);
  for (const auto& unit : submitted.value()) {
    EXPECT_EQ(unit->state(), UnitState::kDone);
    EXPECT_GT(unit->execution_time(), 0.0);
  }
}

TEST_F(LocalBackendTest, StagingMovesDataBetweenUnits) {
  auto pilot = make_active_pilot(2);
  UnitManager units(backend_);
  units.add_pilot(pilot);

  // Producer: writes a file, stages it out to the shared space.
  auto producer = payload_unit(
      [](const UnitRuntimeContext& context) -> Status {
        std::ofstream out(context.sandbox / "data.txt");
        out << "42 bytes of very important science data here";
        return Status::ok();
      });
  producer.output_staging.push_back(
      {"data.txt", "", StagingDirective::Action::kCopy, 0.001});
  auto produced = units.submit_units({std::move(producer)});
  ASSERT_TRUE(produced.ok());
  ASSERT_TRUE(units.wait_units(produced.value(), 30.0).is_ok());
  ASSERT_EQ(produced.value()[0]->state(), UnitState::kDone);

  // Consumer: stages it in and reads it.
  std::string consumed_content;
  auto consumer = payload_unit(
      [&consumed_content](const UnitRuntimeContext& context) -> Status {
        std::ifstream in(context.sandbox / "data.txt");
        if (!in) return make_error(Errc::kIoError, "input not staged");
        std::getline(in, consumed_content);
        return Status::ok();
      });
  consumer.input_staging.push_back(
      {"data.txt", "", StagingDirective::Action::kCopy, 0.001});
  auto consumed = units.submit_units({std::move(consumer)});
  ASSERT_TRUE(consumed.ok());
  ASSERT_TRUE(units.wait_units(consumed.value(), 30.0).is_ok());
  EXPECT_EQ(consumed.value()[0]->state(), UnitState::kDone);
  EXPECT_EQ(consumed_content,
            "42 bytes of very important science data here");
}

TEST_F(LocalBackendTest, MissingInputStagingFailsTheUnit) {
  auto pilot = make_active_pilot(2);
  UnitManager units(backend_);
  units.add_pilot(pilot);
  auto description = payload_unit(
      [](const UnitRuntimeContext&) -> Status { return Status::ok(); });
  description.input_staging.push_back(
      {"not-there.bin", "", StagingDirective::Action::kCopy, 0.0});
  auto submitted = units.submit_units({std::move(description)});
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(units.wait_units(submitted.value(), 30.0).is_ok());
  EXPECT_EQ(submitted.value()[0]->state(), UnitState::kFailed);
  EXPECT_EQ(submitted.value()[0]->final_status().code(), Errc::kIoError);
}

TEST_F(LocalBackendTest, FailingPayloadRetriesThenSucceeds) {
  auto pilot = make_active_pilot(2);
  UnitManager units(backend_);
  units.add_pilot(pilot);
  std::atomic<int> attempts{0};
  auto description = payload_unit(
      [&attempts](const UnitRuntimeContext&) -> Status {
        if (attempts.fetch_add(1) == 0) {
          return make_error(Errc::kExecutionFailed, "flaky first run");
        }
        return Status::ok();
      });
  description.retry.max_retries = 2;
  auto submitted = units.submit_units({std::move(description)});
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(units.wait_units(submitted.value(), 30.0).is_ok());
  EXPECT_EQ(submitted.value()[0]->state(), UnitState::kDone);
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(submitted.value()[0]->retries(), 1);
}

TEST_F(LocalBackendTest, MpiUnitsSeeTheirCoreCount) {
  auto pilot = make_active_pilot(4);
  UnitManager units(backend_);
  units.add_pilot(pilot);
  std::atomic<Count> seen{0};
  auto description = payload_unit(
      [&seen](const UnitRuntimeContext& context) -> Status {
        seen = context.cores;
        return Status::ok();
      },
      /*cores=*/4);
  auto submitted = units.submit_units({std::move(description)});
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(units.wait_units(submitted.value(), 30.0).is_ok());
  EXPECT_EQ(seen.load(), 4);
}

// Full stack on the local backend: the paper's character-count
// validation application, really executed.
TEST(LocalEndToEnd, CharacterCountApplication) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  LocalBackend backend(4);
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  core::EnsembleOfPipelines pattern(4, 2);
  pattern.set_stage(1, [](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "misc.mkfile";
    spec.args.set("size_kb", 1.0 + static_cast<double>(context.instance));
    spec.args.set("filename",
                  "file_" + std::to_string(context.instance) + ".txt");
    return spec;
  });
  pattern.set_stage(2, [](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "misc.ccount";
    spec.args.set("input",
                  "file_" + std::to_string(context.instance) + ".txt");
    return spec;
  });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  ASSERT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(report.value().units.size(), 8u);
  EXPECT_GT(report.value().overheads.execution_time, 0.0);
  ASSERT_TRUE(handle.deallocate().is_ok());
}

// The paper's SAL workload, small scale, with real MD + real CoCo.
TEST(LocalEndToEnd, SimulationAnalysisLoopWithRealMd) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  LocalBackend backend(4);
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());

  const int n_sims = 3;
  core::SimulationAnalysisLoop pattern(2, n_sims, 1);
  pattern.set_simulation([](const core::StageContext& context) {
    core::TaskSpec spec;
    spec.kernel = "md.simulate";
    spec.args.set("steps", 40);
    spec.args.set("n_particles", 27);
    spec.args.set("sample_every", 8);
    spec.args.set("seed", 1000 * context.iteration + context.instance);
    spec.args.set("out", "traj_" + std::to_string(context.instance) +
                             ".dat");
    return spec;
  });
  pattern.set_analysis([n_sims](const core::StageContext&) {
    core::TaskSpec spec;
    spec.kernel = "md.coco";
    spec.args.set("n_sims", n_sims);
    spec.args.set("n_new_points", 2);
    return spec;
  });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  ASSERT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(pattern.simulation_units().size(), 6u);
  EXPECT_EQ(pattern.analysis_units().size(), 2u);
  ASSERT_TRUE(handle.deallocate().is_ok());
}

TEST(LocalAgentShutdown, TeardownWhileAUnitFinishesDoesNotAbort) {
  // Regression for the shutdown footgun: a unit settling while the
  // agent tears down re-enters schedule_locked from its worker thread
  // and tries to launch the next waiting unit into a pool that is
  // already stopping. That submission must be refused cleanly (the
  // unit goes back to the backlog) — the old ThreadPool::submit path
  // aborted the whole process on exactly this race.
  const fs::path root =
      fs::temp_directory_path() / "entk-agent-teardown-test";
  fs::remove_all(root);
  WallClock clock;
  auto scheduler = make_scheduler("fifo");
  ASSERT_TRUE(scheduler.ok());
  auto agent = std::make_unique<LocalAgent>(
      sim::comet_profile(), 1, scheduler.take(), clock, root);
  agent->start({});

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  auto blocked = std::make_shared<ComputeUnit>(
      "teardown.u0",
      payload_unit([&entered, &release](const UnitRuntimeContext&)
                       -> Status {
        entered.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        return Status::ok();
      }),
      clock);
  auto follower = std::make_shared<ComputeUnit>(
      "teardown.u1",
      payload_unit(
          [](const UnitRuntimeContext&) -> Status { return Status::ok(); }),
      clock);
  for (const auto& unit : {blocked, follower}) {
    unit->stamp_created();
    ASSERT_TRUE(unit->advance_state(UnitState::kPendingExecution).is_ok());
  }
  // One core: `blocked` launches, `follower` queues behind it.
  ASSERT_TRUE(agent->submit({blocked, follower}).is_ok());
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Tear down while the payload is mid-flight; the destructor blocks
  // joining the worker, so the settle -> reschedule happens with the
  // pool already stopping.
  std::thread closer([&agent] { agent.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true, std::memory_order_release);
  closer.join();
  EXPECT_EQ(blocked->state(), UnitState::kDone);
  // The follower's launch was refused by the stopping pool and the
  // reservation rolled back: still pending, never started, not lost.
  EXPECT_EQ(follower->state(), UnitState::kPendingExecution);
  fs::remove_all(root);
}

}  // namespace
}  // namespace entk::pilot
