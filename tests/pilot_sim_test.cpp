// Integration tests of the pilot runtime on the simulated backend.
#include <gtest/gtest.h>

#include "pilot/agent.hpp"
#include "pilot/pilot_manager.hpp"
#include "pilot/sim_backend.hpp"
#include "pilot/unit_manager.hpp"

namespace entk::pilot {
namespace {

UnitDescription simple_unit(Duration duration, Count cores = 1) {
  UnitDescription description;
  description.name = "test.unit";
  description.executable = "/bin/true";
  description.cores = cores;
  description.uses_mpi = cores > 1;
  description.simulated_duration = duration;
  return description;
}

class SimPilotTest : public ::testing::Test {
 protected:
  SimPilotTest() : backend_(sim::localhost_profile()) {}

  PilotPtr make_active_pilot(Count cores,
                             const std::string& policy = "backfill") {
    PilotManager manager(backend_);
    PilotDescription description;
    description.resource = "localhost";
    description.cores = cores;
    description.runtime = 100000.0;
    auto pilot = manager.submit_pilot(description, policy);
    EXPECT_TRUE(pilot.ok()) << pilot.status().to_string();
    EXPECT_TRUE(manager.wait_active(pilot.value()).is_ok());
    return pilot.take();
  }

  SimBackend backend_;
};

TEST_F(SimPilotTest, PilotGoesActiveAfterQueueAndBootstrap) {
  auto pilot = make_active_pilot(8);
  EXPECT_EQ(pilot->state(), PilotState::kActive);
  EXPECT_GT(pilot->startup_time(), 0.0);
  ASSERT_NE(pilot->agent(), nullptr);
  EXPECT_EQ(pilot->agent()->total_cores(), 8);
  EXPECT_EQ(pilot->agent()->free_cores(), 8);
}

TEST_F(SimPilotTest, UnitsRunThroughTheFullLifecycle) {
  auto pilot = make_active_pilot(4);
  UnitManager manager(backend_);
  manager.add_pilot(pilot);

  auto units = manager.submit_units({simple_unit(5.0), simple_unit(5.0)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  for (const auto& unit : units.value()) {
    EXPECT_EQ(unit->state(), UnitState::kDone);
    EXPECT_NEAR(unit->execution_time(), 5.0, 1e-9);
    EXPECT_GE(unit->submitted_at(), unit->created_at());
    EXPECT_GE(unit->exec_started_at(), unit->submitted_at());
    EXPECT_GE(unit->finished_at(), unit->exec_stopped_at());
  }
}

TEST_F(SimPilotTest, MoreTasksThanCoresExecuteInWaves) {
  // 4 cores, 8 one-second tasks: the pilot must run them in two waves,
  // never exceeding its core count.
  auto pilot = make_active_pilot(4);
  UnitManager manager(backend_);
  manager.add_pilot(pilot);

  std::vector<UnitDescription> descriptions(8, simple_unit(10.0));
  auto units = manager.submit_units(std::move(descriptions));
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());

  // Waves: at most 4 units may overlap at any time.
  std::vector<std::pair<TimePoint, int>> edges;
  for (const auto& unit : units.value()) {
    EXPECT_EQ(unit->state(), UnitState::kDone);
    edges.emplace_back(unit->exec_started_at(), +1);
    edges.emplace_back(unit->exec_stopped_at(), -1);
  }
  std::sort(edges.begin(), edges.end());
  int concurrent = 0;
  int peak = 0;
  for (const auto& [time, delta] : edges) {
    concurrent += delta;
    peak = std::max(peak, concurrent);
  }
  EXPECT_LE(peak, 4);
  EXPECT_GE(peak, 3);  // the backfill scheduler should fill the pilot
}

TEST_F(SimPilotTest, MpiUnitsOccupyMultipleCores) {
  auto pilot = make_active_pilot(8);
  UnitManager manager(backend_);
  manager.add_pilot(pilot);

  auto units = manager.submit_units(
      {simple_unit(4.0, 8), simple_unit(4.0, 8)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  // Both need the whole pilot, so they must serialise.
  const auto& first = units.value()[0];
  const auto& second = units.value()[1];
  EXPECT_EQ(first->state(), UnitState::kDone);
  EXPECT_EQ(second->state(), UnitState::kDone);
  EXPECT_GE(second->exec_started_at(), first->exec_stopped_at());
}

TEST_F(SimPilotTest, OversizedUnitFailsCleanly) {
  auto pilot = make_active_pilot(4);
  UnitManager manager(backend_);
  manager.add_pilot(pilot);
  auto units = manager.submit_units({simple_unit(1.0, 16)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  EXPECT_EQ(units.value()[0]->state(), UnitState::kFailed);
  EXPECT_EQ(units.value()[0]->final_status().code(),
            Errc::kResourceExhausted);
}

TEST_F(SimPilotTest, InjectedFailureWithoutRetriesFails) {
  auto pilot = make_active_pilot(4);
  UnitManager manager(backend_);
  manager.add_pilot(pilot);
  auto description = simple_unit(2.0);
  description.simulated_fail = true;
  auto units = manager.submit_units({std::move(description)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  EXPECT_EQ(units.value()[0]->state(), UnitState::kFailed);
}

TEST_F(SimPilotTest, InjectedFailureWithRetrySucceedsSecondTime) {
  auto pilot = make_active_pilot(4);
  UnitManager manager(backend_);
  manager.add_pilot(pilot);
  auto description = simple_unit(2.0);
  description.simulated_fail = true;
  description.retry.max_retries = 1;
  auto units = manager.submit_units({std::move(description)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  EXPECT_EQ(units.value()[0]->state(), UnitState::kDone);
  EXPECT_EQ(units.value()[0]->retries(), 1);
}

TEST_F(SimPilotTest, UnitsSubmittedBeforePilotActiveAreHeld) {
  PilotManager pilot_manager(backend_);
  PilotDescription description;
  description.resource = "localhost";
  description.cores = 4;
  description.runtime = 100000.0;
  auto pilot = pilot_manager.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());

  UnitManager unit_manager(backend_);
  unit_manager.add_pilot(pilot.value());
  // Pilot still pending: units must queue in the manager.
  auto units = unit_manager.submit_units({simple_unit(3.0)});
  ASSERT_TRUE(units.ok());
  EXPECT_EQ(units.value()[0]->state(), UnitState::kPendingExecution);
  ASSERT_TRUE(unit_manager.wait_units(units.value()).is_ok());
  EXPECT_EQ(units.value()[0]->state(), UnitState::kDone);
}

TEST_F(SimPilotTest, SpawnOverheadAccumulatesPerUnit) {
  auto pilot = make_active_pilot(8);
  UnitManager manager(backend_);
  manager.add_pilot(pilot);
  std::vector<UnitDescription> descriptions(8, simple_unit(1.0));
  auto units = manager.submit_units(std::move(descriptions));
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  const auto& machine = backend_.machine();
  EXPECT_NEAR(pilot->agent()->total_spawn_overhead(),
              8.0 * machine.unit_spawn_overhead, 1e-12);
}

TEST(SimAgentSpawner, SingleWorkerSerializesLaunches) {
  // With spawner_concurrency = 1 unit starts must stagger by at least
  // the per-unit spawn overhead.
  auto machine = sim::localhost_profile();
  machine.spawner_concurrency = 1;
  SimBackend backend(machine);
  PilotManager pilot_manager(backend);
  PilotDescription description;
  description.resource = "localhost";
  description.cores = 8;
  description.runtime = 100000.0;
  auto pilot = pilot_manager.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot_manager.wait_active(pilot.value()).is_ok());

  UnitManager manager(backend);
  manager.add_pilot(pilot.value());
  std::vector<UnitDescription> descriptions(8, simple_unit(1.0));
  auto units = manager.submit_units(std::move(descriptions));
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  std::vector<TimePoint> starts;
  for (const auto& unit : units.value()) {
    starts.push_back(unit->exec_started_at());
  }
  std::sort(starts.begin(), starts.end());
  for (std::size_t i = 1; i < starts.size(); ++i) {
    EXPECT_GE(starts[i] - starts[i - 1],
              machine.unit_spawn_overhead - 1e-12);
  }
}

TEST(SimAgentSpawner, ParallelWorkersSpawnConcurrently) {
  // With 8 spawner workers, 8 units all start together.
  auto machine = sim::localhost_profile();
  machine.spawner_concurrency = 8;
  SimBackend backend(machine);
  PilotManager pilot_manager(backend);
  PilotDescription description;
  description.resource = "localhost";
  description.cores = 8;
  description.runtime = 100000.0;
  auto pilot = pilot_manager.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot_manager.wait_active(pilot.value()).is_ok());

  UnitManager manager(backend);
  manager.add_pilot(pilot.value());
  std::vector<UnitDescription> descriptions(8, simple_unit(1.0));
  auto units = manager.submit_units(std::move(descriptions));
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(manager.wait_units(units.value()).is_ok());
  TimePoint first = kTimeInfinity, last = -kTimeInfinity;
  for (const auto& unit : units.value()) {
    first = std::min(first, unit->exec_started_at());
    last = std::max(last, unit->exec_started_at());
  }
  EXPECT_NEAR(first, last, 1e-12);
}

TEST_F(SimPilotTest, DeallocateCancelsWaitingUnits) {
  PilotManager pilot_manager(backend_);
  PilotDescription description;
  description.resource = "localhost";
  description.cores = 1;
  description.runtime = 100000.0;
  auto pilot = pilot_manager.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot_manager.wait_active(pilot.value()).is_ok());

  UnitManager unit_manager(backend_);
  unit_manager.add_pilot(pilot.value());
  // One long unit runs, one waits.
  auto units = unit_manager.submit_units(
      {simple_unit(1000.0), simple_unit(1000.0)});
  ASSERT_TRUE(units.ok());
  ASSERT_TRUE(backend_
                  .drive_until([&] {
                    return units.value()[0]->state() ==
                           UnitState::kExecuting;
                  })
                  .is_ok());
  ASSERT_TRUE(pilot_manager.deallocate(pilot.value()).is_ok());
  EXPECT_EQ(pilot.value()->state(), PilotState::kDone);
  EXPECT_EQ(units.value()[1]->state(), UnitState::kCanceled);
}

TEST_F(SimPilotTest, PilotValidation) {
  PilotManager manager(backend_);
  PilotDescription wrong_machine;
  wrong_machine.resource = "xsede.comet";
  wrong_machine.cores = 8;
  EXPECT_EQ(manager.submit_pilot(wrong_machine).status().code(),
            Errc::kInvalidArgument);
  PilotDescription too_big;
  too_big.resource = "localhost";
  too_big.cores = 1000;
  EXPECT_EQ(manager.submit_pilot(too_big).status().code(),
            Errc::kResourceExhausted);
  PilotDescription bad_policy;
  bad_policy.resource = "localhost";
  bad_policy.cores = 4;
  EXPECT_EQ(manager.submit_pilot(bad_policy, "no-such-policy")
                .status()
                .code(),
            Errc::kNotFound);
}

}  // namespace
}  // namespace entk::pilot
