// Tests of the RepEx application framework (synchronous and
// asynchronous replica exchange on the local backend with real MD).
#include <gtest/gtest.h>

#include "apps/repex/repex.hpp"
#include "core/entk.hpp"

namespace entk::apps {
namespace {

core::ResourceHandle make_handle(pilot::LocalBackend& backend,
                                 const kernels::KernelRegistry& registry,
                                 Count cores) {
  core::ResourceOptions options;
  options.cores = cores;
  return core::ResourceHandle(backend, registry, options);
}

RepexConfig small_config(bool asynchronous) {
  RepexConfig config;
  config.n_replicas = 4;
  config.n_cycles = 3;
  config.asynchronous = asynchronous;
  config.system = "fluid";      // fastest real MD
  config.n_particles = 32;
  config.steps_per_cycle = 30;
  config.sample_every = 10;
  config.t_min = 0.8;
  config.t_max = 2.0;
  return config;
}

TEST(RepexConfigTest, Validation) {
  EXPECT_TRUE(small_config(false).validate().is_ok());
  RepexConfig bad = small_config(false);
  bad.n_replicas = 1;
  EXPECT_EQ(bad.validate().code(), Errc::kInvalidArgument);
  bad = small_config(false);
  bad.t_max = bad.t_min;
  EXPECT_EQ(bad.validate().code(), Errc::kInvalidArgument);
  bad = small_config(false);
  bad.n_cycles = 0;
  EXPECT_EQ(bad.validate().code(), Errc::kInvalidArgument);
}

TEST(RepexApplicationTest, LadderIsGeometric) {
  RepexApplication application(small_config(false));
  ASSERT_EQ(application.ladder().size(), 4u);
  EXPECT_DOUBLE_EQ(application.ladder().front(), 0.8);
  EXPECT_NEAR(application.ladder().back(), 2.0, 1e-12);
}

TEST(RepexApplicationTest, RequiresAllocatedHandleWithSharedDir) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::LocalBackend backend(4);
  auto handle = make_handle(backend, registry, 4);
  RepexApplication application(small_config(false));
  // Not allocated yet.
  EXPECT_EQ(application.run(handle).status().code(),
            Errc::kFailedPrecondition);

  // Simulated backend: no shared directory.
  pilot::SimBackend sim_backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 4;
  core::ResourceHandle sim_handle(sim_backend, registry, options);
  ASSERT_TRUE(sim_handle.allocate().is_ok());
  RepexApplication sim_application(small_config(false));
  EXPECT_EQ(sim_application.run(sim_handle).status().code(),
            Errc::kFailedPrecondition);
}

class RepexModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(RepexModeTest, FullStudyRunsAndKeepsBooks) {
  const bool asynchronous = GetParam();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::LocalBackend backend(4);
  auto handle = make_handle(backend, registry, 4);
  ASSERT_TRUE(handle.allocate().is_ok());

  RepexApplication application(small_config(asynchronous));
  auto report = application.run(handle);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  const RepexReport& result = report.value();

  EXPECT_EQ(result.cycles_completed, 3);
  // Sync: one global sweep per cycle over 4 replicas = 2 or 1 pair
  // attempts depending on parity; async: per-pair tasks. Either way
  // some exchanges were attempted and the ratio is a probability.
  EXPECT_GT(result.swaps_attempted, 0u);
  EXPECT_LE(result.swaps_accepted, result.swaps_attempted);
  EXPECT_GE(result.acceptance_ratio(), 0.0);
  EXPECT_LE(result.acceptance_ratio(), 1.0);

  // Rung histories: initial + one per cycle; every entry a permutation.
  ASSERT_EQ(result.rung_history.size(), 4u);
  for (const auto& assignment : result.rung_history) {
    std::vector<bool> seen(assignment.size(), false);
    for (const std::size_t rung : assignment) {
      ASSERT_LT(rung, assignment.size());
      EXPECT_FALSE(seen[rung]) << "duplicate rung";
      seen[rung] = true;
    }
  }
  // Tasks: per cycle, 4 simulations + exchanges.
  EXPECT_GE(result.tasks_executed, 3u * 5u - 3u);
  EXPECT_GT(result.total_ttc, 0.0);
  ASSERT_TRUE(handle.deallocate().is_ok());
}

INSTANTIATE_TEST_SUITE_P(SyncAndAsync, RepexModeTest,
                         ::testing::Values(false, true));

TEST(RepexApplicationTest, AssignmentsPersistAcrossCycles) {
  // With a wide ladder (hard swaps) most assignments stay put; with a
  // degenerate ladder... instead verify persistence directly: history
  // entry k+1 differs from k only by the swaps the cycle accepted.
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::LocalBackend backend(4);
  auto handle = make_handle(backend, registry, 4);
  ASSERT_TRUE(handle.allocate().is_ok());

  RepexConfig config = small_config(false);
  config.n_cycles = 4;
  RepexApplication application(config);
  auto report = application.run(handle);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  std::size_t total_changes = 0;
  const auto& history = report.value().rung_history;
  for (std::size_t c = 1; c < history.size(); ++c) {
    for (std::size_t r = 0; r < history[c].size(); ++r) {
      if (history[c][r] != history[c - 1][r]) ++total_changes;
    }
  }
  // Every accepted swap changes exactly two replicas' rungs.
  EXPECT_EQ(total_changes, 2 * report.value().swaps_accepted);
}

TEST(RepexHamiltonian, RequiresAsynchronousMode) {
  RepexConfig config = small_config(false);
  config.dimension = RepexConfig::Dimension::kHamiltonian;
  EXPECT_EQ(config.validate().code(), Errc::kInvalidArgument);
  config.asynchronous = true;
  EXPECT_TRUE(config.validate().is_ok());
  config.eps_max = config.eps_min;
  EXPECT_EQ(config.validate().code(), Errc::kInvalidArgument);
}

TEST(RepexHamiltonian, LadderHoldsPotentialScales) {
  RepexConfig config = small_config(true);
  config.dimension = RepexConfig::Dimension::kHamiltonian;
  config.eps_min = 0.5;
  config.eps_max = 1.0;
  RepexApplication application(config);
  ASSERT_EQ(application.ladder().size(), 4u);
  EXPECT_DOUBLE_EQ(application.ladder().front(), 0.5);
  EXPECT_NEAR(application.ladder().back(), 1.0, 1e-12);
}

TEST(RepexHamiltonian, FullStudyWithCrossEnergies) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::LocalBackend backend(4);
  auto handle = make_handle(backend, registry, 4);
  ASSERT_TRUE(handle.allocate().is_ok());

  RepexConfig config = small_config(true);
  config.dimension = RepexConfig::Dimension::kHamiltonian;
  config.eps_min = 0.5;
  config.eps_max = 1.0;
  RepexApplication application(config);
  auto report = application.run(handle);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().cycles_completed, 3);
  EXPECT_GT(report.value().swaps_attempted, 0u);
  EXPECT_LE(report.value().swaps_accepted,
            report.value().swaps_attempted);
  // Assignments remain permutations throughout.
  for (const auto& assignment : report.value().rung_history) {
    std::vector<bool> seen(assignment.size(), false);
    for (const std::size_t rung : assignment) {
      ASSERT_LT(rung, assignment.size());
      EXPECT_FALSE(seen[rung]);
      seen[rung] = true;
    }
  }
  ASSERT_TRUE(handle.deallocate().is_ok());
}

}  // namespace
}  // namespace entk::apps
