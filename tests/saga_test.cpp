// Tests of the SAGA layer: job model, local adaptor (real execution)
// and the simulated-batch adaptor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "saga/job.hpp"
#include "saga/local_adaptor.hpp"
#include "saga/sim_batch_adaptor.hpp"
#include "sim/batch.hpp"

namespace entk::saga {
namespace {

TEST(JobModel, ValidTransitions) {
  EXPECT_TRUE(is_valid_transition(JobState::kNew, JobState::kPending));
  EXPECT_TRUE(is_valid_transition(JobState::kPending, JobState::kRunning));
  EXPECT_TRUE(is_valid_transition(JobState::kPending, JobState::kCanceled));
  EXPECT_TRUE(is_valid_transition(JobState::kRunning, JobState::kDone));
  EXPECT_TRUE(is_valid_transition(JobState::kRunning, JobState::kFailed));
  EXPECT_FALSE(is_valid_transition(JobState::kNew, JobState::kRunning));
  EXPECT_FALSE(is_valid_transition(JobState::kDone, JobState::kRunning));
  EXPECT_FALSE(is_valid_transition(JobState::kFailed, JobState::kDone));
  EXPECT_TRUE(is_final(JobState::kDone));
  EXPECT_TRUE(is_final(JobState::kCanceled));
  EXPECT_FALSE(is_final(JobState::kRunning));
}

TEST(JobModel, AdvanceStampsTimesAndFiresCallbacks) {
  WallClock clock;
  JobDescription description;
  description.executable = "/bin/true";
  Job job("job.test", description, clock);
  std::vector<JobState> observed;
  job.on_state_change(
      [&](Job&, JobState state) { observed.push_back(state); });

  EXPECT_TRUE(job.advance_state(JobState::kPending).is_ok());
  EXPECT_TRUE(job.advance_state(JobState::kRunning).is_ok());
  EXPECT_TRUE(job.advance_state(JobState::kDone).is_ok());
  EXPECT_EQ(observed, (std::vector<JobState>{JobState::kPending,
                                             JobState::kRunning,
                                             JobState::kDone}));
  EXPECT_GE(job.started_at(), job.submitted_at());
  EXPECT_GE(job.finished_at(), job.started_at());
  // Illegal transition rejected.
  EXPECT_EQ(job.advance_state(JobState::kRunning).code(),
            Errc::kFailedPrecondition);
}

TEST(JobModel, FailureRecordsStatus) {
  WallClock clock;
  JobDescription description;
  description.executable = "/bin/false";
  Job job("job.fail", description, clock);
  ASSERT_TRUE(job.advance_state(JobState::kPending).is_ok());
  ASSERT_TRUE(job
                  .advance_state(JobState::kFailed,
                                 make_error(Errc::kIoError, "disk died"))
                  .is_ok());
  EXPECT_EQ(job.final_status().code(), Errc::kIoError);
}

TEST(JobDescriptionValidate, CatchesBadFields) {
  JobDescription description;
  description.executable = "x";
  EXPECT_TRUE(description.validate().is_ok());
  description.total_cpu_count = 0;
  EXPECT_EQ(description.validate().code(), Errc::kInvalidArgument);
  description.total_cpu_count = 1;
  description.wall_time_limit = -5;
  EXPECT_EQ(description.validate().code(), Errc::kInvalidArgument);
  JobDescription empty;
  EXPECT_EQ(empty.validate().code(), Errc::kInvalidArgument);
}

// ----------------------------------------------------------- local adaptor

TEST(LocalAdaptor, RunsPayloadAndCompletes) {
  LocalAdaptor adaptor(4);
  std::atomic<bool> ran{false};
  JobDescription description;
  description.name = "payload-job";
  description.payload = [&]() -> Status {
    ran = true;
    return Status::ok();
  };
  auto job = adaptor.submit(std::move(description));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(job.value()->wait(10.0).is_ok());
  EXPECT_EQ(job.value()->state(), JobState::kDone);
  EXPECT_TRUE(ran.load());
}

TEST(LocalAdaptor, PayloadFailurePropagates) {
  LocalAdaptor adaptor(2);
  JobDescription description;
  description.payload = []() -> Status {
    return make_error(Errc::kExecutionFailed, "bad exit");
  };
  auto job = adaptor.submit(std::move(description));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(job.value()->wait(10.0).is_ok());
  EXPECT_EQ(job.value()->state(), JobState::kFailed);
  EXPECT_EQ(job.value()->final_status().code(), Errc::kExecutionFailed);
}

TEST(LocalAdaptor, EnforcesCoreBudgetFifo) {
  LocalAdaptor adaptor(2);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  auto make_description = [&] {
    JobDescription description;
    description.payload = [&]() -> Status {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
      return Status::ok();
    };
    return description;
  };
  std::vector<JobPtr> jobs;
  for (int i = 0; i < 6; ++i) {
    auto job = adaptor.submit(make_description());
    ASSERT_TRUE(job.ok());
    jobs.push_back(job.take());
  }
  for (const auto& job : jobs) {
    ASSERT_TRUE(job->wait(10.0).is_ok());
    EXPECT_EQ(job->state(), JobState::kDone);
  }
  EXPECT_LE(peak.load(), 2);
}

TEST(LocalAdaptor, TeardownWhileAJobFinishesCancelsTheFollower) {
  // Regression for the shutdown footgun: a payload finishing while
  // the adaptor tears down calls finish() from its worker thread,
  // which reserves the next waiting job and hands its payload to a
  // pool that is already stopping. The refused submission must cancel
  // that job cleanly — the old ThreadPool::submit path aborted the
  // whole process on this race.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  auto adaptor = std::make_unique<LocalAdaptor>(1);
  JobDescription first;
  first.payload = [&entered, &release]() -> Status {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return Status::ok();
  };
  JobDescription second;
  second.payload = []() -> Status { return Status::ok(); };
  auto blocked = adaptor->submit(std::move(first));
  ASSERT_TRUE(blocked.ok());
  auto follower = adaptor->submit(std::move(second));  // queues: 1 core
  ASSERT_TRUE(follower.ok());
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Tear down while the first payload is mid-flight; the destructor
  // blocks joining the worker, so finish() runs with the pool already
  // stopping.
  std::thread closer([&adaptor] { adaptor.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true, std::memory_order_release);
  closer.join();
  EXPECT_EQ(blocked.value()->state(), JobState::kDone);
  EXPECT_EQ(follower.value()->state(), JobState::kCanceled);
}

TEST(LocalAdaptor, ContainerJobRunsUntilCompleted) {
  LocalAdaptor adaptor(4);
  JobDescription description;
  description.name = "container";
  description.executable = "entk-agent";
  description.total_cpu_count = 3;
  auto job = adaptor.submit(std::move(description));
  ASSERT_TRUE(job.ok());
  // Starts immediately (enough free cores), holds them.
  EXPECT_EQ(job.value()->state(), JobState::kRunning);
  EXPECT_EQ(adaptor.free_cores(), 1);
  ASSERT_TRUE(adaptor.complete(*job.value()).is_ok());
  EXPECT_EQ(job.value()->state(), JobState::kDone);
  EXPECT_EQ(adaptor.free_cores(), 4);
}

TEST(LocalAdaptor, OversizedJobRejected) {
  LocalAdaptor adaptor(2);
  JobDescription description;
  description.executable = "x";
  description.total_cpu_count = 3;
  EXPECT_EQ(adaptor.submit(std::move(description)).status().code(),
            Errc::kResourceExhausted);
}

TEST(LocalAdaptor, CancelWaitingContainer) {
  LocalAdaptor adaptor(2);
  JobDescription hold;
  hold.executable = "entk-agent";
  hold.total_cpu_count = 2;
  auto holder = adaptor.submit(std::move(hold));
  ASSERT_TRUE(holder.ok());

  JobDescription waiting;
  waiting.executable = "entk-agent";
  waiting.total_cpu_count = 1;
  auto waiter = adaptor.submit(std::move(waiting));
  ASSERT_TRUE(waiter.ok());
  EXPECT_EQ(waiter.value()->state(), JobState::kPending);
  ASSERT_TRUE(adaptor.cancel(*waiter.value()).is_ok());
  EXPECT_EQ(waiter.value()->state(), JobState::kCanceled);
  ASSERT_TRUE(adaptor.complete(*holder.value()).is_ok());
}

TEST(LocalAdaptor, JobWaitTimesOut) {
  LocalAdaptor adaptor(1);
  JobDescription container;
  container.executable = "entk-agent";
  auto job = adaptor.submit(std::move(container));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job.value()->wait(0.05).code(), Errc::kTimedOut);
  ASSERT_TRUE(adaptor.complete(*job.value()).is_ok());
}

// ------------------------------------------------------- sim batch adaptor

class SimAdaptorTest : public ::testing::Test {
 protected:
  SimAdaptorTest()
      : cluster_(sim::localhost_profile()),
        batch_(engine_, cluster_),
        adaptor_(engine_, batch_, "localhost") {}

  sim::Engine engine_;
  sim::Cluster cluster_;
  sim::BatchQueue batch_;
  SimBatchAdaptor adaptor_;
};

TEST_F(SimAdaptorTest, SelfTerminatingJobRunsForItsDuration) {
  JobDescription description;
  description.executable = "solver";
  description.total_cpu_count = 4;
  description.wall_time_limit = 1000.0;
  description.simulated_duration = 42.0;
  auto job = adaptor_.submit(std::move(description));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job.value()->state(), JobState::kPending);
  engine_.run();
  EXPECT_EQ(job.value()->state(), JobState::kDone);
  EXPECT_NEAR(job.value()->finished_at() - job.value()->started_at(), 42.0,
              1e-9);
  EXPECT_EQ(cluster_.free_cores(), cluster_.total_cores());
}

TEST_F(SimAdaptorTest, AllocationVisibleWhileRunning) {
  JobDescription description;
  description.executable = "solver";
  description.total_cpu_count = 8;
  description.wall_time_limit = 1000.0;
  description.simulated_duration = 10.0;
  auto job = adaptor_.submit(std::move(description));
  ASSERT_TRUE(job.ok());
  engine_.run_until(1.0);
  ASSERT_EQ(job.value()->state(), JobState::kRunning);
  const auto allocation = job.value()->allocation();
  ASSERT_TRUE(allocation.has_value());
  EXPECT_EQ(allocation->total_cores(), 8);
  engine_.run();
  EXPECT_FALSE(job.value()->allocation().has_value());
}

TEST_F(SimAdaptorTest, WalltimeExpiryFailsTheJob) {
  JobDescription description;
  description.executable = "solver";
  description.total_cpu_count = 1;
  description.wall_time_limit = 5.0;
  description.simulated_duration = 0.0;  // owner-driven, never completed
  auto job = adaptor_.submit(std::move(description));
  ASSERT_TRUE(job.ok());
  engine_.run();
  EXPECT_EQ(job.value()->state(), JobState::kFailed);
  EXPECT_EQ(job.value()->final_status().code(), Errc::kTimedOut);
}

TEST_F(SimAdaptorTest, CancelPropagates) {
  JobDescription description;
  description.executable = "solver";
  description.total_cpu_count = 1;
  description.wall_time_limit = 1000.0;
  auto job = adaptor_.submit(std::move(description));
  ASSERT_TRUE(job.ok());
  engine_.run_until(1.0);
  ASSERT_EQ(job.value()->state(), JobState::kRunning);
  ASSERT_TRUE(adaptor_.cancel(*job.value()).is_ok());
  EXPECT_EQ(job.value()->state(), JobState::kCanceled);
  // Cancelling again: the job is no longer active on the adaptor.
  EXPECT_EQ(adaptor_.cancel(*job.value()).code(), Errc::kNotFound);
}

TEST_F(SimAdaptorTest, CompleteEndsOwnerDrivenJob) {
  JobDescription description;
  description.executable = "entk-agent";
  description.total_cpu_count = 2;
  description.wall_time_limit = 1000.0;
  auto job = adaptor_.submit(std::move(description));
  ASSERT_TRUE(job.ok());
  engine_.run_until(1.0);
  ASSERT_EQ(job.value()->state(), JobState::kRunning);
  ASSERT_TRUE(adaptor_.complete(*job.value()).is_ok());
  EXPECT_EQ(job.value()->state(), JobState::kDone);
  EXPECT_EQ(cluster_.free_cores(), cluster_.total_cores());
}

TEST_F(SimAdaptorTest, BackendNameIncludesMachine) {
  EXPECT_EQ(adaptor_.backend_name(), "sim:localhost");
}

}  // namespace
}  // namespace entk::saga
