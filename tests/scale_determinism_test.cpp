// Same-seed trace equality at ensemble scale.
//
// The pooled event engine and the bucketed waiting index must not
// change WHAT the toolkit schedules, only how fast it decides: the
// (time, seq) dispatch order is a total order, so any correct heap —
// and a pick-for-pick-identical scheduler — reproduces the exact same
// schedule. This test pins that claim at 10k units: two fresh runs of
// an identical heterogeneous workload must produce bit-for-bit equal
// traces (uids, submit/start/stop/finish timestamps), and the trace
// must match a golden digest captured when the test was written. A
// digest change means the runtime reordered something — either an
// intentional semantic change (re-pin the constant, explain it in the
// commit) or a determinism bug (fix it).
//
// The machine, workload and digest live in scale_test_util.hpp, shared
// with the checkpoint/restart equivalence suite.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/uid.hpp"
#include "core/entk.hpp"
#include "core/parallel_runtime.hpp"
#include "scale_test_util.hpp"

namespace entk::core {
namespace {

constexpr Count kUnits = 10000;

std::uint64_t run_once(const std::string& policy) {
  // Fresh uid counters so both runs name units identically.
  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(scale_test::scale_machine());
  ResourceOptions options;
  options.cores = 2048;
  options.runtime = 4.0e6;
  options.scheduler_policy = policy;
  ResourceHandle handle(backend, registry, options);
  EXPECT_TRUE(handle.allocate().is_ok());
  BagOfTasks pattern = scale_test::scale_workload(kUnits);
  auto report = handle.run(pattern);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  if (!report.ok()) return 0;
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(report.value().units.size(), static_cast<std::size_t>(kUnits));
  return scale_test::trace_digest(report.value().units);
}

TEST(ScaleDeterminism, SameSeedTracesAreBitIdenticalAt10k) {
  const std::uint64_t first = run_once("backfill");
  const std::uint64_t second = run_once("backfill");
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0u);
}

TEST(ScaleDeterminism, BackfillTraceMatchesGoldenDigest) {
  // Golden digest of the 10k-unit backfill schedule, captured when the
  // pooled engine + indexed scheduler landed. See the file comment for
  // what a mismatch means.
  constexpr std::uint64_t kGolden = 0x26C511C7D6394E68ULL;
  EXPECT_EQ(run_once("backfill"), kGolden);
}

TEST(ScaleDeterminism, LargestFirstTraceIsStableAcrossRuns) {
  const std::uint64_t first = run_once("largest_first");
  const std::uint64_t second = run_once("largest_first");
  EXPECT_EQ(first, second);
}

TEST(ScaleDeterminism, ParallelSpecMaterializationIsBitIdenticalToSerial) {
  // The work-stealing pool parallelizes frontier SPEC PRODUCTION in
  // GraphExecutor (each spec lands at its node's index) while the
  // SUBMIT stays serial in node-id order — so the schedule, and with
  // it the golden digest, must be bit-identical at every thread
  // count. Any divergence means parallelization leaked into ordering.
  constexpr std::uint64_t kGolden = 0x26C511C7D6394E68ULL;
  struct PoolReset {
    ~PoolReset() { set_parallel_threads(0); }
  } reset_on_exit;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}}) {
    set_parallel_threads(threads);
    EXPECT_EQ(run_once("backfill"), kGolden)
        << "digest diverged at " << threads << " pool threads";
  }
}

}  // namespace
}  // namespace entk::core
