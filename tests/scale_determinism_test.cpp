// Same-seed trace equality at ensemble scale.
//
// The pooled event engine and the bucketed waiting index must not
// change WHAT the toolkit schedules, only how fast it decides: the
// (time, seq) dispatch order is a total order, so any correct heap —
// and a pick-for-pick-identical scheduler — reproduces the exact same
// schedule. This test pins that claim at 10k units: two fresh runs of
// an identical heterogeneous workload must produce bit-for-bit equal
// traces (uids, submit/start/stop/finish timestamps), and the trace
// must match a golden digest captured when the test was written. A
// digest change means the runtime reordered something — either an
// intentional semantic change (re-pin the constant, explain it in the
// commit) or a determinism bug (fix it).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/uid.hpp"
#include "core/entk.hpp"

namespace entk::core {
namespace {

/// FNV-1a, the usual 64-bit parameters.
std::uint64_t fnv1a(std::uint64_t hash, const void* data,
                    std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t mix_double(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return fnv1a(hash, &bits, sizeof(bits));
}

std::uint64_t trace_digest(const std::vector<pilot::ComputeUnitPtr>& units) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& unit : units) {
    hash = fnv1a(hash, unit->uid().data(), unit->uid().size());
    hash = mix_double(hash, unit->submitted_at());
    hash = mix_double(hash, unit->exec_started_at());
    hash = mix_double(hash, unit->exec_stopped_at());
    hash = mix_double(hash, unit->finished_at());
  }
  return hash;
}

/// Synthetic machine big enough for the backlog to stay deep (2048
/// cores for 10k single-to-four-core units), with light overheads so
/// the virtual schedule is dominated by scheduling decisions.
sim::MachineProfile scale_machine() {
  sim::MachineProfile p;
  p.name = "test.scale";
  p.nodes = 32;
  p.cores_per_node = 64;
  p.memory_per_node_gb = 256.0;
  p.performance_factor = 1.0;
  p.unit_spawn_overhead = 0.001;
  p.spawner_concurrency = 64;
  p.unit_launch_latency = 0.002;
  p.pilot_bootstrap = 0.1;
  p.staging_latency = 0.001;
  p.staging_bandwidth_mb_per_s = 1000.0;
  return p;
}

constexpr Count kUnits = 10000;

/// Heterogeneous bag: durations spread +-50%, core counts cycling
/// 1/1/2/4 so every WaitingIndex bucket and the backfill budget logic
/// are exercised, not just the single-core fast path.
BagOfTasks scale_workload() {
  return BagOfTasks(kUnits, [](const StageContext& context) {
    Xoshiro256 rng(static_cast<std::uint64_t>(context.instance) * 6151 + 29);
    TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration", 50.0 * (0.5 + rng.uniform()));
    const Count shape = context.instance % 4;
    spec.cores = shape == 3 ? 4 : (shape == 2 ? 2 : 1);
    return spec;
  });
}

std::uint64_t run_once(const std::string& policy) {
  // Fresh uid counters so both runs name units identically.
  reset_uid_counters_for_testing();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(scale_machine());
  ResourceOptions options;
  options.cores = 2048;
  options.runtime = 4.0e6;
  options.scheduler_policy = policy;
  ResourceHandle handle(backend, registry, options);
  EXPECT_TRUE(handle.allocate().is_ok());
  BagOfTasks pattern = scale_workload();
  auto report = handle.run(pattern);
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  if (!report.ok()) return 0;
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(report.value().units.size(), static_cast<std::size_t>(kUnits));
  return trace_digest(report.value().units);
}

TEST(ScaleDeterminism, SameSeedTracesAreBitIdenticalAt10k) {
  const std::uint64_t first = run_once("backfill");
  const std::uint64_t second = run_once("backfill");
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0u);
}

TEST(ScaleDeterminism, BackfillTraceMatchesGoldenDigest) {
  // Golden digest of the 10k-unit backfill schedule, captured when the
  // pooled engine + indexed scheduler landed. See the file comment for
  // what a mismatch means.
  constexpr std::uint64_t kGolden = 0x26C511C7D6394E68ULL;
  EXPECT_EQ(run_once("backfill"), kGolden);
}

TEST(ScaleDeterminism, LargestFirstTraceIsStableAcrossRuns) {
  const std::uint64_t first = run_once("largest_first");
  const std::uint64_t second = run_once("largest_first");
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace entk::core
