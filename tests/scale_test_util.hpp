// Shared machinery of the scale-determinism and checkpoint/restart
// tests: the synthetic 2048-core machine, the heterogeneous 1/1/2/4-
// core bag workload, and the FNV-1a trace digest over unit timelines.
// Both suites pin the same claim — the (time, seq) dispatch order is a
// total order the runtime reproduces bit-for-bit — so they must hash
// the same bytes the same way.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/entk.hpp"

namespace entk::core::scale_test {

/// FNV-1a, the usual 64-bit parameters.
inline std::uint64_t fnv1a(std::uint64_t hash, const void* data,
                           std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

inline std::uint64_t mix_double(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return fnv1a(hash, &bits, sizeof(bits));
}

/// Digest of every unit's identity and timeline, in submission order.
inline std::uint64_t trace_digest(
    const std::vector<pilot::ComputeUnitPtr>& units) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& unit : units) {
    hash = fnv1a(hash, unit->uid().data(), unit->uid().size());
    hash = mix_double(hash, unit->submitted_at());
    hash = mix_double(hash, unit->exec_started_at());
    hash = mix_double(hash, unit->exec_stopped_at());
    hash = mix_double(hash, unit->finished_at());
  }
  return hash;
}

/// Same digest restricted to units that finish after `cut` — the
/// "remaining schedule" a resumed run must reproduce bit-for-bit.
inline std::uint64_t remaining_schedule_digest(
    const std::vector<pilot::ComputeUnitPtr>& units, TimePoint cut) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& unit : units) {
    if (unit->finished_at() <= cut) continue;
    hash = fnv1a(hash, unit->uid().data(), unit->uid().size());
    hash = mix_double(hash, unit->submitted_at());
    hash = mix_double(hash, unit->exec_started_at());
    hash = mix_double(hash, unit->exec_stopped_at());
    hash = mix_double(hash, unit->finished_at());
  }
  return hash;
}

/// Synthetic machine big enough for the backlog to stay deep (2048
/// cores for 10k single-to-four-core units), with light overheads so
/// the virtual schedule is dominated by scheduling decisions.
inline sim::MachineProfile scale_machine() {
  sim::MachineProfile p;
  p.name = "test.scale";
  p.nodes = 32;
  p.cores_per_node = 64;
  p.memory_per_node_gb = 256.0;
  p.performance_factor = 1.0;
  p.unit_spawn_overhead = 0.001;
  p.spawner_concurrency = 64;
  p.unit_launch_latency = 0.002;
  p.pilot_bootstrap = 0.1;
  p.staging_latency = 0.001;
  p.staging_bandwidth_mb_per_s = 1000.0;
  return p;
}

/// Heterogeneous task generator: durations spread +-50%, core counts
/// cycling 1/1/2/4 so every WaitingIndex bucket and the backfill
/// budget logic are exercised, not just the single-core fast path.
inline TaskSpec scale_task(const StageContext& context) {
  Xoshiro256 rng(static_cast<std::uint64_t>(context.instance) * 6151 + 29);
  TaskSpec spec;
  spec.kernel = "misc.sleep";
  spec.args.set("duration", 50.0 * (0.5 + rng.uniform()));
  const Count shape = context.instance % 4;
  spec.cores = shape == 3 ? 4 : (shape == 2 ? 2 : 1);
  return spec;
}

/// The heterogeneous bag the golden digest is pinned over.
inline BagOfTasks scale_workload(Count n_units) {
  return BagOfTasks(n_units, scale_task);
}

}  // namespace entk::core::scale_test
