// Property tests of the in-pilot scheduler policies.
#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/uid.hpp"
#include "pilot/scheduler.hpp"

namespace entk::pilot {
namespace {

WallClock g_clock;

ComputeUnitPtr unit_with_cores(Count cores) {
  UnitDescription description;
  description.name = "sched.unit";
  description.executable = "x";
  description.cores = cores;
  description.uses_mpi = cores > 1;
  description.simulated_duration = 1.0;
  auto unit = std::make_shared<ComputeUnit>(next_uid("schedunit"),
                                            std::move(description), g_clock);
  ENTK_CHECK(unit->advance_state(UnitState::kPendingExecution).is_ok(), "");
  return unit;
}

std::deque<ComputeUnitPtr> make_queue(const std::vector<Count>& sizes) {
  std::deque<ComputeUnitPtr> queue;
  for (const Count size : sizes) queue.push_back(unit_with_cores(size));
  return queue;
}

Count selected_cores(const std::deque<ComputeUnitPtr>& queue,
                     const std::vector<std::size_t>& picks) {
  Count total = 0;
  for (const std::size_t i : picks) {
    total += queue[i]->description().cores;
  }
  return total;
}

TEST(FifoScheduler, StopsAtFirstUnitThatDoesNotFit) {
  FifoScheduler scheduler;
  const auto queue = make_queue({2, 8, 1, 1});
  const auto picks = scheduler.select(queue, 4);
  // Takes the 2-core head, blocks on the 8-core unit even though the
  // 1-core units behind it would fit.
  EXPECT_EQ(picks, (std::vector<std::size_t>{0}));
}

TEST(BackfillScheduler, FillsAroundOversizedUnits) {
  BackfillScheduler scheduler;
  const auto queue = make_queue({2, 8, 1, 1});
  const auto picks = scheduler.select(queue, 4);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(LargestFirstScheduler, PrefersBigUnits) {
  LargestFirstScheduler scheduler;
  const auto queue = make_queue({1, 4, 2, 4});
  const auto picks = scheduler.select(queue, 8);
  // 4 + 4 selected first, then nothing else fits except... budget is
  // exactly consumed by the two 4-core units.
  EXPECT_EQ(selected_cores(queue, picks), 8);
  // Both 4-core units must be among the picks.
  EXPECT_NE(std::find(picks.begin(), picks.end(), 1u), picks.end());
  EXPECT_NE(std::find(picks.begin(), picks.end(), 3u), picks.end());
}

TEST(SchedulerFactory, ResolvesPolicies) {
  EXPECT_EQ(make_scheduler("fifo").value()->name(), "fifo");
  EXPECT_EQ(make_scheduler("backfill").value()->name(), "backfill");
  EXPECT_EQ(make_scheduler("largest_first").value()->name(),
            "largest_first");
  EXPECT_EQ(make_scheduler("bogus").status().code(), Errc::kNotFound);
}

// Property sweep: no policy may ever over-commit the free cores, pick
// an index twice, or pick an out-of-range index.
class SchedulerPropertyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SchedulerPropertyTest, NeverOverCommitsOnRandomQueues) {
  auto scheduler = make_scheduler(GetParam()).take();
  Xoshiro256 rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t queue_length = 1 + rng.uniform_index(20);
    std::vector<Count> sizes;
    for (std::size_t i = 0; i < queue_length; ++i) {
      sizes.push_back(1 + static_cast<Count>(rng.uniform_index(16)));
    }
    const auto queue = make_queue(sizes);
    const Count free_cores = 1 + static_cast<Count>(rng.uniform_index(32));
    const auto picks = scheduler->select(queue, free_cores);

    EXPECT_LE(selected_cores(queue, picks), free_cores);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), picks.size()) << "duplicate picks";
    for (const std::size_t pick : picks) {
      EXPECT_LT(pick, queue.size());
    }
  }
}

TEST_P(SchedulerPropertyTest, SingleCoreUnitsAlwaysSaturate) {
  // With all-1-core units every policy must fill the machine exactly.
  auto scheduler = make_scheduler(GetParam()).take();
  const auto queue = make_queue(std::vector<Count>(12, 1));
  const auto picks = scheduler->select(queue, 8);
  EXPECT_EQ(picks.size(), 8u);
}

TEST_P(SchedulerPropertyTest, EmptyQueueSelectsNothing) {
  auto scheduler = make_scheduler(GetParam()).take();
  EXPECT_TRUE(scheduler->select({}, 16).empty());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedulerPropertyTest,
                         ::testing::Values("fifo", "backfill",
                                           "largest_first"));

}  // namespace
}  // namespace entk::pilot
