// Protocol robustness for the entk-serve wire layer: the strict JSON
// codec, request parsing, and the live socket listener under hostile
// input (malformed frames, oversized lines, truncated requests,
// mid-request disconnects). Everything here must fail CLEANLY — an
// error reply or a closed connection, never a crash or a wedged
// daemon — and the suite runs under the asan-ubsan preset in CI.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "serve/json.hpp"
#include "serve/listener.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace entk::serve {
namespace {

// ---------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------

TEST(ServeJson, RoundTripsTheProtocolShapes) {
  const std::string doc =
      R"({"verb":"SUBMIT","id":7,"ok":true,"none":null,)"
      R"("list":[1,2.5,-3],"nested":{"a":"b"}})";
  auto parsed = Json::parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const Json& json = parsed.value();
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.find("verb")->as_string(), "SUBMIT");
  EXPECT_EQ(json.find("id")->as_number(), 7.0);
  EXPECT_TRUE(json.find("ok")->as_bool());
  EXPECT_TRUE(json.find("none")->is_null());
  ASSERT_TRUE(json.find("list")->is_array());
  EXPECT_EQ(json.find("list")->items().size(), 3u);
  EXPECT_EQ(json.find("nested")->find("a")->as_string(), "b");
  // dump() -> parse() is the identity on the wire shapes.
  auto reparsed = Json::parse(json.dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().dump(), json.dump());
}

TEST(ServeJson, EscapesRoundTrip) {
  Json json = Json::object();
  json.set("s", Json::string("quote\" slash\\ tab\t nl\n nul\x01 end"));
  auto reparsed = Json::parse(json.dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed.value().find("s")->as_string(),
            "quote\" slash\\ tab\t nl\n nul\x01 end");
}

TEST(ServeJson, EveryTruncationPrefixOfAValidFrameIsRejected) {
  // A balanced object only becomes valid at its final byte, so every
  // proper prefix must be an error — this is exactly the truncated
  // frame a dying client leaves behind.
  const std::string doc =
      R"({"verb":"STATUS","id":12,"x":[true,null,{"u":"\u0041\ud83d\ude00"}],)"
      R"("n":-1.5e3,"s":"tail"})";
  ASSERT_TRUE(Json::parse(doc).ok());
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_FALSE(Json::parse(doc.substr(0, len)).ok())
        << "prefix of length " << len << " parsed";
  }
}

TEST(ServeJson, DepthBombIsRejectedWithoutRecursionBlowup) {
  std::string bomb(100000, '[');
  EXPECT_FALSE(Json::parse(bomb).ok());
  // A balanced one too: the cap, not the imbalance, must trip first.
  std::string balanced = std::string(64, '[') + std::string(64, ']');
  EXPECT_FALSE(Json::parse(balanced, 16).ok());
  std::string shallow = std::string(8, '[') + std::string(8, ']');
  EXPECT_TRUE(Json::parse(shallow, 16).ok());
}

TEST(ServeJson, MalformedInputsAreRejected) {
  const char* bad[] = {
      "",          "   ",        "{",         "}",        "[1,]",
      "{\"a\":}",  "{\"a\"1}",   "{'a':1}",   "01",       "1.",
      "+1",        "1e",         "-",         "tru",      "nul",
      "\"\\x\"",   "\"\\u12\"",  "\"\\ud800\"",           // lone surrogate
      "\"\tab\"",                                         // bare control char
      "{} trailing",             "{}{}",      "\"open",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Json::parse(text).ok()) << "accepted: " << text;
  }
}

TEST(ServeJson, NumbersSerializeIntegrallyWhenIntegral) {
  EXPECT_EQ(Json::number(7).dump(), "7");
  EXPECT_EQ(Json::number(-3).dump(), "-3");
  EXPECT_NE(Json::number(2.5).dump().find('.'), std::string::npos);
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

TEST(ServeProtocol, ParsesEveryVerb) {
  auto submit = parse_request(
      R"({"verb":"SUBMIT","tenant":"alice","workload":"pattern = bag","name":"opt"})");
  ASSERT_TRUE(submit.ok()) << submit.status().to_string();
  EXPECT_EQ(submit.value().verb, Verb::kSubmit);
  EXPECT_EQ(submit.value().tenant, "alice");
  EXPECT_EQ(submit.value().workload, "pattern = bag");
  EXPECT_EQ(submit.value().name, "opt");

  auto status = parse_request(R"({"verb":"STATUS","id":7})");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().verb, Verb::kStatus);
  EXPECT_EQ(status.value().id, 7u);

  EXPECT_EQ(parse_request(R"({"verb":"CANCEL","id":1})").value().verb,
            Verb::kCancel);
  EXPECT_EQ(parse_request(R"({"verb":"RESULTS","id":1})").value().verb,
            Verb::kResults);
  EXPECT_EQ(parse_request(R"({"verb":"STATS"})").value().verb,
            Verb::kStats);
  EXPECT_EQ(parse_request(R"({"verb":"SHUTDOWN"})").value().verb,
            Verb::kShutdown);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  const char* bad[] = {
      "not json at all",
      "[]",                                   // not an object
      "42",
      R"({"id":7})",                          // no verb
      R"({"verb":"FROBNICATE"})",             // unknown verb
      R"({"verb":7})",                        // verb not a string
      R"({"verb":"SUBMIT"})",                 // SUBMIT without tenant
      R"({"verb":"SUBMIT","tenant":"a"})",    // ... without workload
      R"({"verb":"SUBMIT","tenant":"","workload":"x"})",
      R"({"verb":"SUBMIT","tenant":"a","workload":""})",
      R"({"verb":"STATUS"})",                 // id required
      R"({"verb":"STATUS","id":0})",          // ids are positive
      R"({"verb":"STATUS","id":-1})",
      R"({"verb":"STATUS","id":1.5})",        // and integral
      R"({"verb":"STATUS","id":"7"})",        // and numbers
      R"({"verb":"STATUS","id":1e16})",       // and bounded
  };
  for (const char* line : bad) {
    auto parsed = parse_request(line);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << line;
    if (!parsed.ok()) {
      EXPECT_STREQ(error_code_for(parsed.status()), "BAD_REQUEST");
    }
  }
}

TEST(ServeProtocol, ErrorCodesMapFromStatus) {
  EXPECT_STREQ(error_code_for(make_error(Errc::kInvalidArgument, "x")),
               "BAD_REQUEST");
  EXPECT_STREQ(error_code_for(make_error(Errc::kResourceExhausted, "x")),
               "REJECTED");
  EXPECT_STREQ(error_code_for(make_error(Errc::kFailedPrecondition, "x")),
               "QUOTA");
  EXPECT_STREQ(error_code_for(make_error(Errc::kNotFound, "x")),
               "NOT_FOUND");
  EXPECT_STREQ(error_code_for(make_error(Errc::kCancelled, "x")),
               "UNAVAILABLE");
  EXPECT_STREQ(error_code_for(make_error(Errc::kInternal, "x")),
               "INTERNAL");
}

TEST(ServeProtocol, RepliesAreSingleLineJson) {
  const std::string error = error_reply("BAD_REQUEST", "why\nnot");
  EXPECT_EQ(error.find('\n'), std::string::npos);
  auto parsed = Json::parse(error);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().find("ok")->as_bool());
  EXPECT_EQ(parsed.value().find("error")->as_string(), "BAD_REQUEST");

  Json body = Json::object();
  body.set("id", Json::number(7));
  const std::string ok = ok_reply(std::move(body));
  auto ok_parsed = Json::parse(ok);
  ASSERT_TRUE(ok_parsed.ok());
  EXPECT_TRUE(ok_parsed.value().find("ok")->as_bool());
  EXPECT_EQ(ok_parsed.value().members().front().first, "ok");
}

// ---------------------------------------------------------------------
// Live listener under hostile clients
// ---------------------------------------------------------------------

/// A blocking line-protocol client on a raw TCP socket.
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() { close(); }
  bool connected() const { return connected_; }
  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads until '\n' or EOF; returns the line without the newline.
  std::string read_line() {
    std::string line;
    char byte = 0;
    while (true) {
      const ssize_t n = ::recv(fd_, &byte, 1, 0);
      if (n <= 0) break;  // EOF / error: return what we have
      if (byte == '\n') break;
      line.push_back(byte);
    }
    return line;
  }

  /// True when the server closed its end (EOF on a blocking read).
  bool at_eof() {
    char byte = 0;
    return ::recv(fd_, &byte, 1, 0) <= 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class ServeListenerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceConfig config;
    auto service = Service::create(config);
    ASSERT_TRUE(service.ok()) << service.status().to_string();
    service_ = service.take();
    Listener::Options options;
    options.tcp_port = 0;  // ephemeral
    auto listener = Listener::start(*service_, options);
    ASSERT_TRUE(listener.ok()) << listener.status().to_string();
    listener_ = listener.take();
    ASSERT_GT(listener_->tcp_port(), 0);
  }

  void TearDown() override {
    if (listener_ != nullptr) listener_->stop();
  }

  /// The liveness probe: a fresh connection must still get a STATS
  /// reply after whatever abuse the test inflicted.
  void expect_still_serving() {
    RawClient client(listener_->tcp_port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_raw("{\"verb\":\"STATS\"}\n"));
    auto parsed = Json::parse(client.read_line());
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value().find("ok")->as_bool());
  }

  std::unique_ptr<Service> service_;
  std::unique_ptr<Listener> listener_;
};

TEST_F(ServeListenerTest, MalformedJsonGetsBadRequestNotDisconnect) {
  RawClient client(listener_->tcp_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw("this is not json\n"));
  auto reply = Json::parse(client.read_line());
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply.value().find("ok")->as_bool());
  EXPECT_EQ(reply.value().find("error")->as_string(), "BAD_REQUEST");
  // The connection survives a bad frame: the next request works.
  ASSERT_TRUE(client.send_raw("{\"verb\":\"STATS\"}\n"));
  auto stats = Json::parse(client.read_line());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().find("ok")->as_bool());
}

TEST_F(ServeListenerTest, UnknownVerbGetsBadRequest) {
  RawClient client(listener_->tcp_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw("{\"verb\":\"LAUNCH_MISSILES\"}\n"));
  auto reply = Json::parse(client.read_line());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().find("error")->as_string(), "BAD_REQUEST");
}

TEST_F(ServeListenerTest, OversizedLineIsShedWithReplyAndClose) {
  RawClient client(listener_->tcp_port());
  ASSERT_TRUE(client.connected());
  // One frame over the cap, no newline needed — the listener must
  // shed as soon as the buffer exceeds the bound.
  std::string huge(kMaxLineBytes + 100, 'x');
  client.send_raw(huge);  // may fail mid-send when the server closes
  const std::string reply_line = client.read_line();
  if (!reply_line.empty()) {
    auto reply = Json::parse(reply_line);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().find("error")->as_string(), "BAD_REQUEST");
  }
  EXPECT_TRUE(client.at_eof());
  expect_still_serving();
}

TEST_F(ServeListenerTest, TruncatedFrameThenDisconnectIsClean) {
  {
    RawClient client(listener_->tcp_port());
    ASSERT_TRUE(client.connected());
    // Half a request, no newline, then vanish.
    ASSERT_TRUE(client.send_raw("{\"verb\":\"SUB"));
    client.close();
  }
  expect_still_serving();
}

TEST_F(ServeListenerTest, DisconnectBetweenFramesIsClean) {
  {
    RawClient client(listener_->tcp_port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_raw("{\"verb\":\"STATS\"}\n"));
    (void)client.read_line();
    client.close();  // clean close after a complete exchange
  }
  expect_still_serving();
}

TEST_F(ServeListenerTest, BinaryGarbageGetsErrorsNotCrashes) {
  RawClient client(listener_->tcp_port());
  ASSERT_TRUE(client.connected());
  std::string garbage;
  for (int i = 0; i < 256; ++i) {
    garbage.push_back(static_cast<char>(i == '\n' ? 0 : i));
  }
  garbage.push_back('\n');
  ASSERT_TRUE(client.send_raw(garbage));
  auto reply = Json::parse(client.read_line());
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply.value().find("ok")->as_bool());
  expect_still_serving();
}

TEST_F(ServeListenerTest, ManyFramesOnOneConnection) {
  RawClient client(listener_->tcp_port());
  ASSERT_TRUE(client.connected());
  // Pipelined: several requests in one write; replies come back in
  // order, one line each.
  std::string batch;
  for (int i = 0; i < 8; ++i) batch += "{\"verb\":\"STATS\"}\n";
  ASSERT_TRUE(client.send_raw(batch));
  for (int i = 0; i < 8; ++i) {
    auto reply = Json::parse(client.read_line());
    ASSERT_TRUE(reply.ok()) << "frame " << i;
    EXPECT_TRUE(reply.value().find("ok")->as_bool());
  }
}

TEST_F(ServeListenerTest, CarriageReturnLineEndingsAccepted) {
  RawClient client(listener_->tcp_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw("{\"verb\":\"STATS\"}\r\n"));
  auto reply = Json::parse(client.read_line());
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().find("ok")->as_bool());
}

}  // namespace
}  // namespace entk::serve
