// entk-serve Service semantics: admission control (bounded queue ->
// REJECTED), per-tenant quotas (session caps hold under racing
// demand), weighted fair-share (contended dispatch tracks weights),
// cancellation (queued and running), the full STATUS lifecycle, and
// the protocol entry point end to end. The serve lock order
// (kServeMailbox before kServeRegistry before everything the runtime
// takes) is pinned by forked-abort tests under ENTK_LOCK_RANK_CHECK.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_rank.hpp"
#include "common/mutex.hpp"
#include "core/workload_file.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

#if defined(ENTK_LOCK_RANK_CHECK)
#include <csignal>
#include <cstdio>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace entk::serve {
namespace {

core::WorkloadSpec bag_spec(std::size_t units, Count cores = 2) {
  std::string text = "backend = sim\nmachine = localhost\ncores = " +
                     std::to_string(cores) +
                     "\nruntime = 36000\npattern = bag\ntasks = " +
                     std::to_string(units) +
                     "\n\n[task]\nkernel = misc.sleep\nduration = 1\n";
  auto spec = core::parse_workload(text);
  EXPECT_TRUE(spec.ok()) << spec.status().to_string();
  return spec.take();
}

/// A service plus a drive thread, torn down in order.
struct Driven {
  std::unique_ptr<Service> service;
  std::thread driver;

  explicit Driven(ServiceConfig config) {
    auto created = Service::create(std::move(config));
    EXPECT_TRUE(created.ok()) << created.status().to_string();
    service = created.take();
    driver = std::thread([this] { service->run(); });
  }
  ~Driven() {
    service->shutdown();
    driver.join();
  }
};

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(ServeService, QueueBoundShedsWithResourceExhausted) {
  ServiceConfig config;
  config.queue_capacity = 2;
  auto service = Service::create(config);
  ASSERT_TRUE(service.ok());
  // No drive thread: everything stays QUEUED, so the bound is exact.
  ASSERT_TRUE(service.value()->submit("alice", bag_spec(4)).ok());
  ASSERT_TRUE(service.value()->submit("alice", bag_spec(4)).ok());
  auto third = service.value()->submit("alice", bag_spec(4));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), Errc::kResourceExhausted);

  const ServiceStats stats = service.value()->stats();
  EXPECT_EQ(stats.queue_depth, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].rejected, 1u);
  service.value()->shutdown();
  service.value()->run();  // drains the shed queue and returns
}

TEST(ServeService, SubmitValidatesSpecAndTenant) {
  auto service = Service::create(ServiceConfig{});
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service.value()->submit("no spaces", bag_spec(4)).status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(service.value()->submit("", bag_spec(4)).status().code(),
            Errc::kInvalidArgument);
  core::WorkloadSpec wrong_machine = bag_spec(4);
  wrong_machine.machine = "xsede.comet";
  EXPECT_EQ(service.value()->submit("a", wrong_machine).status().code(),
            Errc::kInvalidArgument);
  core::WorkloadSpec too_wide = bag_spec(4);
  too_wide.cores = 100000;
  EXPECT_EQ(service.value()->submit("a", too_wide).status().code(),
            Errc::kInvalidArgument);
  service.value()->shutdown();
  service.value()->run();
}

// ---------------------------------------------------------------------
// Lifecycle and cancellation
// ---------------------------------------------------------------------

TEST(ServeService, WorkloadRunsToDoneWithFullStatusLifecycle) {
  Driven driven(ServiceConfig{});
  auto id = driven.service->submit("alice", bag_spec(8), "opt-run");
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  driven.service->drain();

  auto status = driven.service->status(id.value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().state, WorkloadState::kDone);
  EXPECT_EQ(status.value().tenant, "alice");
  EXPECT_EQ(status.value().label, "opt-run");
  EXPECT_EQ(status.value().session,
            "serve.alice." + std::to_string(id.value()));
  EXPECT_EQ(status.value().dispatched_units, 8u);
  EXPECT_EQ(status.value().units_done, 8u);
  EXPECT_GE(status.value().submit_latency_seconds, 0.0);
  EXPECT_TRUE(status.value().outcome.is_ok());

  auto results = driven.service->results(id.value());
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().units_done, 8u);

  EXPECT_EQ(driven.service->status(9999).status().code(), Errc::kNotFound);
}

TEST(ServeService, ResultsBeforeTerminalIsFailedPrecondition) {
  ServiceConfig config;
  auto service = Service::create(config);
  ASSERT_TRUE(service.ok());
  auto id = service.value()->submit("alice", bag_spec(4));
  ASSERT_TRUE(id.ok());
  // No drive thread: still QUEUED.
  auto status = service.value()->status(id.value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().state, WorkloadState::kQueued);
  EXPECT_LT(status.value().submit_latency_seconds, 0.0);
  EXPECT_EQ(service.value()->results(id.value()).status().code(),
            Errc::kFailedPrecondition);
  service.value()->shutdown();
  service.value()->run();
}

TEST(ServeService, CancelQueuedIsSynchronous) {
  auto service = Service::create(ServiceConfig{});
  ASSERT_TRUE(service.ok());
  auto id = service.value()->submit("alice", bag_spec(4));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.value()->cancel(id.value()).is_ok());
  auto status = service.value()->status(id.value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().state, WorkloadState::kCancelled);
  // Terminal: a second cancel refuses.
  EXPECT_EQ(service.value()->cancel(id.value()).code(),
            Errc::kFailedPrecondition);
  EXPECT_EQ(service.value()->stats().cancelled, 1u);
  service.value()->shutdown();
  service.value()->run();
}

TEST(ServeService, CancelRunningAbortsInFlightUnits) {
  ServiceConfig config;
  // A one-unit in-flight cap turns the big bag into a long trickle:
  // the workload stays RUNNING for thousands of drive passes, so the
  // cancel below lands mid-run deterministically.
  TenantConfig slow;
  slow.max_inflight_units = 1;
  config.default_tenant = slow;
  Driven driven(std::move(config));
  auto id = driven.service->submit("alice", bag_spec(20000));
  ASSERT_TRUE(id.ok());
  while (true) {
    auto status = driven.service->status(id.value());
    ASSERT_TRUE(status.ok());
    if (status.value().state == WorkloadState::kRunning &&
        status.value().dispatched_units > 0) {
      break;
    }
    std::this_thread::yield();
  }
  ASSERT_TRUE(driven.service->cancel(id.value()).is_ok());
  driven.service->drain();
  auto results = driven.service->results(id.value());
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().state, WorkloadState::kCancelled);
  EXPECT_EQ(results.value().outcome.code(), Errc::kCancelled);
  // Far fewer than the full bag actually dispatched.
  EXPECT_LT(results.value().dispatched_units, 20000u);
  EXPECT_EQ(driven.service->stats().cancelled, 1u);
}

TEST(ServeService, ShutdownShedsQueuedAndAbortsRunning) {
  ServiceConfig config;
  TenantConfig slow;
  slow.max_inflight_units = 1;
  config.default_tenant = slow;
  config.max_active_sessions = 1;
  Driven driven(std::move(config));
  auto running = driven.service->submit("alice", bag_spec(20000));
  auto queued = driven.service->submit("alice", bag_spec(4));
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(queued.ok());
  while (true) {
    auto status = driven.service->status(running.value());
    ASSERT_TRUE(status.ok());
    if (status.value().state == WorkloadState::kRunning) break;
    std::this_thread::yield();
  }
  driven.service->shutdown();
  driven.driver.join();
  driven.driver = std::thread([] {});  // destructor-friendly stub
  EXPECT_EQ(driven.service->status(running.value()).value().state,
            WorkloadState::kCancelled);
  EXPECT_EQ(driven.service->status(queued.value()).value().state,
            WorkloadState::kCancelled);
  // Shut down: further submissions are UNAVAILABLE.
  EXPECT_EQ(driven.service->submit("alice", bag_spec(4)).status().code(),
            Errc::kCancelled);
}

// ---------------------------------------------------------------------
// Quotas and fair-share
// ---------------------------------------------------------------------

TEST(ServeService, TenantSessionQuotaCapsConcurrency) {
  ServiceConfig config;
  config.max_active_sessions = 8;
  Driven driven(std::move(config));
  TenantConfig quota;
  quota.max_sessions = 1;
  ASSERT_TRUE(driven.service->configure_tenant("alice", quota).is_ok());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = driven.service->submit("alice", bag_spec(16));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  driven.service->drain();
  const ServiceStats stats = driven.service->stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  // The cap held at every instant, yet everything still completed.
  EXPECT_EQ(stats.tenants[0].peak_active_sessions, 1u);
  EXPECT_EQ(stats.completed, 6u);
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(driven.service->status(id).value().state,
              WorkloadState::kDone);
  }
}

TEST(ServeService, WeightedFairShareTracksWeightsUnderContention) {
  ServiceConfig config;
  config.max_active_sessions = 8;
  config.drr_quantum = 4;
  // A tight global budget keeps both tenants contending all run.
  config.max_inflight_total = 16;
  Driven driven(std::move(config));
  TenantConfig light;
  light.weight = 1.0;
  TenantConfig heavy;
  heavy.weight = 3.0;
  ASSERT_TRUE(driven.service->configure_tenant("light", light).is_ok());
  ASSERT_TRUE(driven.service->configure_tenant("heavy", heavy).is_ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(driven.service->submit("light", bag_spec(64)).ok());
    ASSERT_TRUE(driven.service->submit("heavy", bag_spec(64)).ok());
  }
  driven.service->drain();
  const ServiceStats stats = driven.service->stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  double contended_heavy = 0.0;
  double contended_light = 0.0;
  for (const TenantStats& tenant : stats.tenants) {
    if (tenant.name == "heavy") {
      contended_heavy =
          static_cast<double>(tenant.contended_dispatched_units);
    } else {
      contended_light =
          static_cast<double>(tenant.contended_dispatched_units);
    }
  }
  ASSERT_GT(contended_light, 0.0);
  ASSERT_GT(contended_heavy, 0.0);
  // 3x the weight -> ~3x the contended dispatch (round granularity
  // and the drain tail leave a wide but meaningful band).
  const double ratio = contended_heavy / contended_light;
  EXPECT_GT(ratio, 1.8) << "heavy " << contended_heavy << " light "
                        << contended_light;
  EXPECT_LT(ratio, 4.5) << "heavy " << contended_heavy << " light "
                        << contended_light;
  EXPECT_EQ(stats.completed, 16u);
}

// ---------------------------------------------------------------------
// Protocol entry point (socket-free)
// ---------------------------------------------------------------------

TEST(ServeService, HandleLineDrivesTheFullVerbSet) {
  Driven driven(ServiceConfig{});
  const std::string submit_line =
      R"({"verb":"SUBMIT","tenant":"alice","name":"opt",)"
      R"("workload":"backend = sim\nmachine = localhost\ncores = 2\n)"
      R"(runtime = 600\npattern = bag\ntasks = 4\n\n[task]\n)"
      R"(kernel = misc.sleep\nduration = 1\n"})";
  auto submit = Json::parse(driven.service->handle_line(submit_line));
  ASSERT_TRUE(submit.ok());
  ASSERT_TRUE(submit.value().find("ok")->as_bool())
      << driven.service->handle_line(submit_line);
  const auto id = static_cast<std::uint64_t>(
      submit.value().find("id")->as_number());
  driven.service->drain();

  auto status = Json::parse(driven.service->handle_line(
      R"({"verb":"STATUS","id":)" + std::to_string(id) + "}"));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().find("state")->as_string(), "DONE");
  EXPECT_EQ(status.value().find("units_done")->as_number(), 4.0);

  auto results = Json::parse(driven.service->handle_line(
      R"({"verb":"RESULTS","id":)" + std::to_string(id) + "}"));
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().find("outcome")->as_string(), "ok");

  auto stats = Json::parse(
      driven.service->handle_line(R"({"verb":"STATS"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().find("completed")->as_number(), 1.0);
  ASSERT_TRUE(stats.value().find("tenants")->is_array());

  auto missing = Json::parse(
      driven.service->handle_line(R"({"verb":"CANCEL","id":999})"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().find("error")->as_string(), "NOT_FOUND");

  auto bad_workload = Json::parse(driven.service->handle_line(
      R"({"verb":"SUBMIT","tenant":"a","workload":"not a workload"})"));
  ASSERT_TRUE(bad_workload.ok());
  EXPECT_EQ(bad_workload.value().find("error")->as_string(),
            "BAD_REQUEST");

  auto shutdown = Json::parse(
      driven.service->handle_line(R"({"verb":"SHUTDOWN"})"));
  ASSERT_TRUE(shutdown.ok());
  EXPECT_EQ(shutdown.value().find("state")->as_string(),
            "SHUTTING_DOWN");
  auto late = Json::parse(driven.service->handle_line(submit_line));
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late.value().find("error")->as_string(), "UNAVAILABLE");
}

// ---------------------------------------------------------------------
// Serve lock order
// ---------------------------------------------------------------------

TEST(ServeLockRank, ServiceMutexesAreOutermost) {
  // The two service locks sit below every runtime rank, mailbox
  // before registry; entk-analyze --locks checks the code against
  // this table, and these assertions pin the table itself.
  EXPECT_LT(static_cast<int>(LockRank::kServeMailbox),
            static_cast<int>(LockRank::kServeRegistry));
  EXPECT_LT(static_cast<int>(LockRank::kServeRegistry),
            static_cast<int>(LockRank::kRuntime));
  EXPECT_LT(static_cast<int>(LockRank::kServeRegistry),
            static_cast<int>(LockRank::kGraphExecutor));
  EXPECT_LT(static_cast<int>(LockRank::kServeRegistry),
            static_cast<int>(LockRank::kUnitManager));
  EXPECT_LT(static_cast<int>(LockRank::kServeRegistry),
            static_cast<int>(LockRank::kMetricsRegistry));
  EXPECT_STREQ(lock_rank_name(LockRank::kServeMailbox), "kServeMailbox");
  EXPECT_STREQ(lock_rank_name(LockRank::kServeRegistry),
               "kServeRegistry");
}

#if defined(ENTK_LOCK_RANK_CHECK)

template <typename Body>
int exit_status_of(Body body) {
  const pid_t pid = fork();
  if (pid == 0) {
    std::freopen("/dev/null", "w", stderr);
    body();
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

TEST(ServeLockRank, MailboxThenRegistryPasses) {
  Mutex mailbox(LockRank::kServeMailbox);
  Mutex registry(LockRank::kServeRegistry);
  MutexLock outer(mailbox);
  MutexLock inner(registry);
  EXPECT_EQ(lockrank::held_count(), 2);
}

TEST(ServeLockRank, RegistryThenMailboxAborts) {
  const int status = exit_status_of([] {
    Mutex mailbox(LockRank::kServeMailbox);
    Mutex registry(LockRank::kServeRegistry);
    MutexLock outer(registry);
    MutexLock inner(mailbox);  // inverted service order: must abort
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

TEST(ServeLockRank, RuntimeLockUnderRegistryPasses) {
  // The drive thread takes runtime locks while holding the registry
  // (snapshot updates mid-flush): that nesting must stay legal.
  Mutex registry(LockRank::kServeRegistry);
  Mutex graph(LockRank::kGraphExecutor);
  MutexLock outer(registry);
  MutexLock inner(graph);
  EXPECT_EQ(lockrank::held_count(), 2);
}

TEST(ServeLockRank, RegistryUnderRuntimeLockAborts) {
  const int status = exit_status_of([] {
    Mutex registry(LockRank::kServeRegistry);
    Mutex graph(LockRank::kGraphExecutor);
    MutexLock outer(graph);
    MutexLock inner(registry);  // service lock under a runtime lock
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

#endif  // ENTK_LOCK_RANK_CHECK

}  // namespace
}  // namespace entk::serve
