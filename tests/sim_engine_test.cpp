// Unit tests for the discrete-event engine, cluster and batch queue.
#include <gtest/gtest.h>

#include <deque>

#include "sim/batch.hpp"
#include "sim/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"

namespace entk::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(Engine, DispatchesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, SimultaneousEventsFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule(1.0, [&, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsMayScheduleEvents) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule(1.0, [&] {
    engine.schedule(2.0, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Engine, CancelPreventsDispatch) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // second cancel is a no-op
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine engine;
  EXPECT_FALSE(engine.cancel(9999));
}

TEST(Engine, RunUntilAdvancesClockPastDrainedQueue) {
  Engine engine;
  int fired = 0;
  engine.schedule(1.0, [&] { ++fired; });
  engine.schedule(5.0, [&] { ++fired; });
  engine.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  engine.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule(1.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(0.5, [] {}), std::logic_error);
  EXPECT_THROW(engine.schedule(-1.0, [] {}), std::logic_error);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
}

// ---------------------------------------------------------------- machines

TEST(Engine, CancelChurnDoesNotBloat) {
  // The cancelled-event regression the pool rework fixed: cancelled
  // timers used to linger in the queue (and its side index) until
  // popped, so schedule/cancel churn — the agent's walltime-watchdog
  // idiom — grew memory without bound. With true O(log n) removal and
  // slot recycling, 100k churned timers must leave nothing pending and
  // the slab must stay at the size of the outstanding window.
  Engine engine;
  constexpr std::size_t kTimers = 100000;
  constexpr std::size_t kWindow = 1000;
  std::deque<EventId> outstanding;
  for (std::size_t i = 0; i < kTimers; ++i) {
    outstanding.push_back(engine.schedule(3600.0, [] {}));
    if (outstanding.size() > kWindow) {
      EXPECT_TRUE(engine.cancel(outstanding.front()));
      outstanding.pop_front();
    }
  }
  while (!outstanding.empty()) {
    EXPECT_TRUE(engine.cancel(outstanding.front()));
    outstanding.pop_front();
  }
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_LE(engine.pool_slots(), kWindow + 1);

  // The engine still dispatches normally after the churn.
  bool fired = false;
  engine.schedule(1.0, [&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.dispatched_events(), 1u);
}

TEST(Engine, StaleHandleNeverCancelsSlotReuse) {
  Engine engine;
  bool first = false;
  const EventId a = engine.schedule(1.0, [&] { first = true; });
  engine.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(engine.cancel(a));  // already fired

  // The next schedule recycles the fired slot; the stale handle must
  // be rejected by its generation, not cancel the new occupant.
  bool second = false;
  const EventId b = engine.schedule(1.0, [&] { second = true; });
  EXPECT_EQ(engine.pool_slots(), 1u);  // same slot, new generation
  EXPECT_NE(a, b);
  EXPECT_FALSE(engine.cancel(a));
  engine.run();
  EXPECT_TRUE(second);
}

TEST(Engine, ReserveDoesNotDisturbPendingEvents) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.reserve(4096);  // capacity only: no new slots materialize
  EXPECT_EQ(engine.pool_slots(), 2u);
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(MachineCatalog, HasThePaperPlatforms) {
  const auto catalog = MachineCatalog::with_builtin_profiles();
  EXPECT_TRUE(catalog.contains("xsede.comet"));
  EXPECT_TRUE(catalog.contains("xsede.stampede"));
  EXPECT_TRUE(catalog.contains("lsu.supermic"));
  EXPECT_TRUE(catalog.contains("localhost"));

  const auto comet = catalog.find("xsede.comet").value();
  EXPECT_EQ(comet.nodes, 1984);
  EXPECT_EQ(comet.cores_per_node, 24);
  EXPECT_DOUBLE_EQ(comet.memory_per_node_gb, 120.0);

  const auto stampede = catalog.find("xsede.stampede").value();
  EXPECT_EQ(stampede.nodes, 6400);
  EXPECT_EQ(stampede.cores_per_node, 16);

  const auto supermic = catalog.find("lsu.supermic").value();
  EXPECT_EQ(supermic.nodes, 360);
  EXPECT_EQ(supermic.cores_per_node, 20);
}

TEST(MachineCatalog, RejectsDuplicatesAndUnknownLookups) {
  auto catalog = MachineCatalog::with_builtin_profiles();
  EXPECT_EQ(catalog.register_machine(comet_profile()).code(),
            Errc::kAlreadyExists);
  EXPECT_EQ(catalog.find("does-not-exist").status().code(),
            Errc::kNotFound);
}

TEST(MachineProfile, ValidatesShape) {
  MachineProfile profile = localhost_profile();
  profile.nodes = 0;
  EXPECT_EQ(profile.validate().code(), Errc::kInvalidArgument);
  profile = localhost_profile();
  profile.performance_factor = -1.0;
  EXPECT_EQ(profile.validate().code(), Errc::kInvalidArgument);
  profile = localhost_profile();
  profile.staging_bandwidth_mb_per_s = 0.0;
  EXPECT_EQ(profile.validate().code(), Errc::kInvalidArgument);
}

// ----------------------------------------------------------------- cluster

TEST(Cluster, AllocatesAndReleases) {
  Cluster cluster(localhost_profile());  // 4 nodes x 8 cores
  EXPECT_EQ(cluster.total_cores(), 32);
  EXPECT_EQ(cluster.free_cores(), 32);

  auto a = cluster.allocate(10);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().total_cores(), 10);
  EXPECT_EQ(cluster.free_cores(), 22);

  auto b = cluster.allocate(22);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cluster.free_cores(), 0);

  EXPECT_EQ(cluster.allocate(1).status().code(), Errc::kResourceExhausted);

  cluster.release(a.value());
  EXPECT_EQ(cluster.free_cores(), 10);
  cluster.release(b.value());
  EXPECT_EQ(cluster.free_cores(), 32);
}

TEST(Cluster, DoubleReleaseThrows) {
  Cluster cluster(localhost_profile());
  auto a = cluster.allocate(4);
  ASSERT_TRUE(a.ok());
  cluster.release(a.value());
  EXPECT_THROW(cluster.release(a.value()), std::logic_error);
}

TEST(Cluster, RejectsNonPositiveRequests) {
  Cluster cluster(localhost_profile());
  EXPECT_EQ(cluster.allocate(0).status().code(), Errc::kInvalidArgument);
  EXPECT_EQ(cluster.allocate(-3).status().code(), Errc::kInvalidArgument);
}

TEST(Cluster, PrefersWholeNodes) {
  Cluster cluster(localhost_profile());  // 8 cores per node
  auto a = cluster.allocate(16);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a.value().slices.size(), 2u);
  for (const auto& slice : a.value().slices) {
    EXPECT_EQ(slice.cores, 8);
  }
}

// ------------------------------------------------------------- batch queue

class BatchQueueTest : public ::testing::Test {
 protected:
  BatchQueueTest() : cluster_(localhost_profile()), batch_(engine_, cluster_) {}

  Engine engine_;
  Cluster cluster_;
  BatchQueue batch_;
};

TEST_F(BatchQueueTest, JobStartsAfterQueueWaitAndCompletes) {
  bool started = false;
  BatchJobState end_state = BatchJobState::kQueued;
  BatchJobRequest request;
  request.cores = 8;
  request.walltime = 100.0;
  request.on_start = [&](const Allocation& allocation) {
    started = true;
    EXPECT_EQ(allocation.total_cores(), 8);
  };
  request.on_end = [&](BatchJobState state) { end_state = state; };
  auto id = batch_.submit(std::move(request));
  ASSERT_TRUE(id.ok());
  engine_.run_until(1.0);  // past queue wait, before the walltime
  EXPECT_TRUE(started);
  EXPECT_EQ(cluster_.free_cores(), 24);

  ASSERT_TRUE(batch_.complete(id.value()).is_ok());
  EXPECT_EQ(end_state, BatchJobState::kCompleted);
  EXPECT_EQ(cluster_.free_cores(), 32);
}

TEST_F(BatchQueueTest, WalltimeExpiryReclaimsCores) {
  BatchJobState end_state = BatchJobState::kQueued;
  BatchJobRequest request;
  request.cores = 4;
  request.walltime = 10.0;
  request.on_end = [&](BatchJobState state) { end_state = state; };
  auto id = batch_.submit(std::move(request));
  ASSERT_TRUE(id.ok());
  engine_.run();
  EXPECT_EQ(end_state, BatchJobState::kExpired);
  EXPECT_EQ(cluster_.free_cores(), 32);
  EXPECT_EQ(batch_.state(id.value()).value(), BatchJobState::kExpired);
}

TEST_F(BatchQueueTest, FifoOrderingBlocksOversizedHead) {
  // Job A takes the whole machine; job B (small) must wait behind the
  // queued job C that cannot fit (strict FIFO, no backfill).
  std::vector<char> starts;
  auto submit = [&](char tag, Count cores, Duration walltime) {
    BatchJobRequest request;
    request.cores = cores;
    request.walltime = walltime;
    request.on_start = [&starts, tag](const Allocation&) {
      starts.push_back(tag);
    };
    auto id = batch_.submit(std::move(request));
    EXPECT_TRUE(id.ok());
    return id.value();
  };
  const auto a = submit('A', 32, 50.0);
  const auto c = submit('C', 32, 50.0);
  const auto b = submit('B', 1, 50.0);
  (void)b;
  engine_.run_until(5.0);
  ASSERT_EQ(starts, (std::vector<char>{'A'}));
  ASSERT_TRUE(batch_.complete(a).is_ok());
  engine_.run_until(10.0);
  // C starts when A releases; B still behind C.
  EXPECT_EQ(starts, (std::vector<char>{'A', 'C'}));
  ASSERT_TRUE(batch_.complete(c).is_ok());
  engine_.run();
  EXPECT_EQ(starts, (std::vector<char>{'A', 'C', 'B'}));
}

TEST_F(BatchQueueTest, CancelQueuedAndRunning) {
  BatchJobState end_a = BatchJobState::kQueued;
  BatchJobRequest request_a;
  request_a.cores = 2;
  request_a.walltime = 100.0;
  request_a.on_end = [&](BatchJobState state) { end_a = state; };
  auto a = batch_.submit(std::move(request_a));
  ASSERT_TRUE(a.ok());
  // Cancel while still in queue-wait.
  ASSERT_TRUE(batch_.cancel(a.value()).is_ok());
  EXPECT_EQ(end_a, BatchJobState::kCancelled);

  BatchJobRequest request_b;
  request_b.cores = 2;
  request_b.walltime = 100.0;
  auto b = batch_.submit(std::move(request_b));
  ASSERT_TRUE(b.ok());
  engine_.run_until(5.0);
  ASSERT_EQ(batch_.state(b.value()).value(), BatchJobState::kRunning);
  ASSERT_TRUE(batch_.cancel(b.value()).is_ok());
  EXPECT_EQ(cluster_.free_cores(), 32);
  EXPECT_EQ(batch_.cancel(b.value()).code(), Errc::kFailedPrecondition);
}

TEST_F(BatchQueueTest, RejectsImpossibleJobs) {
  BatchJobRequest request;
  request.cores = 33;  // machine has 32
  request.walltime = 10.0;
  EXPECT_EQ(batch_.submit(std::move(request)).status().code(),
            Errc::kResourceExhausted);
  BatchJobRequest zero;
  zero.cores = 0;
  zero.walltime = 10.0;
  EXPECT_EQ(batch_.submit(std::move(zero)).status().code(),
            Errc::kInvalidArgument);
  BatchJobRequest no_time;
  no_time.cores = 1;
  no_time.walltime = 0.0;
  EXPECT_EQ(batch_.submit(std::move(no_time)).status().code(),
            Errc::kInvalidArgument);
}

TEST_F(BatchQueueTest, QueueWaitScalesWithRequestedNodes) {
  MachineProfile profile = localhost_profile();
  profile.name = "waity";
  profile.batch_base_wait = 10.0;
  profile.batch_wait_per_node = 5.0;
  Cluster cluster(profile);
  BatchQueue batch(engine_, cluster);

  double small_started = -1.0;
  double large_started = -1.0;
  BatchJobRequest small;
  small.cores = 1;  // 1 node
  small.walltime = 1000.0;
  small.on_start = [&](const Allocation&) { small_started = engine_.now(); };
  BatchJobRequest large;
  large.cores = 24;  // 3 nodes
  large.walltime = 1000.0;
  large.on_start = [&](const Allocation&) { large_started = engine_.now(); };
  ASSERT_TRUE(batch.submit(std::move(small)).ok());
  ASSERT_TRUE(batch.submit(std::move(large)).ok());
  engine_.run_until(100.0);
  EXPECT_DOUBLE_EQ(small_started, 15.0);  // 10 + 5*1
  EXPECT_DOUBLE_EQ(large_started, 25.0);  // 10 + 5*3
}

}  // namespace
}  // namespace entk::sim
