// Tests of the batch backfill policy, the background-load generator
// and the utilization analysis.
#include <gtest/gtest.h>

#include "core/entk.hpp"
#include "common/uid.hpp"
#include "pilot/pilot_manager.hpp"
#include "sim/load_generator.hpp"

namespace entk {
namespace {

TEST(BatchBackfill, SmallJobsJumpABlockedHead) {
  sim::Engine engine;
  sim::Cluster cluster(sim::localhost_profile());  // 32 cores
  sim::BatchQueue batch(engine, cluster, sim::BatchPolicy::kEasyBackfill);

  std::vector<char> starts;
  auto submit = [&](char tag, Count cores) {
    sim::BatchJobRequest request;
    request.cores = cores;
    request.walltime = 1000.0;
    request.on_start = [&starts, tag](const sim::Allocation&) {
      starts.push_back(tag);
    };
    auto id = batch.submit(std::move(request));
    EXPECT_TRUE(id.ok());
    return id.value();
  };
  const auto a = submit('A', 24);  // runs
  submit('B', 16);                 // blocked: only 8 cores free
  submit('C', 8);                  // backfills into the idle 8
  engine.run_until(5.0);
  EXPECT_EQ(starts, (std::vector<char>{'A', 'C'}));
  ASSERT_TRUE(batch.complete(a).is_ok());
  engine.run_until(10.0);
  EXPECT_EQ(starts, (std::vector<char>{'A', 'C', 'B'}));
}

TEST(BatchBackfill, FifoStillBlocksWithoutTheFlag) {
  sim::Engine engine;
  sim::Cluster cluster(sim::localhost_profile());
  sim::BatchQueue batch(engine, cluster);  // default kFifo
  std::vector<char> starts;
  auto submit = [&](char tag, Count cores) {
    sim::BatchJobRequest request;
    request.cores = cores;
    request.walltime = 1000.0;
    request.on_start = [&starts, tag](const sim::Allocation&) {
      starts.push_back(tag);
    };
    EXPECT_TRUE(batch.submit(std::move(request)).ok());
  };
  submit('A', 24);
  submit('B', 16);
  submit('C', 8);
  engine.run_until(5.0);
  EXPECT_EQ(starts, (std::vector<char>{'A'}));  // C must wait behind B
}

TEST(LoadGenerator, ProducesAndRetiresJobs) {
  sim::Engine engine;
  sim::Cluster cluster(sim::localhost_profile());
  sim::BatchQueue batch(engine, cluster, sim::BatchPolicy::kEasyBackfill);
  sim::LoadGenerator::Options options;
  options.arrival_rate = 1.0 / 30.0;  // one job every ~30 s
  options.min_runtime = 10.0;
  options.max_runtime = 100.0;
  options.horizon = 3600.0;
  sim::LoadGenerator generator(engine, batch, cluster, options);
  generator.start();
  engine.run_until(2.0 * options.horizon);
  engine.run();
  EXPECT_GT(generator.jobs_submitted(), 50u);   // ~120 expected
  EXPECT_EQ(generator.jobs_finished(), generator.jobs_submitted());
  // Everything retired: the machine is idle again.
  EXPECT_EQ(cluster.free_cores(), cluster.total_cores());
}

TEST(LoadGenerator, DeterministicForFixedSeed) {
  auto run_once = [] {
    sim::Engine engine;
    sim::Cluster cluster(sim::localhost_profile());
    sim::BatchQueue batch(engine, cluster);
    sim::LoadGenerator::Options options;
    options.arrival_rate = 1.0 / 20.0;
    options.horizon = 1000.0;
    options.seed = 99;
    sim::LoadGenerator generator(engine, batch, cluster, options);
    generator.start();
    engine.run();
    return generator.jobs_submitted();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(LoadGenerator, BackgroundLoadDelaysThePilot) {
  // The same pilot waits longer on a busy machine than on an idle one.
  auto pilot_queue_wait = [](bool busy) {
    auto machine = sim::localhost_profile();
    pilot::SimBackend backend(machine, sim::BatchPolicy::kEasyBackfill);
    std::unique_ptr<sim::LoadGenerator> generator;
    if (busy) {
      sim::LoadGenerator::Options options;
      options.arrival_rate = 1.0;      // a job per second: saturation
      options.min_cores = 8;
      options.max_cores = 32;
      options.min_runtime = 50.0;
      options.max_runtime = 200.0;
      options.horizon = 500.0;
      generator = std::make_unique<sim::LoadGenerator>(
          backend.engine(), backend.batch(), backend.cluster(), options);
      generator->start();
      backend.engine().run_until(100.0);  // let the backlog build
    }
    pilot::PilotManager manager(backend);
    pilot::PilotDescription description;
    description.resource = "localhost";
    description.cores = 16;
    description.runtime = 10000.0;
    auto pilot = manager.submit_pilot(description);
    EXPECT_TRUE(pilot.ok());
    EXPECT_TRUE(manager.wait_active(pilot.value()).is_ok());
    return pilot.value()->startup_time();
  };
  const Duration idle_wait = pilot_queue_wait(false);
  const Duration busy_wait = pilot_queue_wait(true);
  EXPECT_GT(busy_wait, idle_wait + 10.0);
}

// ----------------------------------------------------------- utilization

pilot::ComputeUnitPtr fake_executed_unit(const Clock& clock, Count cores,
                                         sim::Engine& engine,
                                         Duration start, Duration stop) {
  pilot::UnitDescription description;
  description.name = "util.unit";
  description.executable = "x";
  description.cores = cores;
  description.uses_mpi = cores > 1;
  description.simulated_duration = stop - start;
  auto unit = std::make_shared<pilot::ComputeUnit>(
      next_uid("utilunit"), std::move(description), clock);
  (void)unit->advance_state(pilot::UnitState::kPendingExecution);
  engine.schedule_at(start, [unit] {
    (void)unit->advance_state(pilot::UnitState::kExecuting);
  });
  engine.schedule_at(stop, [unit] {
    (void)unit->advance_state(pilot::UnitState::kDone);
  });
  return unit;
}

TEST(Utilization, SweepLineMatchesHandComputation) {
  sim::Engine engine;
  std::vector<pilot::ComputeUnitPtr> units;
  // [0, 10) x 4 cores, [5, 15) x 2 cores, [20, 30) x 8 cores.
  units.push_back(fake_executed_unit(engine.clock(), 4, engine, 0.0, 10.0));
  units.push_back(fake_executed_unit(engine.clock(), 2, engine, 5.0, 15.0));
  units.push_back(
      fake_executed_unit(engine.clock(), 8, engine, 20.0, 30.0));
  engine.run();

  const auto report = core::compute_utilization(units, 8);
  EXPECT_EQ(report.executed_units, 3u);
  EXPECT_DOUBLE_EQ(report.window, 30.0);
  EXPECT_DOUBLE_EQ(report.busy_core_seconds, 40.0 + 20.0 + 80.0);
  EXPECT_EQ(report.peak_concurrent_cores, 8);
  EXPECT_NEAR(report.average_utilization, 140.0 / (8.0 * 30.0), 1e-12);
}

TEST(Utilization, EmptyAndNonExecutedUnits) {
  const auto empty = core::compute_utilization({}, 4);
  EXPECT_EQ(empty.executed_units, 0u);
  EXPECT_DOUBLE_EQ(empty.average_utilization, 0.0);

  WallClock clock;
  pilot::UnitDescription description;
  description.executable = "x";
  auto never_ran = std::make_shared<pilot::ComputeUnit>(
      "unit.neverran", description, clock);
  const auto report = core::compute_utilization({never_ran}, 4);
  EXPECT_EQ(report.executed_units, 0u);
}

TEST(Utilization, FullRunOnSimBackend) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  core::ResourceOptions options;
  options.cores = 8;
  core::ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());
  core::BagOfTasks pattern(16, [](const core::StageContext&) {
    core::TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration", 10.0);
    return spec;
  });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  const auto utilization =
      core::compute_utilization(report.value().units, options.cores);
  EXPECT_EQ(utilization.executed_units, 16u);
  EXPECT_EQ(utilization.peak_concurrent_cores, 8);
  // Two back-to-back waves of identical tasks: high utilization.
  EXPECT_GT(utilization.average_utilization, 0.9);
}

}  // namespace
}  // namespace entk
