// Tests of the static-analysis substrate behind entk-lint and
// entk-analyze: the token-aware lexer, the shared suppression
// grammar, the lock-order analyzer (against the seeded corpus in
// tests/analysis_corpus/) and the module-layering checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/cpp_lexer.hpp"
#include "analysis/include_graph.hpp"
#include "analysis/lock_graph.hpp"
#include "analysis/suppressions.hpp"

namespace entk::analysis {
namespace {

#ifndef ANALYSIS_CORPUS_DIR
#error "ANALYSIS_CORPUS_DIR must point at tests/analysis_corpus"
#endif

std::string corpus(const std::string& relative) {
  return std::string(ANALYSIS_CORPUS_DIR) + "/" + relative;
}

LexedFile lex_corpus(const std::string& relative) {
  auto lexed = lex_file(corpus(relative));
  EXPECT_TRUE(lexed.ok()) << lexed.status().to_string();
  return lexed.take();
}

bool has_identifier(const LexedFile& file, const std::string& name) {
  return std::any_of(file.tokens.begin(), file.tokens.end(),
                     [&](const Token& t) {
                       return t.kind == TokKind::kIdentifier &&
                              t.text == name;
                     });
}

// ----------------------------------------------------------- lexer

TEST(CppLexer, TokensCarryPositionsAndKinds) {
  const LexedFile file = lex_source("test.cpp",
                                    "int main() {\n"
                                    "  return 42;\n"
                                    "}\n");
  ASSERT_GE(file.tokens.size(), 7u);
  EXPECT_EQ(file.tokens[0].text, "int");
  EXPECT_EQ(file.tokens[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(file.tokens[0].line, 1);
  EXPECT_EQ(file.tokens[0].column, 1);
  const auto num = std::find_if(
      file.tokens.begin(), file.tokens.end(),
      [](const Token& t) { return t.kind == TokKind::kNumber; });
  ASSERT_NE(num, file.tokens.end());
  EXPECT_EQ(num->text, "42");
  EXPECT_EQ(num->line, 2);
}

TEST(CppLexer, StringAndCommentBodiesProduceNoTokens) {
  const LexedFile file = lex_source(
      "decoy.cpp",
      "// comment std::mutex here\n"
      "/* block std::lock_guard */\n"
      "const char* s = \"std::mutex inside literal\";\n"
      "const char* r = R\"x(raw std::scoped_lock)x\";\n"
      "char c = 'm';\n");
  EXPECT_FALSE(has_identifier(file, "mutex"));
  EXPECT_FALSE(has_identifier(file, "lock_guard"));
  EXPECT_FALSE(has_identifier(file, "scoped_lock"));
  // The literals still exist as single opaque tokens.
  const auto strings = std::count_if(
      file.tokens.begin(), file.tokens.end(),
      [](const Token& t) { return t.kind == TokKind::kString; });
  EXPECT_EQ(strings, 2);
  // code_lines keeps the geometry but blanks the decoy text.
  EXPECT_EQ(file.code_lines[2].find("std::mutex"), std::string::npos);
  EXPECT_EQ(file.code_lines.size(), file.raw_lines.size());
}

TEST(CppLexer, IncludesAreRecordedButNotTokenized) {
  const LexedFile file = lex_source("inc.cpp",
                                    "#include \"common/mutex.hpp\"\n"
                                    "#include <vector>\n"
                                    "#define NOISE std::mutex\n"
                                    "int x = 0;\n");
  ASSERT_EQ(file.includes.size(), 2u);
  EXPECT_EQ(file.includes[0].path, "common/mutex.hpp");
  EXPECT_FALSE(file.includes[0].angled);
  EXPECT_EQ(file.includes[0].line, 1);
  EXPECT_EQ(file.includes[1].path, "vector");
  EXPECT_TRUE(file.includes[1].angled);
  // Directive bodies (the #define) stay out of the token stream.
  EXPECT_FALSE(has_identifier(file, "mutex"));
  EXPECT_TRUE(has_identifier(file, "x"));
}

TEST(CppLexer, CorpusDecoyHidesEveryBannedToken) {
  const LexedFile file = lex_corpus("lint/string_decoy.cpp");
  for (const char* banned :
       {"mutex", "lock_guard", "unique_lock", "scoped_lock",
        "condition_variable", "steady_clock", "system_clock",
        "high_resolution_clock", "detach", "sleep_for", "sleep_until",
        "namespace", "ofstream", "fopen", "Metrics", "TraceRecorder",
        "next_uid"}) {
    EXPECT_FALSE(has_identifier(file, banned)) << banned;
  }
}

// ----------------------------------------------------- suppressions

TEST(Suppressions, TrailingMarkerCoversItsOwnLine) {
  const LexedFile file = lex_source(
      "s.cpp",
      "int a = 1;\n"
      "int b = 2;  // entk-lint: allow(raw-mutex)\n"
      "int c = 3;\n");
  const SuppressionSet set = scan_suppressions(file, "entk-lint");
  EXPECT_FALSE(set.allows("raw-mutex", 1));
  EXPECT_TRUE(set.allows("raw-mutex", 2));
  EXPECT_FALSE(set.allows("raw-mutex", 3));
  EXPECT_FALSE(set.allows("other-rule", 2));
}

TEST(Suppressions, StandaloneMarkerCoversWholeFollowingStatement) {
  // The satellite fix: a standalone marker must cover a multi-line
  // statement through its terminating ';', not just the next line.
  const LexedFile file = lex_source(
      "s.cpp",
      "// entk-lint: allow(raw-mutex)\n"
      "some_call(first,\n"
      "          second,\n"
      "          third);\n"
      "after();\n");
  const SuppressionSet set = scan_suppressions(file, "entk-lint");
  EXPECT_TRUE(set.allows("raw-mutex", 2));
  EXPECT_TRUE(set.allows("raw-mutex", 3));
  EXPECT_TRUE(set.allows("raw-mutex", 4));
  EXPECT_FALSE(set.allows("raw-mutex", 5));
}

TEST(Suppressions, JustificationTextMaySharePlacementWithMarker) {
  // The audited-globals idiom: prose before the marker in the same
  // comment, standalone placement covering the next statement.
  const LexedFile file = lex_source(
      "s.cpp",
      "// Aggregate metrics. entk-lint: allow(global-run-state)\n"
      "obs::Metrics::instance()\n"
      "    .counter(\"x\")\n"
      "    .add();\n"
      "after();\n");
  const SuppressionSet set = scan_suppressions(file, "entk-lint");
  EXPECT_TRUE(set.allows("global-run-state", 2));
  EXPECT_TRUE(set.allows("global-run-state", 4));
  EXPECT_FALSE(set.allows("global-run-state", 5));
}

TEST(Suppressions, FileMarkerCoversEverything) {
  const LexedFile file = lex_source(
      "s.cpp",
      "// entk-lint: allow-file(raw-clock)\n"
      "int late = 99;\n");
  const SuppressionSet set = scan_suppressions(file, "entk-lint");
  EXPECT_TRUE(set.allows("raw-clock", 2));
  EXPECT_TRUE(set.allows("raw-clock", 999));
}

TEST(Suppressions, ToolsAreIndependent) {
  const LexedFile file = lex_source(
      "s.cpp", "int x = 0;  // entk-analyze: allow(lock-order)\n");
  EXPECT_TRUE(
      scan_suppressions(file, "entk-analyze").allows("lock-order", 1));
  EXPECT_FALSE(
      scan_suppressions(file, "entk-lint").allows("lock-order", 1));
}

// ------------------------------------------------------ lock graph

TEST(LockGraph, GoodCorpusIsClean) {
  const LockAnalysis analysis =
      analyze_locks({lex_corpus("locks/good_locks.cpp")});
  EXPECT_TRUE(analysis.findings.empty())
      << analysis.findings.front().message;
  EXPECT_EQ(analysis.lock_count, 2u);
  // The call-expanded Outer -> Inner edge must exist.
  EXPECT_EQ(analysis.edge_count, 1u);
}

TEST(LockGraph, DetectsSeededCycle) {
  const LockAnalysis analysis =
      analyze_locks({lex_corpus("locks/bad_lock_cycle.cpp")});
  ASSERT_FALSE(analysis.findings.empty());
  const auto cycle = std::find_if(
      analysis.findings.begin(), analysis.findings.end(),
      [](const LockFinding& f) { return f.rule == "lock-cycle"; });
  ASSERT_NE(cycle, analysis.findings.end());
  EXPECT_NE(cycle->message.find("Pair::first_"), std::string::npos);
  EXPECT_NE(cycle->message.find("Pair::second_"), std::string::npos);
  // Each edge of the cycle carries a concrete witness.
  EXPECT_NE(cycle->message.find("bad_lock_cycle.cpp"),
            std::string::npos);
}

TEST(LockGraph, DetectsSeededRankInversion) {
  const LockAnalysis analysis =
      analyze_locks({lex_corpus("locks/bad_rank_inversion.cpp")});
  ASSERT_EQ(analysis.findings.size(), 1u);
  const LockFinding& finding = analysis.findings.front();
  EXPECT_EQ(finding.rule, "rank-inversion");
  EXPECT_NE(finding.message.find("Manager::mutex_"), std::string::npos);
  EXPECT_NE(finding.message.find("Logbook::mutex_"), std::string::npos);
  EXPECT_NE(finding.message.find("kHigh=20"), std::string::npos);
  EXPECT_NE(finding.message.find("kLow=10"), std::string::npos);
}

TEST(LockGraph, SuppressionAtAcquisitionSiteRemovesEdge) {
  const LockAnalysis analysis =
      analyze_locks({lex_corpus("locks/suppressed_inversion.cpp")});
  EXPECT_TRUE(analysis.findings.empty())
      << analysis.findings.front().message;
}

TEST(LockGraph, ExportsDotGraph) {
  const LockAnalysis analysis =
      analyze_locks({lex_corpus("locks/good_locks.cpp")});
  EXPECT_NE(analysis.dot.find("digraph entk_locks"), std::string::npos);
  EXPECT_NE(analysis.dot.find("Outer::mutex_"), std::string::npos);
  EXPECT_NE(analysis.dot.find("->"), std::string::npos);
}

// -------------------------------------------------------- layering

TEST(Layering, ParsesConfigSubset) {
  auto config = parse_layering_config(
      "# comment\n"
      "[modules]\n"
      "util = []\n"
      "app  = [\"util\", \"base\"]  # trailing comment\n");
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  ASSERT_EQ(config.value().modules.size(), 2u);
  EXPECT_TRUE(config.value().modules.at("util").empty());
  EXPECT_EQ(config.value().modules.at("app").size(), 2u);
  EXPECT_EQ(config.value().modules.at("app")[0], "util");

  EXPECT_FALSE(parse_layering_config("[modules]\nbroken\n").ok());
  EXPECT_FALSE(parse_layering_config("[modules]\na = [b]\n").ok());
}

std::vector<LexedFile> corpus_layering_tree() {
  return {lex_corpus("layering/src/util/util.hpp"),
          lex_corpus("layering/src/util/bad.hpp"),
          lex_corpus("layering/src/app/app.hpp"),
          lex_corpus("layering/src/app/cycle_a.hpp"),
          lex_corpus("layering/src/app/cycle_b.hpp")};
}

TEST(Layering, DetectsSeededDownwardEdgeAndCycle) {
  auto config =
      load_layering_config(corpus("layering/layering.toml"));
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  const LayerAnalysis analysis =
      analyze_layering(corpus_layering_tree(), config.value());
  EXPECT_EQ(analysis.module_count, 2u);

  const auto downward = std::find_if(
      analysis.findings.begin(), analysis.findings.end(),
      [](const LayerFinding& f) {
        return f.rule == "undeclared-dependency";
      });
  ASSERT_NE(downward, analysis.findings.end());
  EXPECT_NE(downward->file.find("util/bad.hpp"), std::string::npos);
  EXPECT_NE(downward->message.find("`util` must not depend on `app`"),
            std::string::npos);

  const auto cycle = std::find_if(
      analysis.findings.begin(), analysis.findings.end(),
      [](const LayerFinding& f) { return f.rule == "include-cycle"; });
  ASSERT_NE(cycle, analysis.findings.end());
  EXPECT_NE(cycle->message.find("cycle_a.hpp"), std::string::npos);
  EXPECT_NE(cycle->message.find("cycle_b.hpp"), std::string::npos);
}

TEST(Layering, FlagsUndeclaredModulesAndConfigCycles) {
  LayeringConfig undeclared;
  undeclared.modules["app"] = {};
  const LayerAnalysis missing = analyze_layering(
      {lex_corpus("layering/src/util/util.hpp")}, undeclared);
  ASSERT_EQ(missing.findings.size(), 1u);
  EXPECT_EQ(missing.findings.front().rule, "undeclared-module");

  LayeringConfig cyclic;
  cyclic.modules["a"] = {"b"};
  cyclic.modules["b"] = {"a"};
  const LayerAnalysis analysis = analyze_layering({}, cyclic);
  ASSERT_EQ(analysis.findings.size(), 1u);
  EXPECT_EQ(analysis.findings.front().rule, "config-cycle");
}

}  // namespace
}  // namespace entk::analysis
