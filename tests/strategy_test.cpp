// Tests of the execution-strategy component (dynamic workload-resource
// mapping) and validation of its analytic TTC model against the
// discrete-event simulation.
#include <gtest/gtest.h>

#include "core/entk.hpp"

namespace entk::core {
namespace {

WorkloadProfile simple_workload(Count tasks, Duration duration,
                                Count cores_per_task = 1,
                                Count stages = 1) {
  WorkloadProfile workload;
  workload.total_tasks = tasks * stages;
  workload.max_concurrent_tasks = tasks;
  workload.cores_per_task = cores_per_task;
  workload.reference_task_duration = duration;
  workload.sequential_stages = stages;
  return workload;
}

TEST(WorkloadProfile, Validation) {
  EXPECT_TRUE(simple_workload(8, 10.0).validate().is_ok());
  WorkloadProfile bad = simple_workload(8, 10.0);
  bad.total_tasks = 0;
  EXPECT_EQ(bad.validate().code(), Errc::kInvalidArgument);
  bad = simple_workload(8, 10.0);
  bad.max_concurrent_tasks = 100;  // > total
  EXPECT_EQ(bad.validate().code(), Errc::kInvalidArgument);
  bad = simple_workload(8, 10.0);
  bad.reference_task_duration = 0.0;
  EXPECT_EQ(bad.validate().code(), Errc::kInvalidArgument);
}

TEST(ProfileForEnsemble, DerivesFromKernelCostModel) {
  const auto registry = kernels::KernelRegistry::with_builtin_kernels();
  TaskSpec spec;
  spec.kernel = "md.simulate";
  spec.args.set("steps", 3000);
  spec.args.set("n_particles", 2881);
  auto workload = profile_for_ensemble(256, 2, spec, registry);
  ASSERT_TRUE(workload.ok()) << workload.status().to_string();
  EXPECT_EQ(workload.value().total_tasks, 512);
  EXPECT_EQ(workload.value().max_concurrent_tasks, 256);
  EXPECT_EQ(workload.value().cores_per_task, 1);
  EXPECT_NEAR(workload.value().reference_task_duration,
              3000.0 * 2881.0 * 1.2e-5, 1e-6);

  TaskSpec unknown;
  unknown.kernel = "no.such";
  EXPECT_EQ(profile_for_ensemble(8, 1, unknown, registry).status().code(),
            Errc::kNotFound);
}

TEST(ExecutionStrategy, MoreCoresNeverSlowerMakespan) {
  const auto machine = sim::stampede_profile();
  const auto workload = simple_workload(1024, 100.0);
  Duration previous = kTimeInfinity;
  for (Count cores : {64, 128, 256, 512, 1024}) {
    const ResourcePlan plan =
        ExecutionStrategy::evaluate(machine, cores, workload);
    EXPECT_LE(plan.predicted_makespan, previous + 1e-9)
        << "cores=" << cores;
    previous = plan.predicted_makespan;
  }
}

TEST(ExecutionStrategy, QueueWaitGrowsWithPilotSize) {
  const auto machine = sim::stampede_profile();
  const auto workload = simple_workload(1024, 100.0);
  const auto small = ExecutionStrategy::evaluate(machine, 64, workload);
  const auto large = ExecutionStrategy::evaluate(machine, 1024, workload);
  EXPECT_LT(small.predicted_queue_wait, large.predicted_queue_wait);
}

TEST(ExecutionStrategy, PicksLargerPilotWhenQueueIsFree) {
  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  ExecutionStrategy strategy(catalog);
  StrategyObjective objective;
  objective.queue_wait_weight = 0.0;  // ignore the queue entirely
  auto plan = strategy.plan(simple_workload(512, 200.0), objective);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  // Without queue pressure the best plan saturates the concurrency.
  EXPECT_EQ(plan.value().pilot_cores, 512);
}

TEST(ExecutionStrategy, QueuePressureShrinksThePilot) {
  sim::MachineCatalog catalog;
  auto machine = sim::stampede_profile();
  machine.batch_wait_per_node = 300.0;  // brutal queue
  ASSERT_TRUE(catalog.register_machine(machine).is_ok());
  ExecutionStrategy strategy(catalog);
  StrategyObjective heavy;
  heavy.queue_wait_weight = 1.0;
  auto plan = strategy.plan(simple_workload(512, 30.0), heavy);
  ASSERT_TRUE(plan.ok());
  // Waiting for 512 cores costs far more than running waves on fewer.
  EXPECT_LT(plan.value().pilot_cores, 512);
}

TEST(ExecutionStrategy, RespectsObjectiveBounds) {
  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  ExecutionStrategy strategy(catalog);
  StrategyObjective objective;
  objective.max_cores = 128;
  auto plan = strategy.plan(simple_workload(1024, 50.0), objective);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan.value().pilot_cores, 128);

  StrategyObjective impossible;
  impossible.max_core_seconds = 1.0;  // nothing fits
  EXPECT_EQ(strategy.plan(simple_workload(1024, 50.0), impossible)
                .status()
                .code(),
            Errc::kResourceExhausted);
}

TEST(ExecutionStrategy, CandidatesAreRankedByScore) {
  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  ExecutionStrategy strategy(catalog);
  StrategyObjective objective;
  auto plan = strategy.plan(simple_workload(256, 100.0), objective);
  ASSERT_TRUE(plan.ok());
  const auto& candidates = strategy.last_candidates();
  ASSERT_GT(candidates.size(), 1u);
  auto score = [&](const ResourcePlan& candidate) {
    return objective.queue_wait_weight * candidate.predicted_queue_wait +
           candidate.predicted_makespan;
  };
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(score(candidates[i - 1]), score(candidates[i]) + 1e-9);
  }
  EXPECT_EQ(plan.value().machine, candidates.front().machine);
}

// The strategy's analytic model must agree with the discrete-event
// simulation it abstracts — run the same workload both ways.
class StrategyModelValidation
    : public ::testing::TestWithParam<std::tuple<Count, Count>> {};

TEST_P(StrategyModelValidation, AnalyticTtcTracksSimulation) {
  const auto [n_tasks, cores] = GetParam();
  const double task_duration = 120.0;
  const auto machine = sim::stampede_profile();

  // Analytic prediction.
  const ResourcePlan plan = ExecutionStrategy::evaluate(
      machine, cores, simple_workload(n_tasks, task_duration));

  // Discrete-event measurement of the same bag on the same pilot.
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(machine);
  ResourceOptions options;
  options.cores = cores;
  options.runtime = 1e7;
  ResourceHandle handle(backend, registry, options);
  ASSERT_TRUE(handle.allocate().is_ok());
  BagOfTasks pattern(n_tasks, [&](const StageContext&) {
    TaskSpec spec;
    spec.kernel = "misc.sleep";
    spec.args.set("duration", task_duration);
    return spec;
  });
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().outcome.is_ok());

  const Duration simulated =
      handle.pilot()->startup_time() - plan.predicted_queue_wait +
      report.value().run_span;  // bootstrap + execution window
  // The model is an approximation; require agreement within 10 %.
  EXPECT_NEAR(plan.predicted_makespan, simulated,
              0.10 * simulated)
      << "tasks=" << n_tasks << " cores=" << cores;
  (void)handle.deallocate();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StrategyModelValidation,
    ::testing::Values(std::make_tuple<Count, Count>(64, 64),
                      std::make_tuple<Count, Count>(256, 64),
                      std::make_tuple<Count, Count>(256, 256),
                      std::make_tuple<Count, Count>(1024, 128)));

}  // namespace
}  // namespace entk::core
