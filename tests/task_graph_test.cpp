// TaskGraph compilation and the event-driven GraphExecutor.
//
// Patterns are compilers now: these tests check the graphs they emit
// (topology, groups, gates, chain sets, expanders), the Graphviz
// rendering, custom user-defined graphs driven through handle.run, the
// watch_unit fallback for executors without settled events, and the
// stalled-graph diagnostic.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/entk.hpp"
#include "pilot/pilot_manager.hpp"

namespace entk::core {
namespace {

TaskSpec sleep_spec(double duration) {
  TaskSpec spec;
  spec.kernel = "misc.sleep";
  spec.args.set("duration", duration);
  return spec;
}

// ------------------------------------------------------- compile topology

TEST(TaskGraphCompile, BagOfTasksIsOneStageGroup) {
  BagOfTasks pattern(4, [](const StageContext&) { return sleep_spec(1.0); });
  TaskGraph graph;
  ASSERT_TRUE(pattern.compile(graph).is_ok());
  EXPECT_EQ(graph.node_count(), 4u);
  ASSERT_EQ(graph.group_count(), 1u);
  EXPECT_EQ(graph.group(0).kind, GroupKind::kStage);
  EXPECT_EQ(graph.group(0).label, "bag_of_tasks");
  EXPECT_EQ(graph.group(0).members.size(), 4u);
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    EXPECT_TRUE(graph.node(id).deps.empty());
    EXPECT_TRUE(graph.node(id).gates.empty());
  }
  EXPECT_EQ(graph.expander_count(), 0u);
  EXPECT_TRUE(graph.validate().is_ok());
}

TEST(TaskGraphCompile, PipelinesBecomeDependencyChains) {
  EnsembleOfPipelines pattern(3, 2);
  pattern.set_stage(1, [](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_stage(2, [](const StageContext&) { return sleep_spec(1.0); });
  TaskGraph graph;
  ASSERT_TRUE(pattern.compile(graph).is_ok());
  EXPECT_EQ(graph.node_count(), 6u);
  ASSERT_EQ(graph.group_count(), 3u);  // one chain per pipeline
  ASSERT_EQ(graph.chain_set_count(), 1u);
  EXPECT_EQ(graph.chain_set(0).member_noun, "pipelines");
  EXPECT_EQ(graph.chain_set(0).chains.size(), 3u);
  // Per pipeline: stage 2 depends on stage 1, no cross-pipeline edges.
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const TaskNode& node = graph.node(id);
    if (node.context.stage == 1) {
      EXPECT_TRUE(node.deps.empty()) << node.label;
    } else {
      ASSERT_EQ(node.deps.size(), 1u) << node.label;
      EXPECT_EQ(graph.node(node.deps[0]).context.instance,
                node.context.instance);
    }
  }
}

TEST(TaskGraphCompile, StaticSalGatesStagesOnBarriers) {
  SimulationAnalysisLoop pattern(2, 3, 2);
  pattern.set_pre_loop([](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_simulation(
      [](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_analysis([](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_post_loop([](const StageContext&) { return sleep_spec(1.0); });
  TaskGraph graph;
  ASSERT_TRUE(pattern.compile(graph).is_ok());
  // pre + 2 * (3 sims + 2 analyses) + post.
  EXPECT_EQ(graph.node_count(), 12u);
  // pre group + per iteration (sims, analyses) + post group.
  EXPECT_EQ(graph.group_count(), 6u);
  EXPECT_EQ(graph.expander_count(), 0u);
  // Every non-pre node waits on exactly one barrier.
  for (NodeId id = 1; id < graph.node_count(); ++id) {
    EXPECT_EQ(graph.node(id).gates.size(), 1u) << graph.node(id).label;
  }
}

TEST(TaskGraphCompile, AdaptiveSalDefersIterationsToAnExpander) {
  SimulationAnalysisLoop pattern(3, 2, 2);
  pattern.set_simulation(
      [](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_analysis([](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_adaptive_counts([](Count) { return std::make_pair(2, 2); });
  TaskGraph graph;
  ASSERT_TRUE(pattern.compile(graph).is_ok());
  EXPECT_EQ(graph.node_count(), 0u);  // generations appear at run time
  EXPECT_EQ(graph.expander_count(), 1u);
}

TEST(TaskGraphCompile, PairwiseExchangeJoinsBothReplicaChains) {
  EnsembleExchange pattern(5, 2, EnsembleExchange::ExchangeMode::kPairwise);
  pattern.set_simulation(
      [](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_pair_exchange(
      [](Count, Count, Count) { return sleep_spec(0.5); });
  TaskGraph graph;
  ASSERT_TRUE(pattern.compile(graph).is_ok());
  // 5 replicas x 2 cycles = 10 sims; pairs (0,1),(2,3) then (1,2),(3,4).
  EXPECT_EQ(graph.node_count(), 14u);
  std::size_t exchanges = 0;
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const TaskNode& node = graph.node(id);
    if (node.context.stage != 2) continue;
    ++exchanges;
    EXPECT_EQ(node.deps.size(), 2u);    // both partners' sims
    EXPECT_EQ(node.groups.size(), 2u);  // both partners' chains
  }
  EXPECT_EQ(exchanges, 4u);
  ASSERT_EQ(graph.chain_set_count(), 1u);
  EXPECT_EQ(graph.chain_set(0).member_noun, "replicas");
}

TEST(TaskGraphCompile, CompositePatternsCompileToExpanders) {
  auto body = std::make_unique<BagOfTasks>(
      2, [](const StageContext&) { return sleep_spec(1.0); });
  AdaptiveLoop loop(std::move(body), 3, [](Count) { return true; });
  TaskGraph loop_graph;
  ASSERT_TRUE(loop.compile(loop_graph).is_ok());
  EXPECT_EQ(loop_graph.node_count(), 0u);
  EXPECT_EQ(loop_graph.expander_count(), 1u);

  SequencePattern sequence;
  sequence.append(std::make_unique<BagOfTasks>(
      1, [](const StageContext&) { return sleep_spec(1.0); }));
  TaskGraph seq_graph;
  ASSERT_TRUE(sequence.compile(seq_graph).is_ok());
  EXPECT_EQ(seq_graph.node_count(), 0u);
  EXPECT_EQ(seq_graph.expander_count(), 1u);
}

TEST(TaskGraphCompile, QuorumRulesAreValidated) {
  FailureRules rules;
  rules.policy = FailurePolicy::kQuorum;
  rules.quorum = 1.5;
  EXPECT_FALSE(rules.validate().is_ok());
  TaskGraph graph;
  graph.add_stage_group("bad", rules);
  EXPECT_FALSE(graph.validate().is_ok());
}

// ------------------------------------------------------------------- dot

TEST(TaskGraphDot, RendersNodesEdgesAndBarriers) {
  EnsembleExchange pattern(2, 1);
  pattern.set_simulation(
      [](const StageContext&) { return sleep_spec(1.0); });
  pattern.set_exchange([](const StageContext&) { return sleep_spec(0.5); });
  TaskGraph graph;
  ASSERT_TRUE(pattern.compile(graph).is_ok());
  const std::string dot = graph.to_dot();
  EXPECT_NE(dot.find("digraph taskgraph"), std::string::npos);
  EXPECT_NE(dot.find("sim c1.r0"), std::string::npos);
  EXPECT_NE(dot.find("exchange c1"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_g0"), std::string::npos);
  EXPECT_NE(dot.find("[style=dashed]"), std::string::npos);  // gate edge
}

TEST(TaskGraphDot, NotesPendingExpanders) {
  SequencePattern sequence;
  sequence.append(std::make_unique<BagOfTasks>(
      1, [](const StageContext&) { return sleep_spec(1.0); }));
  TaskGraph graph;
  ASSERT_TRUE(sequence.compile(graph).is_ok());
  EXPECT_NE(graph.to_dot().find("expander(s) pending"), std::string::npos);
}

// ------------------------------------------------- custom graphs / executor

class SimRunFixture : public ::testing::Test {
 protected:
  SimRunFixture()
      : registry_(kernels::KernelRegistry::with_builtin_kernels()),
        backend_(sim::localhost_profile()) {}

  ResourceHandle make_handle(Count cores) {
    ResourceOptions options;
    options.cores = cores;
    return ResourceHandle(backend_, registry_, options);
  }

  kernels::KernelRegistry registry_;
  pilot::SimBackend backend_;
};

/// A user-defined pattern: the diamond A -> {B, C} -> D, impossible to
/// express with the stock unit patterns but trivial as a TaskGraph.
class DiamondPattern final : public ExecutionPattern {
 public:
  std::string name() const override { return "diamond"; }
  Status validate() const override { return Status::ok(); }

  Status compile(TaskGraph& graph) override {
    units_.clear();
    const auto sink = [this](const pilot::ComputeUnitPtr& unit) {
      units_.push_back(unit);
    };
    const NodeId a = graph.add_node("A", [] { return sleep_spec(1.0); });
    const NodeId b = graph.add_node("B", [] { return sleep_spec(2.0); });
    const NodeId c = graph.add_node("C", [] { return sleep_spec(3.0); });
    const NodeId d = graph.add_node("D", [] { return sleep_spec(1.0); });
    graph.add_dependency(b, a);
    graph.add_dependency(c, a);
    graph.add_dependency(d, b);
    graph.add_dependency(d, c);
    for (const NodeId id : {a, b, c, d}) graph.set_sink(id, sink);
    return Status::ok();
  }

  const std::vector<pilot::ComputeUnitPtr>& units() const { return units_; }

 private:
  std::vector<pilot::ComputeUnitPtr> units_;
};

TEST_F(SimRunFixture, CustomDiamondGraphRunsInDependencyOrder) {
  auto handle = make_handle(4);
  ASSERT_TRUE(handle.allocate().is_ok());
  DiamondPattern pattern;
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  ASSERT_EQ(pattern.units().size(), 4u);
  const auto& units = pattern.units();
  // B and C both start after A finishes and overlap each other.
  EXPECT_GE(units[1]->exec_started_at(), units[0]->finished_at());
  EXPECT_GE(units[2]->exec_started_at(), units[0]->finished_at());
  EXPECT_LT(units[1]->exec_started_at(), units[2]->finished_at());
  // D joins: starts only after BOTH B and C finished.
  EXPECT_GE(units[3]->exec_started_at(), units[1]->finished_at());
  EXPECT_GE(units[3]->exec_started_at(), units[2]->finished_at());
}

/// Wraps a real executor but refuses settled subscriptions, forcing
/// the graph executor onto its per-unit watch_unit fallback.
class NoEventsExecutor final : public PatternExecutor {
 public:
  explicit NoEventsExecutor(PatternExecutor& inner) : inner_(inner) {}
  Result<std::vector<pilot::ComputeUnitPtr>> submit(
      const std::vector<TaskSpec>& specs) override {
    return inner_.submit(specs);
  }
  Status drive_until(const std::function<bool()>& done) override {
    return inner_.drive_until(done);
  }
  // subscribe_settled: inherited default, returns false.

 private:
  PatternExecutor& inner_;
};

TEST(GraphExecutorFallback, RunsPipelinesThroughWatchUnit) {
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  pilot::SimBackend backend(sim::localhost_profile());
  pilot::PilotManager pilot_manager(backend);
  pilot::PilotDescription description;
  description.resource = "localhost";
  description.cores = 4;
  description.runtime = 100000.0;
  auto pilot = pilot_manager.submit_pilot(description);
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot_manager.wait_active(pilot.value()).is_ok());
  pilot::UnitManager unit_manager(backend);
  unit_manager.add_pilot(pilot.take());
  ExecutionPlugin plugin(registry, unit_manager, backend);
  NoEventsExecutor no_events(plugin);

  EnsembleOfPipelines pattern(2, 2);
  pattern.set_stage(1, [](const StageContext& context) {
    return sleep_spec(1.0 + static_cast<double>(context.instance));
  });
  pattern.set_stage(2, [](const StageContext&) { return sleep_spec(1.0); });
  ASSERT_TRUE(pattern.execute(no_events).is_ok());
  ASSERT_EQ(pattern.units().size(), 4u);
  for (const auto& unit : pattern.units()) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
  }
}

/// A pattern whose node gates on a stage group containing itself: the
/// gate can never be decided, so the graph must stall, and the
/// executor must say so instead of deadlocking the backend.
class SelfGatedPattern final : public ExecutionPattern {
 public:
  std::string name() const override { return "self_gated"; }
  Status validate() const override { return Status::ok(); }
  Status compile(TaskGraph& graph) override {
    const GroupId group = graph.add_stage_group(name(), failure_rules());
    const NodeId node =
        graph.add_node("stuck", [] { return sleep_spec(1.0); });
    graph.add_member(group, node);
    graph.gate_on(node, group);
    return Status::ok();
  }
};

TEST_F(SimRunFixture, StalledGraphReportsInternalError) {
  auto handle = make_handle(4);
  ASSERT_TRUE(handle.allocate().is_ok());
  SelfGatedPattern pattern;
  auto report = handle.run(pattern);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().outcome.code(), Errc::kInternal);
  EXPECT_NE(report.value().outcome.message().find("task graph stalled"),
            std::string::npos)
      << report.value().outcome.to_string();
}

}  // namespace
}  // namespace entk::core
