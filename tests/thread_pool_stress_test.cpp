// Stress tests for the ThreadPool shutdown/enqueue path.
//
// The classic bug here is a check-then-wait race on the stop flag:
// a submitter checks "not stopping", drops the lock, and enqueues or
// notifies against a pool that has meanwhile started (or finished)
// shutting down. These tests hammer exactly that window from many
// threads; run them under the `tsan` preset to let ThreadSanitizer
// watch the handoff.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace entk {
namespace {

TEST(ThreadPoolStressTest, ConcurrentSubmittersExecuteEveryAcceptedTask) {
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kTasksEach = 500;
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> accepted{0};
  {
    ThreadPool pool(3);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        for (std::size_t i = 0; i < kTasksEach; ++i) {
          if (pool.try_submit([&executed] {
                executed.fetch_add(1, std::memory_order_relaxed);
              })) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& submitter : submitters) submitter.join();
    pool.wait_idle();
    EXPECT_EQ(accepted.load(), kSubmitters * kTasksEach);
    EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
  }
}

TEST(ThreadPoolStressTest, SubmittersRacingShutdownNeverLoseAcceptedTasks) {
  // Repeat the race many times: submitters run full tilt while another
  // thread pulls the plug mid-stream. Every accepted task must still
  // execute (shutdown drains the queue); every rejection must be clean.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> executed{0};
    std::atomic<std::size_t> accepted{0};
    ThreadPool pool(2);
    std::vector<std::thread> submitters;
    std::atomic<bool> go{false};
    for (std::size_t s = 0; s < 3; ++s) {
      submitters.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::size_t i = 0; i < 200; ++i) {
          if (pool.try_submit([&executed] {
                executed.fetch_add(1, std::memory_order_relaxed);
              })) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    std::this_thread::yield();
    pool.shutdown();  // races the submitters on purpose
    for (auto& submitter : submitters) submitter.join();
    EXPECT_FALSE(pool.try_submit([] {})) << "pool accepted after shutdown";
    EXPECT_EQ(executed.load(), accepted.load())
        << "accepted tasks were dropped by shutdown";
  }
}

TEST(ThreadPoolStressTest, ConcurrentShutdownCallsAllJoin) {
  std::atomic<std::size_t> executed{0};
  ThreadPool pool(2);
  for (std::size_t i = 0; i < 64; ++i) {
    pool.submit([&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Several threads race shutdown(); each must return only once every
  // worker has been joined, so the executed count is final afterwards.
  std::vector<std::thread> closers;
  for (std::size_t s = 0; s < 4; ++s) {
    closers.emplace_back([&pool] { pool.shutdown(); });
  }
  for (auto& closer : closers) closer.join();
  EXPECT_EQ(executed.load(), 64u);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolStressTest, WaitIdleRacesSubmitters) {
  std::atomic<std::size_t> executed{0};
  ThreadPool pool(2);
  std::thread submitter([&] {
    for (std::size_t i = 0; i < 300; ++i) {
      pool.submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  for (int i = 0; i < 10; ++i) pool.wait_idle();  // may overlap submits
  submitter.join();
  pool.wait_idle();  // all submits done: this one is authoritative
  EXPECT_EQ(executed.load(), 300u);
}

}  // namespace
}  // namespace entk
