// Concurrency test for entk::next_uid: ids must be globally unique
// (per prefix) no matter how many threads draw them at once.
#include "common/uid.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace entk {
namespace {

TEST(UidConcurrencyTest, ParallelGenerationYieldsGloballyUniqueIds) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIdsEach = 400;
  reset_uid_counters_for_testing();

  std::vector<std::vector<std::string>> drawn(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &drawn] {
      drawn[t].reserve(kIdsEach);
      for (std::size_t i = 0; i < kIdsEach; ++i) {
        // Two prefixes interleaved: per-prefix counters must not bleed
        // into each other under contention.
        drawn[t].push_back(next_uid(i % 2 == 0 ? "stress" : "other"));
      }
    });
  }
  for (auto& worker : workers) worker.join();

  std::set<std::string> unique;
  for (const auto& ids : drawn) unique.insert(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), kThreads * kIdsEach) << "duplicate uid drawn";

  // Counters are dense: after N draws per prefix the next id is .N.
  std::size_t stress_count = 0;
  for (const auto& id : unique) {
    if (id.rfind("stress.", 0) == 0) ++stress_count;
  }
  EXPECT_EQ(stress_count, kThreads * kIdsEach / 2);
  EXPECT_EQ(next_uid("stress"), "stress.001600");  // 8 * 400 / 2 draws
  reset_uid_counters_for_testing();
}

TEST(UidConcurrencyTest, ResetRacesGenerationWithoutCorruption) {
  // reset_uid_counters_for_testing is test-only, but it still must not
  // corrupt the map while other threads draw ids.
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 200; ++i) (void)next_uid("racing");
    });
  }
  for (int i = 0; i < 50; ++i) reset_uid_counters_for_testing();
  for (auto& worker : workers) worker.join();
  reset_uid_counters_for_testing();
  EXPECT_EQ(next_uid("racing"), "racing.000000");
  reset_uid_counters_for_testing();
}

}  // namespace
}  // namespace entk
