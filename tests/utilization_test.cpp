// Edge cases of the core-utilization sweep (core/utilization.hpp):
// empty runs, multi-core MPI overlap, and back-to-back windows whose
// shared edge must not double-count cores.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "common/clock.hpp"
#include "core/utilization.hpp"
#include "pilot/compute_unit.hpp"

namespace entk {
namespace {

/// Drives a unit through the legal lifecycle so its execution stamps
/// land exactly at [start, stop] on the shared manual clock.
pilot::ComputeUnitPtr executed_unit(ManualClock& clock,
                                    const std::string& uid, Count cores,
                                    TimePoint start, TimePoint stop) {
  pilot::UnitDescription description;
  description.name = uid;
  description.cores = cores;
  description.uses_mpi = cores > 1;
  auto unit =
      std::make_shared<pilot::ComputeUnit>(uid, description, clock);
  EXPECT_TRUE(
      unit->advance_state(pilot::UnitState::kPendingExecution).is_ok());
  clock.advance_to(start);
  EXPECT_TRUE(unit->advance_state(pilot::UnitState::kExecuting).is_ok());
  clock.advance_to(stop);
  EXPECT_TRUE(
      unit->advance_state(pilot::UnitState::kStagingOutput).is_ok());
  EXPECT_TRUE(unit->advance_state(pilot::UnitState::kDone).is_ok());
  return unit;
}

TEST(Utilization, NoUnitsYieldsAllZeroes) {
  const auto report = core::compute_utilization({}, 16);
  EXPECT_EQ(report.executed_units, 0u);
  EXPECT_DOUBLE_EQ(report.average_utilization, 0.0);
  EXPECT_DOUBLE_EQ(report.busy_core_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.window, 0.0);
  EXPECT_EQ(report.peak_concurrent_cores, 0);
}

TEST(Utilization, UnitsThatNeverExecutedAreIgnored) {
  ManualClock clock;
  pilot::UnitDescription description;
  description.cores = 4;
  std::vector<pilot::ComputeUnitPtr> units;
  // Never left kNew: no execution stamps at all.
  units.push_back(std::make_shared<pilot::ComputeUnit>(
      "unit.idle", description, clock));
  // Canceled while waiting: finished_at set, exec stamps still kNoTime.
  auto canceled = std::make_shared<pilot::ComputeUnit>(
      "unit.canceled", description, clock);
  ASSERT_TRUE(
      canceled->advance_state(pilot::UnitState::kPendingExecution).is_ok());
  ASSERT_TRUE(
      canceled->advance_state(pilot::UnitState::kCanceled).is_ok());
  units.push_back(canceled);

  const auto report = core::compute_utilization(units, 8);
  EXPECT_EQ(report.executed_units, 0u);
  EXPECT_DOUBLE_EQ(report.average_utilization, 0.0);
  EXPECT_EQ(report.peak_concurrent_cores, 0);
}

TEST(Utilization, MpiUnitsCountAllTheirCoresWhileOverlapping) {
  // Two 4-core MPI units overlapping on [4, 6], plus a single-core
  // unit inside the overlap. Peak concurrency must see 4 + 4 + 1.
  // Each unit gets its own clock: ManualClock is monotone, and these
  // windows rewind relative to each other.
  std::deque<ManualClock> clocks(3);
  std::vector<pilot::ComputeUnitPtr> units;
  units.push_back(executed_unit(clocks[0], "mpi.a", 4, 0.0, 6.0));
  units.push_back(executed_unit(clocks[1], "mpi.b", 4, 4.0, 10.0));
  units.push_back(executed_unit(clocks[2], "serial.c", 1, 4.0, 6.0));

  const auto report = core::compute_utilization(units, 16);
  EXPECT_EQ(report.executed_units, 3u);
  EXPECT_DOUBLE_EQ(report.busy_core_seconds, 4 * 6.0 + 4 * 6.0 + 1 * 2.0);
  EXPECT_DOUBLE_EQ(report.window, 10.0);
  EXPECT_EQ(report.peak_concurrent_cores, 9);
  EXPECT_DOUBLE_EQ(report.average_utilization, 50.0 / (16.0 * 10.0));
}

TEST(Utilization, BackToBackWindowsDoNotDoubleCountTheSharedEdge) {
  // B starts at the instant A stops. The sweep must process A's
  // release before B's acquire, so peak concurrency is one unit's
  // width, not the sum.
  ManualClock clock;
  std::vector<pilot::ComputeUnitPtr> units;
  units.push_back(executed_unit(clock, "chain.a", 8, 0.0, 5.0));
  units.push_back(executed_unit(clock, "chain.b", 8, 5.0, 10.0));

  const auto report = core::compute_utilization(units, 8);
  EXPECT_EQ(report.executed_units, 2u);
  EXPECT_EQ(report.peak_concurrent_cores, 8);
  EXPECT_DOUBLE_EQ(report.window, 10.0);
  EXPECT_DOUBLE_EQ(report.busy_core_seconds, 80.0);
  // A perfectly-packed chain keeps the pilot 100% busy.
  EXPECT_DOUBLE_EQ(report.average_utilization, 1.0);
}

TEST(Utilization, ZeroLengthExecutionsAreSkipped) {
  ManualClock clock;
  std::vector<pilot::ComputeUnitPtr> units;
  // Start == stop: contributes nothing (guards div-by-zero windows).
  units.push_back(executed_unit(clock, "instant.a", 2, 3.0, 3.0));
  units.push_back(executed_unit(clock, "real.b", 2, 3.0, 7.0));

  const auto report = core::compute_utilization(units, 4);
  EXPECT_EQ(report.executed_units, 1u);
  EXPECT_DOUBLE_EQ(report.busy_core_seconds, 8.0);
  EXPECT_DOUBLE_EQ(report.window, 4.0);
  EXPECT_EQ(report.peak_concurrent_cores, 2);
}

}  // namespace
}  // namespace entk
