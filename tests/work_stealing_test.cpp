// Tests for the work-stealing pool (common/work_stealing_pool.hpp)
// and the TaskFn small-buffer callable it runs on.
//
// The concurrency tests are written to be meaningful under the `tsan`
// preset (data-race windows: steal vs owner pop, park vs submit,
// shutdown vs submit) and under the `lock-rank` preset (the pool's
// two new ranks must order cleanly against the layers that own
// pools). Counters from stats() let the steal and park paths assert
// that they actually ran, not just that nothing crashed.
#include "common/work_stealing_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/lock_rank.hpp"
#include "common/mutex.hpp"
#include "common/task_fn.hpp"

#if defined(ENTK_LOCK_RANK_CHECK)
#include <csignal>
#include <cstdio>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace entk {
namespace {

// ---------------------------------------------------------------- TaskFn

TEST(TaskFn, EmptyByDefaultAndAfterMoveOut) {
  TaskFn task;
  EXPECT_FALSE(static_cast<bool>(task));
  std::atomic<int> runs{0};
  TaskFn filled([&runs] { runs.fetch_add(1); });
  EXPECT_TRUE(static_cast<bool>(filled));
  TaskFn taken = std::move(filled);
  EXPECT_FALSE(static_cast<bool>(filled));  // NOLINT(bugprone-use-after-move)
  taken();
  EXPECT_EQ(runs.load(), 1);
}

TEST(TaskFn, SmallCallablesAvoidTheHeap) {
  // A capture that fits the inline buffer must be stored inline; the
  // trait is what both pools rely on for the zero-allocation hot path.
  int a = 1, b = 2, c = 3;
  auto small = [a, b, c]() { (void)(a + b + c); };
  static_assert(TaskFn::stores_inline<decltype(small)>,
                "three ints must fit the inline buffer");
  struct Big {
    unsigned char bytes[128];
    void operator()() const {}
  };
  static_assert(!TaskFn::stores_inline<Big>,
                "128 bytes must spill to the heap");
  TaskFn inline_task(small);
  TaskFn heap_task(Big{});
  inline_task();
  heap_task();
}

TEST(TaskFn, MoveOnlyCallablesWork) {
  auto value = std::make_unique<int>(41);
  std::atomic<int> seen{0};
  TaskFn task([moved = std::move(value), &seen] { seen = *moved + 1; });
  TaskFn hopped = std::move(task);
  hopped();
  EXPECT_EQ(seen.load(), 42);
}

TEST(TaskFn, DestroysCaptureWithoutInvocation) {
  // A task dropped on the floor (e.g. rejected by a stopping pool)
  // must still release what it captured.
  auto guard = std::make_shared<int>(7);
  std::weak_ptr<int> watch = guard;
  {
    TaskFn task([held = std::move(guard)] { (void)*held; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

// ------------------------------------------------- WorkStealingPool core

TEST(WorkStealingPool, ExecutesExternalSubmissions) {
  std::atomic<std::size_t> executed{0};
  WorkStealingPool pool(3);
  for (std::size_t i = 0; i < 200; ++i) {
    pool.submit_external(TaskFn([&executed] { executed.fetch_add(1); }));
  }
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 200u);
  EXPECT_EQ(pool.stats().executed, 200u);
}

TEST(WorkStealingPool, SubmitLocalOffPoolFallsBackToExternal) {
  std::atomic<bool> ran{false};
  WorkStealingPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  EXPECT_TRUE(pool.submit_local(TaskFn([&ran] { ran = true; })));
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(WorkStealingPool, StealStormDistributesOneProducersBacklog) {
  // One worker spawns the whole workload from inside the pool (so it
  // lands on that worker's own deque, LIFO); the other workers have
  // nothing and must steal. With a workload far wider than one
  // worker's throughput appetite, steals must be observed.
  constexpr std::size_t kTasks = 400;
  std::atomic<std::size_t> executed{0};
  WorkStealingPool pool(4);
  pool.submit_external(TaskFn([&pool, &executed] {
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_TRUE(pool.submit_local(TaskFn([&executed] {
        // Tasks must BLOCK, not spin: on a single-CPU host a spinning
        // owner drains its whole deque before a thief is ever
        // scheduled, and the steal assertion below would be vacuous.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        executed.fetch_add(1, std::memory_order_relaxed);
      })));
    }
  }));
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kTasks);
  const WorkStealingPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.executed, kTasks + 1);
  EXPECT_GT(stats.stolen, 0u) << "idle workers never stole the backlog";
}

TEST(WorkStealingPool, ExternalSubmissionsStayFairAgainstBusyWorkers) {
  // A worker feeding itself LIFO must still drain the external queue:
  // an off-pool submission may not starve behind a self-sustaining
  // local loop.
  WorkStealingPool pool(1);  // one worker: no thief can rescue us
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> spins{0};
  // Self-perpetuating local task.
  pool.submit_external(TaskFn([&pool, &stop, &spins] {
    struct Loop {
      WorkStealingPool* pool;
      std::atomic<bool>* stop;
      std::atomic<std::size_t>* spins;
      void operator()() const {
        if (stop->load(std::memory_order_acquire)) return;
        spins->fetch_add(1, std::memory_order_relaxed);
        (void)pool->submit_local(TaskFn(Loop{pool, stop, spins}));
      }
    };
    Loop{&pool, &stop, &spins}();
  }));
  std::atomic<bool> external_ran{false};
  pool.submit_external(TaskFn([&external_ran, &stop] {
    external_ran.store(true, std::memory_order_release);
    stop.store(true, std::memory_order_release);
  }));
  // The external task stops the loop; if it starves, wait_idle would
  // hang, so poll with a deadline instead.
  for (int i = 0; i < 10000 && !external_ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(external_ran.load())
      << "external submission starved behind local work";
  stop.store(true);
  pool.wait_idle();
  EXPECT_GT(spins.load(), 0u);
}

TEST(WorkStealingPool, BurstyLoadParksAndWakesWorkers) {
  WorkStealingPool pool(3);
  std::atomic<std::size_t> executed{0};
  for (int burst = 0; burst < 5; ++burst) {
    // Idle gap: spin budgets expire and workers park.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    for (std::size_t i = 0; i < 50; ++i) {
      pool.submit_external(TaskFn([&executed] { executed.fetch_add(1); }));
    }
    pool.wait_idle();
    EXPECT_EQ(executed.load(), 50u * (burst + 1));
  }
  EXPECT_GT(pool.stats().parks, 0u)
      << "workers never parked across idle gaps";
}

TEST(WorkStealingPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  WorkStealingPool pool(4);
  pool.parallel_for(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // Degenerate sizes.
  std::atomic<int> once{0};
  pool.parallel_for(0, [&once](std::size_t) { once.fetch_add(1); });
  EXPECT_EQ(once.load(), 0);
  pool.parallel_for(1, [&once](std::size_t) { once.fetch_add(1); });
  EXPECT_EQ(once.load(), 1);
}

TEST(WorkStealingPool, ParallelForNestsInsidePoolTasks) {
  // GraphExecutor calls parallel_for from run_concurrent's advance
  // tasks, which themselves run on the pool: the caller participates,
  // so nesting must not deadlock even when every worker is busy.
  WorkStealingPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(4, [&pool, &total](std::size_t) {
    pool.parallel_for(8, [&total](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(WorkStealingPool, MetricsSinkSeesExecutedCounts) {
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> parked{0};
  {
    WorkStealingPool pool(2, [&](PoolMetric metric, std::uint64_t n) {
      if (metric == PoolMetric::kExecuted) executed.fetch_add(n);
      if (metric == PoolMetric::kParked) parked.fetch_add(n);
    });
    for (std::size_t i = 0; i < 32; ++i) {
      pool.submit_external(TaskFn([] {}));
    }
    pool.wait_idle();
  }
  EXPECT_EQ(executed.load(), 32u);
}

// ------------------------------------------------------ shutdown safety

TEST(WorkStealingPool, ShutdownUnderLoadNeverLosesAcceptedTasks) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> executed{0};
    std::atomic<std::size_t> accepted{0};
    WorkStealingPool pool(2);
    std::vector<std::thread> submitters;
    std::atomic<bool> go{false};
    for (std::size_t s = 0; s < 3; ++s) {
      submitters.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::size_t i = 0; i < 200; ++i) {
          if (pool.try_submit_external(TaskFn([&executed] {
                executed.fetch_add(1, std::memory_order_relaxed);
              }))) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    std::this_thread::yield();
    pool.shutdown();  // races the submitters on purpose
    for (auto& submitter : submitters) submitter.join();
    EXPECT_FALSE(pool.try_submit_external(TaskFn([] {})))
        << "pool accepted after shutdown";
    EXPECT_EQ(executed.load(), accepted.load())
        << "accepted tasks were dropped by shutdown";
  }
}

TEST(WorkStealingPool, ConcurrentShutdownCallsAllJoin) {
  std::atomic<std::size_t> executed{0};
  WorkStealingPool pool(2);
  for (std::size_t i = 0; i < 64; ++i) {
    pool.submit_external(TaskFn([&executed] { executed.fetch_add(1); }));
  }
  std::vector<std::thread> closers;
  for (std::size_t s = 0; s < 4; ++s) {
    closers.emplace_back([&pool] { pool.shutdown(); });
  }
  for (auto& closer : closers) closer.join();
  EXPECT_EQ(executed.load(), 64u);
  pool.shutdown();  // idempotent
}

TEST(WorkStealingPool, WorkersRejectResubmissionDuringShutdown) {
  // A task running while shutdown drains may try to reschedule itself
  // (the LocalAgent/LocalAdaptor pattern): it must get a clean false,
  // never an abort and never a hang.
  std::atomic<std::size_t> rejected{0};
  WorkStealingPool pool(2);
  std::atomic<bool> entered{false};
  pool.submit_external(TaskFn([&pool, &rejected, &entered] {
    entered.store(true, std::memory_order_release);
    // shutdown() races this task: resubmissions accepted before the
    // stop flag flips are legal (they drain as no-ops), and once it
    // flips every submission must get a clean false — never an abort.
    while (pool.submit_local(TaskFn([] {}))) {
      std::this_thread::yield();
    }
    rejected.fetch_add(1);
    if (!pool.try_submit_external(TaskFn([] {}))) rejected.fetch_add(1);
  }));
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  pool.shutdown();
  EXPECT_EQ(rejected.load(), 2u)
      << "submission during shutdown was not refused";
}

TEST(WorkStealingPool, WaitIdleRacesSubmitters) {
  std::atomic<std::size_t> executed{0};
  WorkStealingPool pool(2);
  std::thread submitter([&] {
    for (std::size_t i = 0; i < 300; ++i) {
      pool.submit_external(TaskFn([&executed] { executed.fetch_add(1); }));
    }
  });
  for (int i = 0; i < 10; ++i) pool.wait_idle();  // may overlap submits
  submitter.join();
  pool.wait_idle();  // all submits done: this one is authoritative
  EXPECT_EQ(executed.load(), 300u);
}

// ---------------------------------------------------------- lock ranks

#if defined(ENTK_LOCK_RANK_CHECK)

/// Runs `body` in a forked child and returns its wait status (see
/// lock_rank_test.cpp for the idiom).
template <typename Body>
int exit_status_of(Body body) {
  const pid_t pid = fork();
  if (pid == 0) {
    std::freopen("/dev/null", "w", stderr);
    body();
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

TEST(WorkStealingPoolLockRank, LayerLocksOrderBelowTheQueues) {
  // The integration contract: submitting under a layer lock
  // (GraphExecutor, LocalAdaptor, LocalAgent) nests that lock OUTSIDE
  // a queue lock, so layer < pool state < queue must hold.
  Mutex agent(LockRank::kLocalAgent);
  Mutex pool_state(LockRank::kWorkStealingPool);
  Mutex queue(LockRank::kWorkStealingQueue);
  {
    MutexLock outer(agent);
    MutexLock inner(queue);  // agent(50) -> queue(78): legal
  }
  {
    MutexLock outer(pool_state);
    MutexLock inner(queue);  // pool(76) -> queue(78): legal
  }
  EXPECT_EQ(lockrank::held_count(), 0);
}

TEST(WorkStealingPoolLockRank, QueueThenPoolStateAborts) {
  // park()/shutdown() must never take state_mutex_ while holding a
  // queue lock; the validator enforces it at runtime.
  const int status = exit_status_of([] {
    Mutex queue(LockRank::kWorkStealingQueue);
    Mutex pool_state(LockRank::kWorkStealingPool);
    MutexLock outer(queue);
    MutexLock inner(pool_state);  // 78 -> 76: must abort
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

TEST(WorkStealingPoolLockRank, TwoQueuesNeverNest) {
  // Steals use try_lock precisely so two deque locks are never held
  // together; a blocking nested acquisition is a rank violation.
  const int status = exit_status_of([] {
    Mutex victim(LockRank::kWorkStealingQueue);
    Mutex own(LockRank::kWorkStealingQueue);
    MutexLock outer(own);
    MutexLock inner(victim);  // equal rank: must abort
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

TEST(WorkStealingPoolLockRank, PoolRunsCleanUnderTheValidator) {
  // End-to-end: a busy pool (steals, parks, external queue) must not
  // trip the validator.
  std::atomic<std::size_t> executed{0};
  WorkStealingPool pool(3);
  for (std::size_t i = 0; i < 500; ++i) {
    pool.submit_external(TaskFn([&executed, &pool] {
      executed.fetch_add(1);
      (void)pool.submit_local(TaskFn([&executed] {
        executed.fetch_add(1);
      }));
    }));
  }
  pool.wait_idle();
  pool.shutdown();
  EXPECT_EQ(executed.load(), 1000u);
}

#endif  // ENTK_LOCK_RANK_CHECK

}  // namespace
}  // namespace entk
