// Tests of the declarative workload-file front end.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/workload_file.hpp"

namespace entk::core {
namespace {

constexpr const char* kSalWorkload = R"(
# comment line
backend     = sim
machine     = localhost
cores       = 8
pattern     = sal
iterations  = 2
simulations = 4
analyses    = 1

[simulation]
kernel   = misc.sleep
duration = 2.0

[analysis]
kernel   = misc.sleep
duration = 1.0
)";

TEST(WorkloadParse, SalRoundTrip) {
  auto spec = parse_workload(kSalWorkload);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().backend, "sim");
  EXPECT_EQ(spec.value().machine, "localhost");
  EXPECT_EQ(spec.value().cores, 8);
  EXPECT_EQ(spec.value().pattern, "sal");
  EXPECT_EQ(spec.value().iterations, 2);
  EXPECT_EQ(spec.value().simulations, 4);
  ASSERT_EQ(spec.value().sections.size(), 2u);
  EXPECT_EQ(spec.value()
                .sections.at("simulation")
                .get_string("kernel")
                .value(),
            "misc.sleep");
  EXPECT_DOUBLE_EQ(spec.value()
                       .sections.at("analysis")
                       .get_double("duration")
                       .value(),
                   1.0);
}

TEST(WorkloadParse, Errors) {
  EXPECT_EQ(parse_workload("nonsense").status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(parse_workload("pattern = tree\nsimulations = 2\n")
                .status()
                .code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(parse_workload("pattern = bag\nsimulations = 2\n")
                .status()
                .code(),
            Errc::kInvalidArgument);  // missing [task] section
  EXPECT_EQ(
      parse_workload("pattern = bag\nsimulations = 2\n[task]\nfoo = 1\n")
          .status()
          .code(),
      Errc::kInvalidArgument);  // section without kernel
  EXPECT_EQ(parse_workload("[oops\n").status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(parse_workload("backend = teleport\npattern = bag\n"
                           "simulations = 1\n[task]\nkernel = misc.sleep\n")
                .status()
                .code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(load_workload("/nonexistent.entk").status().code(),
            Errc::kIoError);
}

TEST(WorkloadParse, AliasKeys) {
  auto spec = parse_workload(
      "pattern = ee\nreplicas = 6\ncycles = 3\n"
      "[simulation]\nkernel = misc.sleep\n[exchange]\nkernel = "
      "misc.sleep\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().simulations, 6);
  EXPECT_EQ(spec.value().iterations, 3);
}

TEST(Placeholders, Substitution) {
  StageContext context;
  context.iteration = 3;
  context.stage = 2;
  context.instance = 7;
  context.instances = 16;
  EXPECT_EQ(substitute_placeholders("traj_{instance}_i{iteration}.dat",
                                    context),
            "traj_7_i3.dat");
  EXPECT_EQ(substitute_placeholders("{instance}{instance}", context), "77");
  EXPECT_EQ(substitute_placeholders("{instances} of stage {stage}",
                                    context),
            "16 of stage 2");
  EXPECT_EQ(substitute_placeholders("no placeholders", context),
            "no placeholders");
}

TEST(TaskFromSection, BuildsSpecWithSubstitution) {
  Config section;
  section.set("kernel", "md.simulate");
  section.set("out", "traj_{instance}.dat");
  section.set("steps", 300);
  section.set("max_retries", 2);
  StageContext context;
  context.instance = 5;
  auto task = task_from_section(section, context);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task.value().kernel, "md.simulate");
  EXPECT_EQ(task.value().args.get_string("out").value(), "traj_5.dat");
  EXPECT_EQ(task.value().retry.max_retries, 2);
  EXPECT_FALSE(task.value().args.contains("kernel"));
  EXPECT_FALSE(task.value().args.contains("max_retries"));
}

TEST(TaskFromSection, FaultToleranceKeys) {
  Config section;
  section.set("kernel", "misc.sleep");
  section.set("duration", 5.0);
  section.set("max_retries", 3);
  section.set("retry_backoff", 4.0);
  section.set("retry_backoff_multiplier", 3.0);
  section.set("retry_backoff_max", 60.0);
  section.set("retry_jitter", 0.25);
  section.set("execution_timeout", 120.0);
  section.set("inject_failure", true);
  section.set("inject_hang", false);
  auto task = task_from_section(section, StageContext{});
  ASSERT_TRUE(task.ok()) << task.status().to_string();
  EXPECT_EQ(task.value().retry.max_retries, 3);
  EXPECT_DOUBLE_EQ(task.value().retry.backoff_base, 4.0);
  EXPECT_DOUBLE_EQ(task.value().retry.backoff_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(task.value().retry.backoff_max, 60.0);
  EXPECT_DOUBLE_EQ(task.value().retry.jitter, 0.25);
  EXPECT_DOUBLE_EQ(task.value().retry.execution_timeout, 120.0);
  EXPECT_TRUE(task.value().inject_failure);
  EXPECT_FALSE(task.value().inject_hang);
  // Policy keys configure the task, not the kernel.
  EXPECT_FALSE(task.value().args.contains("max_retries"));
  EXPECT_FALSE(task.value().args.contains("retry_backoff"));
  EXPECT_FALSE(task.value().args.contains("inject_failure"));
  EXPECT_TRUE(task.value().args.contains("duration"));

  // An invalid retry policy is rejected when the task is built.
  section.set("retry_jitter", 1.0);
  EXPECT_EQ(task_from_section(section, StageContext{}).status().code(),
            Errc::kInvalidArgument);
}

TEST(WorkloadParse, FailurePolicyKeys) {
  auto spec = parse_workload(
      "pattern = bag\ntasks = 4\nfailure_policy = quorum\nquorum = 0.75\n"
      "[task]\nkernel = misc.sleep\nmax_retries = 2\n");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().failure.policy, FailurePolicy::kQuorum);
  EXPECT_DOUBLE_EQ(spec.value().failure.quorum, 0.75);

  EXPECT_EQ(parse_workload("pattern = bag\ntasks = 1\n"
                           "failure_policy = explode\n"
                           "[task]\nkernel = misc.sleep\n")
                .status()
                .code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(parse_workload("pattern = bag\ntasks = 1\n"
                           "failure_policy = quorum\nquorum = 1.5\n"
                           "[task]\nkernel = misc.sleep\n")
                .status()
                .code(),
            Errc::kInvalidArgument);
}

TEST(WorkloadSerialize, RoundTripPreservesEveryField) {
  auto spec = parse_workload(
      "backend = sim\nmachine = localhost\ncores = 16\nruntime = 1800\n"
      "scheduler = backfill\npattern = sal\niterations = 2\n"
      "simulations = 4\nanalyses = 1\n"
      "failure_policy = quorum\nquorum = 0.5\n"
      "[simulation]\nkernel = misc.sleep\nduration = 2.5\n"
      "max_retries = 3\nretry_backoff = 1.5\nretry_jitter = 0.125\n"
      "inject_failure = true\n"
      "[analysis]\nkernel = misc.sleep\nduration = 1.0\n"
      "execution_timeout = 30.5\n");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();

  const std::string text = serialize_workload(spec.value());
  auto reparsed = parse_workload(text);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().to_string() << "\nserialized:\n" << text;

  const WorkloadSpec& a = spec.value();
  const WorkloadSpec& b = reparsed.value();
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.cores, b.cores);
  EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.pattern, b.pattern);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_EQ(a.analyses, b.analyses);
  EXPECT_EQ(a.failure.policy, b.failure.policy);
  EXPECT_DOUBLE_EQ(a.failure.quorum, b.failure.quorum);
  ASSERT_EQ(b.sections.size(), a.sections.size());
  for (const auto& [name, section] : a.sections) {
    ASSERT_TRUE(b.sections.count(name)) << name;
    const Config& other = b.sections.at(name);
    for (const auto& key : section.keys()) {
      EXPECT_EQ(other.get_string(key).value(),
                section.get_string(key).value())
          << name << "." << key;
    }
  }
  // Serializing the reparse yields the identical text (fixed point).
  EXPECT_EQ(serialize_workload(reparsed.value()), text);
}

TEST(BuildPattern, EveryPatternKind) {
  for (const char* text : {
           "pattern = bag\ntasks = 3\n[task]\nkernel = misc.sleep\n",
           "pattern = eop\npipelines = 2\nstages = 2\n"
           "[stage1]\nkernel = misc.sleep\n[stage2]\nkernel = "
           "misc.sleep\n",
           kSalWorkload,
           "pattern = ee\nreplicas = 4\n[simulation]\nkernel = "
           "misc.sleep\n[exchange]\nkernel = misc.sleep\n",
       }) {
    auto spec = parse_workload(text);
    ASSERT_TRUE(spec.ok()) << spec.status().to_string();
    auto pattern = build_pattern(spec.value());
    ASSERT_TRUE(pattern.ok()) << pattern.status().to_string();
    EXPECT_TRUE(pattern.value()->validate().is_ok());
  }
}

TEST(RunWorkload, SalOnSimBackendEndToEnd) {
  auto spec = parse_workload(kSalWorkload);
  ASSERT_TRUE(spec.ok());
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto report = run_workload(spec.value(), registry);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok());
  // 2 iterations x (4 simulations + 1 analysis).
  EXPECT_EQ(report.value().units.size(), 10u);
}

TEST(RunWorkload, RejectsUnknownMachine) {
  auto spec = parse_workload(
      "machine = xsede.atlantis\npattern = bag\ntasks = 1\n"
      "[task]\nkernel = misc.sleep\n");
  ASSERT_TRUE(spec.ok());
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  EXPECT_EQ(run_workload(spec.value(), registry).status().code(),
            Errc::kNotFound);
}

TEST(RunWorkload, LoadFromDiskAndRunLocally) {
  const auto path =
      (std::filesystem::temp_directory_path() / "entk_workload_test.entk")
          .string();
  {
    std::ofstream file(path);
    file << "backend = local\ncores = 2\npattern = bag\ntasks = 3\n"
            "[task]\nkernel = misc.mkfile\n"
            "filename = made_{instance}.txt\nsize_kb = 1\n";
  }
  auto spec = load_workload(path);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto report = run_workload(spec.value(), registry);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(report.value().units.size(), 3u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace entk::core
