// Tests of the declarative workload-file front end.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/workload_file.hpp"

namespace entk::core {
namespace {

constexpr const char* kSalWorkload = R"(
# comment line
backend     = sim
machine     = localhost
cores       = 8
pattern     = sal
iterations  = 2
simulations = 4
analyses    = 1

[simulation]
kernel   = misc.sleep
duration = 2.0

[analysis]
kernel   = misc.sleep
duration = 1.0
)";

TEST(WorkloadParse, SalRoundTrip) {
  auto spec = parse_workload(kSalWorkload);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().backend, "sim");
  EXPECT_EQ(spec.value().machine, "localhost");
  EXPECT_EQ(spec.value().cores, 8);
  EXPECT_EQ(spec.value().pattern, "sal");
  EXPECT_EQ(spec.value().iterations, 2);
  EXPECT_EQ(spec.value().simulations, 4);
  ASSERT_EQ(spec.value().sections.size(), 2u);
  EXPECT_EQ(spec.value()
                .sections.at("simulation")
                .get_string("kernel")
                .value(),
            "misc.sleep");
  EXPECT_DOUBLE_EQ(spec.value()
                       .sections.at("analysis")
                       .get_double("duration")
                       .value(),
                   1.0);
}

TEST(WorkloadParse, Errors) {
  EXPECT_EQ(parse_workload("nonsense").status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(parse_workload("pattern = tree\nsimulations = 2\n")
                .status()
                .code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(parse_workload("pattern = bag\nsimulations = 2\n")
                .status()
                .code(),
            Errc::kInvalidArgument);  // missing [task] section
  EXPECT_EQ(
      parse_workload("pattern = bag\nsimulations = 2\n[task]\nfoo = 1\n")
          .status()
          .code(),
      Errc::kInvalidArgument);  // section without kernel
  EXPECT_EQ(parse_workload("[oops\n").status().code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(parse_workload("backend = teleport\npattern = bag\n"
                           "simulations = 1\n[task]\nkernel = misc.sleep\n")
                .status()
                .code(),
            Errc::kInvalidArgument);
  EXPECT_EQ(load_workload("/nonexistent.entk").status().code(),
            Errc::kIoError);
}

TEST(WorkloadParse, AliasKeys) {
  auto spec = parse_workload(
      "pattern = ee\nreplicas = 6\ncycles = 3\n"
      "[simulation]\nkernel = misc.sleep\n[exchange]\nkernel = "
      "misc.sleep\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().simulations, 6);
  EXPECT_EQ(spec.value().iterations, 3);
}

TEST(Placeholders, Substitution) {
  StageContext context;
  context.iteration = 3;
  context.stage = 2;
  context.instance = 7;
  context.instances = 16;
  EXPECT_EQ(substitute_placeholders("traj_{instance}_i{iteration}.dat",
                                    context),
            "traj_7_i3.dat");
  EXPECT_EQ(substitute_placeholders("{instance}{instance}", context), "77");
  EXPECT_EQ(substitute_placeholders("{instances} of stage {stage}",
                                    context),
            "16 of stage 2");
  EXPECT_EQ(substitute_placeholders("no placeholders", context),
            "no placeholders");
}

TEST(TaskFromSection, BuildsSpecWithSubstitution) {
  Config section;
  section.set("kernel", "md.simulate");
  section.set("out", "traj_{instance}.dat");
  section.set("steps", 300);
  section.set("max_retries", 2);
  StageContext context;
  context.instance = 5;
  auto task = task_from_section(section, context);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task.value().kernel, "md.simulate");
  EXPECT_EQ(task.value().args.get_string("out").value(), "traj_5.dat");
  EXPECT_EQ(task.value().max_retries, 2);
  EXPECT_FALSE(task.value().args.contains("kernel"));
  EXPECT_FALSE(task.value().args.contains("max_retries"));
}

TEST(BuildPattern, EveryPatternKind) {
  for (const char* text : {
           "pattern = bag\ntasks = 3\n[task]\nkernel = misc.sleep\n",
           "pattern = eop\npipelines = 2\nstages = 2\n"
           "[stage1]\nkernel = misc.sleep\n[stage2]\nkernel = "
           "misc.sleep\n",
           kSalWorkload,
           "pattern = ee\nreplicas = 4\n[simulation]\nkernel = "
           "misc.sleep\n[exchange]\nkernel = misc.sleep\n",
       }) {
    auto spec = parse_workload(text);
    ASSERT_TRUE(spec.ok()) << spec.status().to_string();
    auto pattern = build_pattern(spec.value());
    ASSERT_TRUE(pattern.ok()) << pattern.status().to_string();
    EXPECT_TRUE(pattern.value()->validate().is_ok());
  }
}

TEST(RunWorkload, SalOnSimBackendEndToEnd) {
  auto spec = parse_workload(kSalWorkload);
  ASSERT_TRUE(spec.ok());
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto report = run_workload(spec.value(), registry);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok());
  // 2 iterations x (4 simulations + 1 analysis).
  EXPECT_EQ(report.value().units.size(), 10u);
}

TEST(RunWorkload, RejectsUnknownMachine) {
  auto spec = parse_workload(
      "machine = xsede.atlantis\npattern = bag\ntasks = 1\n"
      "[task]\nkernel = misc.sleep\n");
  ASSERT_TRUE(spec.ok());
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  EXPECT_EQ(run_workload(spec.value(), registry).status().code(),
            Errc::kNotFound);
}

TEST(RunWorkload, LoadFromDiskAndRunLocally) {
  const auto path =
      (std::filesystem::temp_directory_path() / "entk_workload_test.entk")
          .string();
  {
    std::ofstream file(path);
    file << "backend = local\ncores = 2\npattern = bag\ntasks = 3\n"
            "[task]\nkernel = misc.mkfile\n"
            "filename = made_{instance}.txt\nsize_kb = 1\n";
  }
  auto spec = load_workload(path);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto report = run_workload(spec.value(), registry);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().outcome.is_ok())
      << report.value().outcome.to_string();
  EXPECT_EQ(report.value().units.size(), 3u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace entk::core
