#!/usr/bin/env python3
"""Gate BENCH_scale.json against a committed baseline.

Usage:
    check_bench_regression.py BASELINE CANDIDATE [--tolerance 0.15]

Fails (exit 1) when the candidate run regresses more than the
tolerance below the baseline:

  * per matched sweep point -- keyed on (pattern, scaling, n_units,
    cores) -- candidate events_per_sec must be at least
    (1 - tolerance) * baseline events_per_sec;
  * the engine_compare speedup (pooled vs legacy engine, measured in
    the same process on the same machine) must be at least
    (1 - tolerance) * the baseline speedup.  This ratio is
    machine-relative, so it is the most trustworthy signal on
    differently-sized CI runners.

Baseline points absent from the candidate are an error (a sweep point
silently disappearing is itself a regression); candidate points absent
from the baseline are reported but do not fail the gate.  Baselines
are expected to carry derated (conservative) absolute numbers so that
slower CI runners do not trip the gate on hardware variance -- see
docs/PERFORMANCE.md for the refresh procedure.
"""

import argparse
import json
import sys


def sweep_key(point):
    return (
        point["pattern"],
        point["scaling"],
        int(point["n_units"]),
        int(point["cores"]),
    )


def fmt_key(key):
    pattern, scaling, n_units, cores = key
    return f"{pattern}/{scaling} units={n_units} cores={cores}"


def check(baseline, candidate, tolerance):
    failures = []
    notes = []
    floor = 1.0 - tolerance

    base_points = {sweep_key(p): p for p in baseline.get("sweeps", [])}
    cand_points = {sweep_key(p): p for p in candidate.get("sweeps", [])}

    for key, base in sorted(base_points.items()):
        cand = cand_points.get(key)
        if cand is None:
            failures.append(f"sweep point missing: {fmt_key(key)}")
            continue
        base_eps = float(base["events_per_sec"])
        cand_eps = float(cand["events_per_sec"])
        if cand_eps < base_eps * floor:
            failures.append(
                f"events/sec regression at {fmt_key(key)}: "
                f"{cand_eps:,.0f} < {floor:.2f} * {base_eps:,.0f}"
            )
        else:
            notes.append(
                f"ok {fmt_key(key)}: {cand_eps:,.0f} events/sec "
                f"(baseline {base_eps:,.0f})"
            )

    for key in sorted(set(cand_points) - set(base_points)):
        notes.append(f"new sweep point (not gated): {fmt_key(key)}")

    base_cmp = baseline.get("engine_compare")
    cand_cmp = candidate.get("engine_compare")
    if base_cmp and cand_cmp:
        base_speedup = float(base_cmp["speedup"])
        cand_speedup = float(cand_cmp["speedup"])
        if cand_speedup < base_speedup * floor:
            failures.append(
                f"engine speedup regression: {cand_speedup:.2f}x < "
                f"{floor:.2f} * {base_speedup:.2f}x"
            )
        else:
            notes.append(
                f"ok engine speedup: {cand_speedup:.2f}x "
                f"(baseline {base_speedup:.2f}x)"
            )
    elif base_cmp:
        failures.append("candidate is missing the engine_compare block")

    return failures, notes


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", help="freshly produced JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional drop below baseline (default 0.15)",
    )
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fp:
        baseline = json.load(fp)
    with open(args.candidate, encoding="utf-8") as fp:
        candidate = json.load(fp)

    for doc, name in ((baseline, args.baseline), (candidate, args.candidate)):
        schema = doc.get("schema", "")
        if not schema.startswith("entk.bench.scale/"):
            print(f"error: {name}: unrecognised schema {schema!r}")
            return 1

    failures, notes = check(baseline, candidate, args.tolerance)
    for note in notes:
        print(note)
    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("\nbench regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
