#!/usr/bin/env python3
"""Gate BENCH_scale.json against a committed baseline.

Usage:
    check_bench_regression.py BASELINE CANDIDATE [--tolerance 0.15]

Fails (exit 1) when the candidate run regresses more than the
tolerance below the baseline:

  * per matched sweep point -- keyed on (pattern, scaling, n_units,
    cores) -- candidate events_per_sec must be at least
    (1 - tolerance) * baseline events_per_sec;
  * the engine_compare speedup (pooled vs legacy engine, measured in
    the same process on the same machine) must be at least
    (1 - tolerance) * the baseline speedup.  This ratio is
    machine-relative, so it is the most trustworthy signal on
    differently-sized CI runners.

With --tracing-overhead-ceiling the candidate's "tracing" probe block
(bench/scale_sweep's traced-vs-untraced comparison, measured in the
same process) is also gated: overhead_fraction must not exceed the
ceiling, and a missing probe block is an error -- the observability
layer silently losing its cost measurement is itself a regression.

--checkpoint-overhead-ceiling gates the "checkpoint" probe block the
same way: bench/scale_sweep's checkpointed-vs-plain comparison (the
ckpt::Coordinator snapshotting every n_units/8 settled units).  Its
overhead_fraction is the *virtual-TTC* delta -- captures happen at
engine-step boundaries off the virtual-time path, so the expected
value is exactly zero and any drift means a capture perturbed the
run.  A missing block and a zero-snapshot run are both errors.

--multi-session-isolation-ceiling and
--multi-session-inflation-ceiling gate the "multi_session" probe block
(bench/multi_session_probe.hpp: 1/2/4/8 concurrent sessions splitting
one machine).  The isolation ratio is per-session TTC concurrent over
the same carve-up run serially -- sessions own their pilots, so the
expected value is ~1.0 plus the serialised task-creation charge, and
drift means one session's presence moved another's virtual schedule.
The normalised inflation is per-session TTC over the solo-full-machine
TTC, divided by the fleet size -- the shared-capacity stretch, which
exceeds 1.0 only through scheduling granularity at the thinner
per-session allocation.  A missing block or an empty fleet is an
error.

--serve-fairness-ceiling and --serve-p99-ceiling-ms gate the "serve"
probe block (bench/serve_probe.hpp: 8 equal-weight tenants racing
>= 1000 workloads through one in-process entk-serve Service).  The
fairness dispersion is max/min per-tenant units dispatched in
contended fair-share rounds -- equal weights and identical demand
make the expected value 1.0, so drift means the deficit-round-robin
favoured someone.  The p99 submission-to-first-dispatch latency is a
wall-clock tail; its generous ceiling catches stalled drive loops
(lost wakeups), not scheduler jitter.  Rejected submissions from a
queue sized for the storm, incomplete workloads, a storm that never
contended, and a missing block are all errors.

--parallel-speedup-floor gates the "parallel_runtime" probe block
(bench/scale_sweep's work-stealing-pool sweep: a fixed batch of
blocking kernels at 1/4/16 pool threads).  The gated speedup is the
wall-clock ratio against the one-thread run -- the concurrency the
pool actually delivered -- and because the kernels block rather than
spin, the ratio is machine-independent and holds on one-core CI
runners.  --parallel-speedup-threads picks the gated point (default
4, the smoke point; the full-mode acceptance point is 16).  A missing
block is an error.

Baseline points absent from the candidate are an error (a sweep point
silently disappearing is itself a regression); candidate points absent
from the baseline are reported but do not fail the gate.  Baselines
are expected to carry derated (conservative) absolute numbers so that
slower CI runners do not trip the gate on hardware variance -- see
docs/PERFORMANCE.md for the refresh procedure.
"""

import argparse
import json
import sys


def sweep_key(point):
    return (
        point["pattern"],
        point["scaling"],
        int(point["n_units"]),
        int(point["cores"]),
    )


def fmt_key(key):
    pattern, scaling, n_units, cores = key
    return f"{pattern}/{scaling} units={n_units} cores={cores}"


def check_tracing(candidate, ceiling):
    """Gates the tracing probe's overhead fraction against `ceiling`."""
    failures = []
    notes = []
    probe = candidate.get("tracing")
    if probe is None:
        failures.append(
            "candidate has no 'tracing' probe block: the bench ran "
            "without its tracing-overhead measurement (schema drift?)"
        )
        return failures, notes
    if "overhead_fraction" not in probe:
        failures.append(
            "candidate tracing probe has no 'overhead_fraction' metric"
        )
        return failures, notes
    overhead = float(probe["overhead_fraction"])
    compiled = "compiled in" if probe.get("compiled_in") else "compiled out"
    if overhead > ceiling:
        failures.append(
            f"tracing overhead ({compiled}) {overhead:.1%} exceeds "
            f"the {ceiling:.0%} ceiling"
        )
    else:
        notes.append(
            f"ok tracing overhead ({compiled}): {overhead:.1%} "
            f"<= {ceiling:.0%} ceiling"
        )
    return failures, notes


def check_checkpoint(candidate, ceiling):
    """Gates the checkpoint probe's overhead fraction against `ceiling`."""
    failures = []
    notes = []
    probe = candidate.get("checkpoint")
    if probe is None:
        failures.append(
            "candidate has no 'checkpoint' probe block: the bench ran "
            "without its checkpoint-overhead measurement (schema drift?)"
        )
        return failures, notes
    if "overhead_fraction" not in probe:
        failures.append(
            "candidate checkpoint probe has no 'overhead_fraction' metric"
        )
        return failures, notes
    overhead = float(probe["overhead_fraction"])
    snapshots = int(probe.get("snapshots_written", 0))
    if snapshots == 0:
        failures.append(
            "checkpoint probe wrote no snapshots: the checkpointed run "
            "measured nothing (policy drift?)"
        )
    if overhead > ceiling:
        failures.append(
            f"checkpoint overhead ({snapshots} snapshots) {overhead:.1%} "
            f"exceeds the {ceiling:.0%} ceiling"
        )
    elif snapshots > 0:
        notes.append(
            f"ok checkpoint overhead ({snapshots} snapshots): "
            f"{overhead:.1%} <= {ceiling:.0%} ceiling"
        )
    return failures, notes


def check_multi_session(candidate, isolation_ceiling, inflation_ceiling):
    """Gates the multi-session probe's two ratios against the ceilings.

    Either ceiling may be None (not gated); the block itself is
    required whenever this function is called.
    """
    failures = []
    notes = []
    probe = candidate.get("multi_session")
    if probe is None:
        failures.append(
            "candidate has no 'multi_session' probe block: the bench "
            "ran without its concurrent-session measurement "
            "(schema drift?)"
        )
        return failures, notes
    if not probe.get("points"):
        failures.append(
            "multi_session probe has no fleet points: the concurrent "
            "runs measured nothing (fleet drift?)"
        )
        return failures, notes
    sessions = sorted(int(p.get("n_sessions", 0)) for p in probe["points"])
    if isolation_ceiling is not None:
        if "max_isolation_ratio" not in probe:
            failures.append(
                "multi_session probe has no 'max_isolation_ratio' metric"
            )
        else:
            ratio = float(probe["max_isolation_ratio"])
            if ratio > isolation_ceiling:
                failures.append(
                    f"multi-session isolation ratio {ratio:.4f} exceeds "
                    f"the {isolation_ceiling:.2f} ceiling (a session's "
                    f"presence moved another session's virtual schedule)"
                )
            else:
                notes.append(
                    f"ok multi-session isolation (fleets {sessions}): "
                    f"{ratio:.4f} <= {isolation_ceiling:.2f} ceiling"
                )
    if inflation_ceiling is not None:
        if "max_normalized_inflation" not in probe:
            failures.append(
                "multi_session probe has no 'max_normalized_inflation' "
                "metric"
            )
        else:
            inflation = float(probe["max_normalized_inflation"])
            if inflation > inflation_ceiling:
                failures.append(
                    f"multi-session normalised inflation {inflation:.2f} "
                    f"exceeds the {inflation_ceiling:.2f} ceiling"
                )
            else:
                notes.append(
                    f"ok multi-session normalised inflation: "
                    f"{inflation:.2f} <= {inflation_ceiling:.2f} ceiling"
                )
    return failures, notes


def check_parallel_runtime(candidate, floor, threads):
    """Gates the parallel-runtime probe's speedup at `threads` pool
    threads against `floor`.

    bench/scale_sweep's work-stealing-pool sweep runs a fixed batch of
    blocking kernels at 1/4/16 threads; the speedup is the wall-clock
    ratio against the one-thread run, i.e. the concurrency the pool
    actually delivered. Blocking kernels make the ratio deterministic
    and meaningful even on one-core runners, so unlike the events/sec
    points this floor is machine-independent. A missing block is an
    error -- the runtime silently losing its concurrency measurement
    is itself a regression.
    """
    failures = []
    notes = []
    probe = candidate.get("parallel_runtime")
    if probe is None:
        failures.append(
            "candidate has no 'parallel_runtime' probe block: the bench "
            "ran without its work-stealing-pool measurement "
            "(schema drift?)"
        )
        return failures, notes
    key = f"speedup_at_{threads}"
    if key not in probe:
        failures.append(
            f"parallel_runtime probe has no '{key}' metric"
        )
        return failures, notes
    speedup = float(probe[key])
    if speedup < floor:
        failures.append(
            f"parallel runtime speedup at {threads} threads "
            f"{speedup:.2f}x below the {floor:.1f}x floor"
        )
    else:
        notes.append(
            f"ok parallel runtime speedup at {threads} threads: "
            f"{speedup:.2f}x >= {floor:.1f}x floor"
        )
    return failures, notes


def check_serve(candidate, fairness_ceiling, p99_ceiling_ms):
    """Gates the serve probe's fairness dispersion and latency tail.

    Either ceiling may be None (not gated); the block itself is
    required whenever this function is called, and the storm must
    actually have exercised the service: >= 1 workload accepted, zero
    rejected from a queue sized for the storm, every workload
    completed, and at least one contended fair-share round.
    """
    failures = []
    notes = []
    probe = candidate.get("serve")
    if probe is None:
        failures.append(
            "candidate has no 'serve' probe block: the bench ran "
            "without its multi-tenant service measurement "
            "(schema drift?)"
        )
        return failures, notes
    workloads = int(probe.get("workloads", 0))
    tenants = int(probe.get("tenants", 0))
    if workloads < 1000 or tenants < 8:
        failures.append(
            f"serve storm shrank to {workloads} workloads across "
            f"{tenants} tenants (acceptance shape is >= 1000 across "
            f">= 8)"
        )
    rejected = int(probe.get("rejected", 0))
    if rejected != 0:
        failures.append(
            f"serve admission shed {rejected} workloads from a queue "
            f"sized for the storm"
        )
    completed = int(probe.get("completed", 0))
    if completed != workloads:
        failures.append(
            f"serve storm completed only {completed}/{workloads} "
            f"workloads"
        )
    if int(probe.get("contended_total", 0)) == 0:
        failures.append(
            "serve storm had no contended fair-share rounds: the "
            "fairness metric measured nothing (sizing drift?)"
        )
    if fairness_ceiling is not None:
        if "fairness_dispersion" not in probe:
            failures.append(
                "serve probe has no 'fairness_dispersion' metric"
            )
        else:
            dispersion = float(probe["fairness_dispersion"])
            if dispersion > fairness_ceiling:
                failures.append(
                    f"serve fairness dispersion {dispersion:.3f} "
                    f"exceeds the {fairness_ceiling:.2f} ceiling (the "
                    f"fair-share pass favoured a tenant)"
                )
            else:
                notes.append(
                    f"ok serve fairness ({tenants} tenants, "
                    f"{workloads} workloads): dispersion "
                    f"{dispersion:.3f} <= {fairness_ceiling:.2f} "
                    f"ceiling"
                )
    if p99_ceiling_ms is not None:
        if "p99_submit_latency_seconds" not in probe:
            failures.append(
                "serve probe has no 'p99_submit_latency_seconds' "
                "metric"
            )
        else:
            p99_ms = 1000.0 * float(probe["p99_submit_latency_seconds"])
            if p99_ms > p99_ceiling_ms:
                failures.append(
                    f"serve p99 submit-to-first-dispatch latency "
                    f"{p99_ms:.1f} ms exceeds the "
                    f"{p99_ceiling_ms:.0f} ms ceiling"
                )
            else:
                notes.append(
                    f"ok serve p99 submit latency: {p99_ms:.1f} ms "
                    f"<= {p99_ceiling_ms:.0f} ms ceiling"
                )
    return failures, notes


def check(baseline, candidate, tolerance):
    failures = []
    notes = []
    floor = 1.0 - tolerance

    base_points = {sweep_key(p): p for p in baseline.get("sweeps", [])}
    cand_points = {sweep_key(p): p for p in candidate.get("sweeps", [])}

    for key, base in sorted(base_points.items()):
        cand = cand_points.get(key)
        if cand is None:
            failures.append(f"sweep point missing: {fmt_key(key)}")
            continue
        if "events_per_sec" not in base:
            failures.append(
                f"baseline point {fmt_key(key)} has no "
                f"'events_per_sec' metric (malformed baseline)"
            )
            continue
        if "events_per_sec" not in cand:
            failures.append(
                f"candidate point {fmt_key(key)} has no "
                f"'events_per_sec' metric: the bench wrote a point "
                f"without its gating metric (schema drift?)"
            )
            continue
        base_eps = float(base["events_per_sec"])
        cand_eps = float(cand["events_per_sec"])
        if cand_eps < base_eps * floor:
            failures.append(
                f"events/sec regression at {fmt_key(key)}: "
                f"{cand_eps:,.0f} < {floor:.2f} * {base_eps:,.0f}"
            )
        else:
            notes.append(
                f"ok {fmt_key(key)}: {cand_eps:,.0f} events/sec "
                f"(baseline {base_eps:,.0f})"
            )

    for key in sorted(set(cand_points) - set(base_points)):
        notes.append(f"new sweep point (not gated): {fmt_key(key)}")

    base_cmp = baseline.get("engine_compare")
    cand_cmp = candidate.get("engine_compare")
    if base_cmp and cand_cmp:
        if "speedup" not in base_cmp or "speedup" not in cand_cmp:
            missing = "baseline" if "speedup" not in base_cmp else "candidate"
            failures.append(
                f"{missing} engine_compare has no 'speedup' metric"
            )
            return failures, notes
        base_speedup = float(base_cmp["speedup"])
        cand_speedup = float(cand_cmp["speedup"])
        if cand_speedup < base_speedup * floor:
            failures.append(
                f"engine speedup regression: {cand_speedup:.2f}x < "
                f"{floor:.2f} * {base_speedup:.2f}x"
            )
        else:
            notes.append(
                f"ok engine speedup: {cand_speedup:.2f}x "
                f"(baseline {base_speedup:.2f}x)"
            )
    elif base_cmp:
        failures.append("candidate is missing the engine_compare block")

    return failures, notes


def self_test():
    """Exercises the gate logic on synthetic documents (no files)."""

    def point(eps=100.0, **overrides):
        p = {
            "pattern": "bot",
            "scaling": "weak",
            "n_units": 64,
            "cores": 64,
            "events_per_sec": eps,
        }
        p.update(overrides)
        return p

    def doc(points, speedup=10.0):
        return {
            "schema": "entk.bench.scale/1",
            "engine_compare": {"speedup": speedup},
            "sweeps": points,
        }

    checks = []

    # Identical documents pass.
    failures, _ = check(doc([point()]), doc([point()]), 0.15)
    checks.append(("identical passes", not failures))

    # A drop beyond tolerance fails; one inside tolerance passes.
    failures, _ = check(doc([point(100.0)]), doc([point(80.0)]), 0.15)
    checks.append(("eps regression caught", bool(failures)))
    failures, _ = check(doc([point(100.0)]), doc([point(90.0)]), 0.15)
    checks.append(("eps within tolerance passes", not failures))

    # A baseline point missing from the candidate fails.
    failures, _ = check(doc([point()]), doc([]), 0.15)
    checks.append(("missing sweep point caught", bool(failures)))

    # A candidate point without the gating metric is a clear failure,
    # not a traceback.
    broken = point()
    del broken["events_per_sec"]
    failures, _ = check(doc([point()]), doc([broken]), 0.15)
    checks.append(
        (
            "missing candidate metric reported",
            any("events_per_sec" in f for f in failures),
        )
    )

    # Speedup regression and missing speedup metric are both caught.
    failures, _ = check(doc([], 10.0), doc([], 5.0), 0.15)
    checks.append(("speedup regression caught", bool(failures)))
    failures, _ = check(
        doc([], 10.0),
        {"schema": "entk.bench.scale/1", "engine_compare": {}, "sweeps": []},
        0.15,
    )
    checks.append(("missing speedup reported", bool(failures)))

    # Extra candidate points are notes, not failures.
    failures, notes = check(doc([]), doc([point()]), 0.15)
    checks.append(
        ("new point not gated", not failures and any("new" in n for n in notes))
    )

    # Tracing probe: over-ceiling fails, under passes, absent block is
    # a clear failure.
    probe = {"compiled_in": True, "overhead_fraction": 0.21}
    failures, _ = check_tracing({"tracing": probe}, 0.05)
    checks.append(("tracing overhead over ceiling caught", bool(failures)))
    failures, notes = check_tracing({"tracing": probe}, 0.50)
    checks.append(
        (
            "tracing overhead under ceiling passes",
            not failures and any("tracing" in n for n in notes),
        )
    )
    failures, _ = check_tracing({}, 0.05)
    checks.append(
        (
            "missing tracing probe reported",
            any("tracing" in f for f in failures),
        )
    )

    # Checkpoint probe: over-ceiling fails, under passes, absent block
    # and a zero-snapshot run are both clear failures.
    ckpt = {
        "snapshots_written": 8,
        "overhead_fraction": 0.12,
    }
    failures, _ = check_checkpoint({"checkpoint": ckpt}, 0.05)
    checks.append(("checkpoint overhead over ceiling caught", bool(failures)))
    failures, notes = check_checkpoint({"checkpoint": ckpt}, 0.50)
    checks.append(
        (
            "checkpoint overhead under ceiling passes",
            not failures and any("checkpoint" in n for n in notes),
        )
    )
    failures, _ = check_checkpoint({}, 0.05)
    checks.append(
        (
            "missing checkpoint probe reported",
            any("checkpoint" in f for f in failures),
        )
    )
    failures, _ = check_checkpoint(
        {"checkpoint": {"snapshots_written": 0, "overhead_fraction": 0.0}},
        0.05,
    )
    checks.append(
        (
            "zero-snapshot checkpoint probe reported",
            any("no snapshots" in f for f in failures),
        )
    )

    # Multi-session probe: over-ceiling ratios fail, under pass, and
    # absent block / empty fleet / missing metrics are clear failures.
    multi = {
        "max_isolation_ratio": 1.02,
        "max_normalized_inflation": 1.4,
        "points": [{"n_sessions": 1}, {"n_sessions": 8}],
    }
    failures, notes = check_multi_session({"multi_session": multi}, 1.05, 3.0)
    checks.append(
        (
            "multi-session under ceilings passes",
            not failures
            and any("isolation" in n for n in notes)
            and any("inflation" in n for n in notes),
        )
    )
    failures, _ = check_multi_session({"multi_session": multi}, 1.01, 3.0)
    checks.append(
        ("multi-session isolation over ceiling caught", bool(failures))
    )
    failures, _ = check_multi_session({"multi_session": multi}, 1.05, 1.2)
    checks.append(
        ("multi-session inflation over ceiling caught", bool(failures))
    )
    failures, _ = check_multi_session({}, 1.05, 3.0)
    checks.append(
        (
            "missing multi-session probe reported",
            any("multi_session" in f for f in failures),
        )
    )
    failures, _ = check_multi_session(
        {"multi_session": {"points": []}}, 1.05, 3.0
    )
    checks.append(
        (
            "empty multi-session fleet reported",
            any("no fleet points" in f for f in failures),
        )
    )
    failures, _ = check_multi_session(
        {"multi_session": {"points": [{"n_sessions": 2}]}}, 1.05, None
    )
    checks.append(
        (
            "missing multi-session metric reported",
            any("max_isolation_ratio" in f for f in failures),
        )
    )

    # Parallel-runtime probe: below-floor speedup fails, above passes,
    # and absent block / missing metric are clear failures.
    runtime = {"speedup_at_4": 3.8, "speedup_at_16": 14.2}
    failures, notes = check_parallel_runtime(
        {"parallel_runtime": runtime}, 2.0, 4
    )
    checks.append(
        (
            "parallel speedup above floor passes",
            not failures and any("parallel" in n for n in notes),
        )
    )
    failures, _ = check_parallel_runtime(
        {"parallel_runtime": runtime}, 10.0, 4
    )
    checks.append(("parallel speedup below floor caught", bool(failures)))
    failures, _ = check_parallel_runtime({}, 2.0, 4)
    checks.append(
        (
            "missing parallel_runtime probe reported",
            any("parallel_runtime" in f for f in failures),
        )
    )
    failures, _ = check_parallel_runtime(
        {"parallel_runtime": {"points": []}}, 2.0, 16
    )
    checks.append(
        (
            "missing parallel speedup metric reported",
            any("speedup_at_16" in f for f in failures),
        )
    )

    # Serve probe: over-ceiling dispersion / latency fail, under pass,
    # and absent block / shed admissions / incomplete storms /
    # no-contention storms are clear failures.
    serve = {
        "tenants": 8,
        "workloads": 1024,
        "rejected": 0,
        "completed": 1024,
        "contended_total": 16000,
        "fairness_dispersion": 1.05,
        "p99_submit_latency_seconds": 0.25,
    }
    failures, notes = check_serve({"serve": serve}, 1.5, 30000.0)
    checks.append(
        (
            "serve under ceilings passes",
            not failures
            and any("fairness" in n for n in notes)
            and any("p99" in n for n in notes),
        )
    )
    failures, _ = check_serve(
        {"serve": dict(serve, fairness_dispersion=2.0)}, 1.5, 30000.0
    )
    checks.append(("serve fairness over ceiling caught", bool(failures)))
    failures, _ = check_serve(
        {"serve": dict(serve, p99_submit_latency_seconds=45.0)},
        1.5,
        30000.0,
    )
    checks.append(("serve p99 over ceiling caught", bool(failures)))
    failures, _ = check_serve({}, 1.5, 30000.0)
    checks.append(
        (
            "missing serve probe reported",
            any("serve" in f for f in failures),
        )
    )
    failures, _ = check_serve(
        {"serve": dict(serve, rejected=3)}, 1.5, 30000.0
    )
    checks.append(
        ("serve shed admission caught", any("shed" in f for f in failures))
    )
    failures, _ = check_serve(
        {"serve": dict(serve, completed=1000)}, 1.5, 30000.0
    )
    checks.append(
        (
            "serve incomplete storm caught",
            any("completed only" in f for f in failures),
        )
    )
    failures, _ = check_serve(
        {"serve": dict(serve, contended_total=0)}, 1.5, 30000.0
    )
    checks.append(
        (
            "serve uncontended storm caught",
            any("no contended" in f for f in failures),
        )
    )
    failures, _ = check_serve(
        {"serve": dict(serve, workloads=100, completed=100)},
        1.5,
        30000.0,
    )
    checks.append(
        (
            "serve shrunken storm caught",
            any("shrank" in f for f in failures),
        )
    )

    bad = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"{'ok' if ok else 'FAIL'} self-test: {name}")
    if bad:
        print(f"\nself-test: {len(bad)} case(s) failed")
        return 1
    print("\nself-test: PASS")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline", nargs="?", help="committed baseline JSON"
    )
    parser.add_argument(
        "candidate", nargs="?", help="freshly produced JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional drop below baseline (default 0.15)",
    )
    parser.add_argument(
        "--tracing-overhead-ceiling",
        type=float,
        default=None,
        metavar="FRACTION",
        help="also gate the candidate's tracing probe: "
        "overhead_fraction must not exceed this (e.g. 0.05)",
    )
    parser.add_argument(
        "--checkpoint-overhead-ceiling",
        type=float,
        default=None,
        metavar="FRACTION",
        help="also gate the candidate's checkpoint probe: "
        "overhead_fraction must not exceed this (e.g. 0.05)",
    )
    parser.add_argument(
        "--multi-session-isolation-ceiling",
        type=float,
        default=None,
        metavar="RATIO",
        help="also gate the candidate's multi-session probe: "
        "max_isolation_ratio must not exceed this (e.g. 1.05)",
    )
    parser.add_argument(
        "--multi-session-inflation-ceiling",
        type=float,
        default=None,
        metavar="RATIO",
        help="also gate the candidate's multi-session probe: "
        "max_normalized_inflation must not exceed this (e.g. 3.0)",
    )
    parser.add_argument(
        "--parallel-speedup-floor",
        type=float,
        default=None,
        metavar="RATIO",
        help="also gate the candidate's parallel-runtime probe: the "
        "work-stealing pool's blocking-kernel speedup must be at "
        "least this (e.g. 2.0)",
    )
    parser.add_argument(
        "--parallel-speedup-threads",
        type=int,
        default=4,
        metavar="N",
        help="which pool-thread point --parallel-speedup-floor gates "
        "(default 4; the full-mode acceptance point is 16)",
    )
    parser.add_argument(
        "--serve-fairness-ceiling",
        type=float,
        default=None,
        metavar="RATIO",
        help="also gate the candidate's serve probe: the contended "
        "fairness dispersion must not exceed this (e.g. 1.5)",
    )
    parser.add_argument(
        "--serve-p99-ceiling-ms",
        type=float,
        default=None,
        metavar="MS",
        help="also gate the candidate's serve probe: the p99 "
        "submit-to-first-dispatch latency must not exceed this "
        "(e.g. 30000)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in logic checks and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        parser.error("baseline and candidate are required (or --self-test)")

    with open(args.baseline, encoding="utf-8") as fp:
        baseline = json.load(fp)
    with open(args.candidate, encoding="utf-8") as fp:
        candidate = json.load(fp)

    for doc, name in ((baseline, args.baseline), (candidate, args.candidate)):
        schema = doc.get("schema", "")
        if not schema.startswith("entk.bench.scale/"):
            print(f"error: {name}: unrecognised schema {schema!r}")
            return 1

    failures, notes = check(baseline, candidate, args.tolerance)
    if args.tracing_overhead_ceiling is not None:
        tracing_failures, tracing_notes = check_tracing(
            candidate, args.tracing_overhead_ceiling
        )
        failures.extend(tracing_failures)
        notes.extend(tracing_notes)
    if args.checkpoint_overhead_ceiling is not None:
        ckpt_failures, ckpt_notes = check_checkpoint(
            candidate, args.checkpoint_overhead_ceiling
        )
        failures.extend(ckpt_failures)
        notes.extend(ckpt_notes)
    if (
        args.multi_session_isolation_ceiling is not None
        or args.multi_session_inflation_ceiling is not None
    ):
        multi_failures, multi_notes = check_multi_session(
            candidate,
            args.multi_session_isolation_ceiling,
            args.multi_session_inflation_ceiling,
        )
        failures.extend(multi_failures)
        notes.extend(multi_notes)
    if args.parallel_speedup_floor is not None:
        parallel_failures, parallel_notes = check_parallel_runtime(
            candidate,
            args.parallel_speedup_floor,
            args.parallel_speedup_threads,
        )
        failures.extend(parallel_failures)
        notes.extend(parallel_notes)
    if (
        args.serve_fairness_ceiling is not None
        or args.serve_p99_ceiling_ms is not None
    ):
        serve_failures, serve_notes = check_serve(
            candidate,
            args.serve_fairness_ceiling,
            args.serve_p99_ceiling_ms,
        )
        failures.extend(serve_failures)
        notes.extend(serve_notes)
    for note in notes:
        print(note)
    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("\nbench regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
