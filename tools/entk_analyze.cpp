// entk-analyze — whole-repo static analysis for the two properties a
// unit test cannot see: lock acquisition order and module layering.
//
//   entk-analyze --locks src                     lock-order pass
//   entk-analyze --layering --config tools/layering.toml src
//   entk-analyze --locks --dot lock_graph.dot src
//
// With neither --locks nor --layering, both passes run. Findings go
// to stderr as `file:line: [rule] message`; the summary goes to
// stdout. Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
//
// The analyzer is deliberately compiler-free: it re-uses the
// token-aware lexer behind entk-lint (analysis/cpp_lexer.hpp), so it
// runs in CI in well under a second and never goes stale against the
// build flags. See docs/CORRECTNESS.md for the lock-rank table and
// the layering DAG this tool enforces, and
// common/lock_rank.hpp (ENTK_LOCK_RANK_CHECK) for the runtime
// validator that cross-checks the same order dynamically.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"

#include "analysis/cpp_lexer.hpp"
#include "analysis/include_graph.hpp"
#include "analysis/lock_graph.hpp"

namespace fs = std::filesystem;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: entk-analyze [--locks] [--layering] [--config <toml>]\n"
      "                    [--dot <out.dot>] <source-root>...\n");
  return 2;
}

bool is_source(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  bool run_locks = false;
  bool run_layering = false;
  std::string config_path;
  std::string dot_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--locks") {
      run_locks = true;
    } else if (arg == "--layering") {
      run_layering = true;
    } else if (arg == "--config") {
      if (++i >= argc) return usage();
      config_path = argv[i];
    } else if (arg == "--dot") {
      if (++i >= argc) return usage();
      dot_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();
  if (!run_locks && !run_layering) run_locks = run_layering = true;

  std::vector<entk::analysis::LexedFile> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "entk-analyze: not a directory: %s\n",
                   root.c_str());
      return 2;
    }
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end; it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file() || !is_source(it->path())) continue;
      auto lexed =
          entk::analysis::lex_file(it->path().generic_string());
      if (!lexed.ok()) {
        std::fprintf(stderr, "entk-analyze: %s\n",
                     lexed.status().message().c_str());
        return 2;
      }
      files.push_back(lexed.take());
    }
  }

  std::size_t findings = 0;

  if (run_locks) {
    const entk::analysis::LockAnalysis locks =
        entk::analysis::analyze_locks(files);
    for (const entk::analysis::LockFinding& finding : locks.findings) {
      std::fprintf(stderr, "%s:%d: [%s] %s\n", finding.file.c_str(),
                   finding.line, finding.rule.c_str(),
                   finding.message.c_str());
    }
    findings += locks.findings.size();
    if (!dot_path.empty()) {
      if (!entk::write_file_atomic(dot_path, locks.dot).is_ok()) {
        std::fprintf(stderr, "entk-analyze: cannot write %s\n",
                     dot_path.c_str());
        return 2;
      }
    }
    std::printf(
        "entk-analyze --locks: %zu files, %zu locks, %zu edges, "
        "%zu functions, %zu findings\n",
        files.size(), locks.lock_count, locks.edge_count,
        locks.function_count, locks.findings.size());
  }

  if (run_layering) {
    if (config_path.empty()) {
      // Default: layering.toml next to this binary's source tree is
      // unknowable; require the flag instead of guessing.
      std::fprintf(stderr,
                   "entk-analyze: --layering requires --config "
                   "<layering.toml>\n");
      return 2;
    }
    auto config = entk::analysis::load_layering_config(config_path);
    if (!config.ok()) {
      std::fprintf(stderr, "entk-analyze: %s\n",
                   config.status().message().c_str());
      return 2;
    }
    const entk::analysis::LayerAnalysis layers =
        entk::analysis::analyze_layering(files, config.value());
    for (const entk::analysis::LayerFinding& finding :
         layers.findings) {
      std::fprintf(stderr, "%s:%d: [%s] %s\n", finding.file.c_str(),
                   finding.line, finding.rule.c_str(),
                   finding.message.c_str());
    }
    findings += layers.findings.size();
    std::printf(
        "entk-analyze --layering: %zu files, %zu modules, %zu include "
        "edges, %zu findings\n",
        files.size(), layers.module_count, layers.edge_count,
        layers.findings.size());
  }

  return findings == 0 ? 0 : 1;
}
