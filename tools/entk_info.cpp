// entk-info: discovery tool — lists the built-in kernel plugins,
// machine profiles and scheduler policies, and can estimate a kernel's
// runtime on a machine.
//
//   entk-info kernels
//   entk-info machines
//   entk-info schedulers
//   entk-info observability
//   entk-info serve
//   entk-info estimate <kernel> <machine> [key=value ...]
#include <cstring>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace {

using namespace entk;

int list_kernels(const kernels::KernelRegistry& registry) {
  Table table({"kernel", "description"});
  for (const auto& name : registry.names()) {
    table.add_row({name, registry.find(name).value()->description()});
  }
  std::cout << table.to_string();
  return 0;
}

int list_machines() {
  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  Table table({"machine", "nodes", "cores/node", "total cores",
               "mem/node [GB]", "perf", "spawn [ms/unit]",
               "bootstrap [s]"});
  for (const auto& name : catalog.names()) {
    const auto machine = catalog.find(name).value();
    table.add_row({machine.name, std::to_string(machine.nodes),
                   std::to_string(machine.cores_per_node),
                   std::to_string(machine.total_cores()),
                   format_double(machine.memory_per_node_gb, 0),
                   format_double(machine.performance_factor, 2),
                   format_double(machine.unit_spawn_overhead * 1e3, 1),
                   format_double(machine.pilot_bootstrap, 1)});
  }
  std::cout << table.to_string();
  return 0;
}

int list_schedulers() {
  Table table({"policy", "behaviour"});
  table.add_row({"fifo",
                 "strict queue order; an oversized head blocks the rest"});
  table.add_row({"backfill",
                 "first-fit over the whole queue (default, matches RP)"});
  table.add_row({"largest_first",
                 "widest waiting units placed first (anti-fragmentation)"});
  std::cout << table.to_string();
  return 0;
}

int list_observability() {
  std::cout << "tracing compiled in: "
            << (obs::tracing_compiled_in() ? "yes" : "no")
            << " (ENTK_ENABLE_TRACING)\n"
            << "capture a trace:     entk-run <workload> --trace out.json"
               " --metrics out.txt\n\n";
  Table table({"metric"});
  for (const auto& name : obs::Metrics::instance().names()) {
    table.add_row({name});
  }
  std::cout << table.to_string();
  return 0;
}

int list_serve() {
  const serve::ServiceConfig defaults;
  const serve::TenantConfig tenant = defaults.default_tenant;
  std::cout << "entk-serve speaks newline-delimited JSON over a unix\n"
               "socket or loopback TCP (max "
            << serve::kMaxLineBytes
            << " bytes/line). Start it with\n"
               "entk-serve, talk to it with entk-submit — see "
               "docs/SERVICE.md.\n\n";
  Table verbs({"verb", "request members", "behaviour"});
  verbs.add_row({"SUBMIT", "tenant, workload[, name]",
                 "admit a workload (REJECTED when the queue is full)"});
  verbs.add_row({"STATUS", "id", "lifecycle + dispatch snapshot"});
  verbs.add_row({"CANCEL", "id", "cancel queued or running work"});
  verbs.add_row({"RESULTS", "id", "terminal outcome + unit tallies"});
  verbs.add_row({"STATS", "", "service + per-tenant counters"});
  verbs.add_row({"SHUTDOWN", "", "shed the queue, abort, exit"});
  std::cout << verbs.to_string() << "\n";
  Table config({"default", "value", "meaning"});
  config.add_row({"machine", defaults.machine,
                  "simulated machine every workload must name"});
  config.add_row({"queue_capacity",
                  std::to_string(defaults.queue_capacity),
                  "admission bound; beyond it SUBMITs are REJECTED"});
  config.add_row({"max_active_sessions", "2 x pool threads (min 4)",
                  "concurrent sessions across all tenants"});
  config.add_row({"drr_quantum", "8",
                  "frontier nodes credited per tenant per round"});
  config.add_row({"max_inflight_total", "2 x machine cores",
                  "global dispatch budget fair-share divides"});
  config.add_row({"tenant weight", format_double(tenant.weight, 1),
                  "fair-share credit scale (entk-serve --tenant)"});
  config.add_row({"tenant max_sessions",
                  std::to_string(tenant.max_sessions),
                  "concurrent sessions per tenant"});
  config.add_row({"tenant max_inflight_units",
                  std::to_string(tenant.max_inflight_units),
                  "dispatched-but-unsettled units per tenant"});
  std::cout << config.to_string();
  return 0;
}

int estimate(const kernels::KernelRegistry& registry, int argc,
             char** argv) {
  if (argc < 4) {
    std::cerr << "usage: entk-info estimate <kernel> <machine> "
                 "[key=value ...]\n";
    return 1;
  }
  const std::string kernel_name = argv[2];
  const std::string machine_name = argv[3];
  std::vector<std::string> pairs;
  for (int i = 4; i < argc; ++i) pairs.emplace_back(argv[i]);
  auto args = Config::from_pairs(pairs);
  if (!args.ok()) {
    std::cerr << "entk-info: " << args.status().to_string() << "\n";
    return 2;
  }
  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  auto machine = catalog.find(machine_name);
  if (!machine.ok()) {
    std::cerr << "entk-info: " << machine.status().to_string() << "\n";
    return 2;
  }
  auto kernel = registry.find(kernel_name);
  if (!kernel.ok()) {
    std::cerr << "entk-info: " << kernel.status().to_string() << "\n";
    return 2;
  }
  auto bound = kernel.value()->bind(args.value(), machine.value());
  if (!bound.ok()) {
    std::cerr << "entk-info: " << bound.status().to_string() << "\n";
    return 2;
  }
  Table table({"property", "value"});
  table.add_row({"executable", bound.value().executable});
  table.add_row({"arguments", join(bound.value().arguments, " ")});
  table.add_row({"pre_exec", join(bound.value().pre_exec, " && ")});
  table.add_row({"cores", std::to_string(bound.value().cores)});
  table.add_row({"uses MPI", bound.value().uses_mpi ? "yes" : "no"});
  table.add_row({"estimated runtime",
                 format_seconds(bound.value().estimated_duration)});
  table.add_row({"input staging files",
                 std::to_string(bound.value().input_staging.size())});
  table.add_row({"output staging files",
                 std::to_string(bound.value().output_staging.size())});
  std::cout << table.to_string();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto registry = kernels::KernelRegistry::with_builtin_kernels();
  if (argc < 2) {
    std::cerr << "usage: entk-info "
                 "kernels|machines|schedulers|observability|serve|"
                 "estimate\n";
    return 1;
  }
  if (std::strcmp(argv[1], "kernels") == 0) return list_kernels(registry);
  if (std::strcmp(argv[1], "machines") == 0) return list_machines();
  if (std::strcmp(argv[1], "schedulers") == 0) return list_schedulers();
  if (std::strcmp(argv[1], "observability") == 0) {
    return list_observability();
  }
  if (std::strcmp(argv[1], "serve") == 0) return list_serve();
  if (std::strcmp(argv[1], "estimate") == 0) {
    return estimate(registry, argc, argv);
  }
  std::cerr << "entk-info: unknown command '" << argv[1] << "'\n";
  return 1;
}
