// entk-lint: project-invariant checker for the EnTK C++ tree.
//
// A static checker that walks source roots (normally src/) and
// enforces the concurrency / hygiene invariants the toolkit relies
// on. It runs as a CTest test, so `ctest` fails whenever an invariant
// regresses. Since it sits on the token-aware lexer in
// analysis/cpp_lexer.hpp, tokens inside string literals, char
// literals and comments are never matched — a line like
//   log("do not use std::mutex here");
// is not a violation. Rules:
//
//   raw-mutex              No naked std::mutex / std::lock_guard /
//                          std::unique_lock / std::scoped_lock /
//                          std::condition_variable outside the wrapper
//                          header common/mutex.hpp. Everything must go
//                          through entk::Mutex so Clang thread-safety
//                          analysis sees it (docs/CORRECTNESS.md).
//   thread-detach          No std::thread::detach(): detached threads
//                          outlive their owners and race teardown.
//   sleep-in-runtime       No sleep_for/sleep_until inside core/ or
//                          pilot/ product code; runtime waits use
//                          condition variables, not timed polls.
//   raw-clock              No std::chrono::*_clock::now() outside the
//                          wrapper header common/clock.hpp. Runtime
//                          code stamps time through entk::Clock so the
//                          same code yields virtual seconds on the sim
//                          backend; raw reads silently desynchronise
//                          traces and profiles (docs/OBSERVABILITY.md).
//   raw-file-write         No bare std::ofstream / fopen() outside the
//                          crash-consistent helper common/atomic_file.*.
//                          Run artifacts (traces, profiles, metrics,
//                          bench JSON) must go through
//                          entk::write_file_atomic /
//                          entk::AtomicFileWriter so a mid-write kill
//                          never leaves a torn file; sandbox-local task
//                          outputs may allow(raw-file-write) with a
//                          justification (docs/RESILIENCE.md).
//   global-run-state       No new references to process-global mutable
//                          run state inside core/ or pilot/ runtime
//                          code: obs::Metrics::instance(),
//                          obs::TraceRecorder::instance(), bare
//                          next_uid() and the uid-counter resets.
//                          State a workload depends on must hang off
//                          core::Session / core::Runtime so N sessions
//                          can share one process without crossing
//                          wires. The audited pre-existing globals
//                          carry allow(global-run-state) with a
//                          justification (aggregate-by-design metrics,
//                          uid calls whose prefix is already a
//                          session-scoped family).
//   own-header-first       A foo.cpp with a sibling foo.hpp includes it
//                          first, proving the header is self-contained.
//   using-namespace-header No `using namespace` at any scope in a
//                          header; it leaks into every includer.
//
// Suppressions (always pair with a justification; the grammar is
// shared with entk-analyze — see analysis/suppressions.hpp):
//   // entk-lint: allow(<rule>)        trailing: suppress on this line;
//                                      standalone: suppress the whole
//                                      following statement
//   // entk-lint: allow-file(<rule>)   suppress <rule> for this file
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "analysis/cpp_lexer.hpp"
#include "analysis/suppressions.hpp"

namespace {

namespace fs = std::filesystem;
using entk::analysis::LexedFile;
using entk::analysis::SuppressionSet;
using entk::analysis::TokKind;
using entk::analysis::Token;

struct Violation {
  std::string file;
  std::size_t line = 0;  // 1-based; 0 for file-level findings
  std::string rule;
  std::string message;
};

struct FileReport {
  std::vector<Violation> violations;
  std::size_t suppressions_used = 0;
};

// The token tables are string literals, which the lexer keeps out of
// the identifier stream — so unlike the old line-based scanner, this
// file needs no allow-file markers for its own tables.
const std::set<std::string>& raw_mutex_names() {
  static const std::set<std::string> kNames = {
      "mutex",      "timed_mutex", "recursive_mutex",    "shared_mutex",
      "lock_guard", "unique_lock", "condition_variable", "scoped_lock"};
  return kNames;
}

const std::set<std::string>& raw_clock_names() {
  static const std::set<std::string> kNames = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  return kNames;
}

bool is_header(const fs::path& path) { return path.extension() == ".hpp"; }
bool is_source(const fs::path& path) { return path.extension() == ".cpp"; }

std::string generic(const fs::path& path) { return path.generic_string(); }

bool has_suffix(const fs::path& path, const std::string& suffix) {
  const std::string p = generic(path);
  return p.size() >= suffix.size() &&
         p.rfind(suffix) == p.size() - suffix.size();
}

/// True for the one file allowed to spell out raw std primitives.
bool is_wrapper_header(const fs::path& path) {
  return has_suffix(path, "common/mutex.hpp");
}

/// True for the one file allowed to read std::chrono clocks directly.
bool is_clock_header(const fs::path& path) {
  return has_suffix(path, "common/clock.hpp");
}

/// True for the crash-consistent write helper itself, the one place
/// allowed to open files for writing directly.
bool is_atomic_write_helper(const fs::path& path) {
  return has_suffix(path, "common/atomic_file.hpp") ||
         has_suffix(path, "common/atomic_file.cpp");
}

/// True when `path` (relative to the scanned root) lives in a runtime
/// directory where timed polling is banned.
bool in_runtime_dir(const fs::path& relative) {
  const std::string p = generic(relative);
  return p.rfind("core/", 0) == 0 || p.rfind("pilot/", 0) == 0 ||
         p.find("/core/") != std::string::npos ||
         p.find("/pilot/") != std::string::npos;
}

FileReport lint_file(const fs::path& path, const fs::path& relative) {
  FileReport report;
  auto lexed = entk::analysis::lex_file(generic(path));
  if (!lexed.ok()) {
    report.violations.push_back(
        {generic(path), 0, "io", "cannot open file for reading"});
    return report;
  }
  const LexedFile& file = lexed.value();
  const SuppressionSet suppressions =
      entk::analysis::scan_suppressions(file, "entk-lint");

  std::set<std::pair<std::string, int>> reported;  // one per rule+line
  auto add = [&](int line_number, const std::string& rule,
                 std::string message) {
    if (!reported.insert({rule, line_number}).second) return;
    if (suppressions.allows(rule, line_number)) {
      ++report.suppressions_used;
      return;
    }
    report.violations.push_back({generic(path),
                                 static_cast<std::size_t>(line_number),
                                 rule, std::move(message)});
  };

  const std::vector<Token>& tokens = file.tokens;
  auto text = [&](std::size_t i) -> const std::string& {
    static const std::string empty;
    return i < tokens.size() ? tokens[i].text : empty;
  };
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kIdentifier) continue;

    if (!is_wrapper_header(path) && t.text == "std" &&
        text(i + 1) == "::" &&
        raw_mutex_names().count(text(i + 2)) != 0) {
      add(t.line, "raw-mutex",
          "std::" + text(i + 2) +
              " is banned outside common/mutex.hpp; use entk::Mutex"
              " / entk::MutexLock / entk::CondVar");
      continue;
    }

    if (!is_clock_header(path) &&
        raw_clock_names().count(t.text) != 0 && text(i + 1) == "::" &&
        text(i + 2) == "now") {
      add(t.line, "raw-clock",
          t.text +
              "::now() is banned outside common/clock.hpp; stamp time "
              "through entk::Clock (or steady_deadline_after for "
              "CondVar deadlines)");
      continue;
    }

    if (!is_atomic_write_helper(path) && t.text == "std" &&
        text(i + 1) == "::" && text(i + 2) == "ofstream") {
      add(t.line, "raw-file-write",
          "std::ofstream is banned for run artifacts; write through "
          "entk::write_file_atomic / entk::AtomicFileWriter "
          "(common/atomic_file.hpp) so a mid-write kill never leaves a "
          "torn file");
      continue;
    }

    if (!is_atomic_write_helper(path) && t.text == "fopen" &&
        (text(i + 1) == "(" ||
         (i >= 2 && text(i - 1) == "::" && text(i - 2) == "std"))) {
      add(t.line, "raw-file-write",
          "fopen() is banned for run artifacts; write through "
          "entk::write_file_atomic / entk::AtomicFileWriter "
          "(common/atomic_file.hpp) so a mid-write kill never leaves a "
          "torn file");
      continue;
    }

    if (t.text == "detach" && i > 0 &&
        (text(i - 1) == "." || text(i - 1) == "->") &&
        text(i + 1) == "(") {
      add(t.line, "thread-detach",
          "detach() is banned: detached threads outlive their owner "
          "and race process teardown; join via the owning object");
      continue;
    }

    if (in_runtime_dir(relative) &&
        (t.text == "sleep_for" || t.text == "sleep_until")) {
      add(t.line, "sleep-in-runtime",
          "timed sleeps are banned in core/ and pilot/ runtime code; "
          "wait on an entk::CondVar instead");
      continue;
    }

    if (in_runtime_dir(relative)) {
      const bool global_singleton =
          (t.text == "Metrics" || t.text == "TraceRecorder") &&
          text(i + 1) == "::" && text(i + 2) == "instance";
      const bool global_uid =
          (t.text == "next_uid" && text(i + 1) == "(") ||
          t.text == "reset_uid_counters_for_testing" ||
          t.text == "reset_uid_counters_with_prefix";
      if (global_singleton || global_uid) {
        add(t.line, "global-run-state",
            t.text +
                (global_singleton ? "::instance()" : "()") +
                " is process-global mutable run state, banned in core/ "
                "and pilot/: hang workload state off core::Session / "
                "core::Runtime so concurrent sessions cannot cross "
                "wires, or justify with allow(global-run-state)");
        continue;
      }
    }

    if (is_header(path) && t.text == "using" &&
        text(i + 1) == "namespace") {
      add(t.line, "using-namespace-header",
          "`using namespace` in a header leaks into every includer; "
          "use explicit qualification or a namespace alias");
    }
  }

  // File-level rule: own header first.
  if (is_source(path)) {
    fs::path header = path;
    header.replace_extension(".hpp");
    if (fs::exists(header)) {
      const std::string expected = header.filename().string();
      const bool ok =
          !file.includes.empty() &&
          fs::path(file.includes.front().path).filename().string() ==
              expected;
      if (!ok) {
        add(file.includes.empty() ? 1 : file.includes.front().line,
            "own-header-first",
            "first include must be its own header \"" + expected +
                "\" (proves the header is self-contained)");
      }
    }
  }

  return report;
}

int usage() {
  std::fprintf(stderr,
               "usage: entk-lint <source-root> [<source-root>...]\n"
               "Lints .hpp/.cpp files recursively; exits non-zero on "
               "violations.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  std::vector<std::pair<fs::path, fs::path>> files;  // absolute, relative
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (fs::is_regular_file(root)) {
      files.emplace_back(root, root.filename());
      continue;
    }
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "entk-lint: no such file or directory: %s\n",
                   argv[i]);
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& path = entry.path();
      if (is_header(path) || is_source(path)) {
        files.emplace_back(path, fs::relative(path, root));
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  std::size_t suppressions = 0;
  for (const auto& [path, relative] : files) {
    FileReport report = lint_file(path, relative);
    suppressions += report.suppressions_used;
    violations.insert(violations.end(), report.violations.begin(),
                      report.violations.end());
  }

  for (const Violation& violation : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", violation.file.c_str(),
                 violation.line, violation.rule.c_str(),
                 violation.message.c_str());
  }
  std::printf("entk-lint: %zu files, %zu violations, %zu suppressions\n",
              files.size(), violations.size(), suppressions);
  return violations.empty() ? 0 : 1;
}
