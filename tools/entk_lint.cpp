// entk-lint: project-invariant checker for the EnTK C++ tree.
//
// A deliberately dependency-free static checker that walks source
// roots (normally src/) and enforces the concurrency / hygiene
// invariants the toolkit relies on. It runs as a CTest test, so `ctest`
// fails whenever an invariant regresses. Rules:
//
//   raw-mutex              No naked std::mutex / std::lock_guard /
//                          std::unique_lock / std::scoped_lock /
//                          std::condition_variable outside the wrapper
//                          header common/mutex.hpp. Everything must go
//                          through entk::Mutex so Clang thread-safety
//                          analysis sees it (docs/CORRECTNESS.md).
//   thread-detach          No std::thread::detach(): detached threads
//                          outlive their owners and race teardown.
//   sleep-in-runtime       No sleep_for/sleep_until inside core/ or
//                          pilot/ product code; runtime waits use
//                          condition variables, not timed polls.
//   raw-clock              No std::chrono::*_clock::now() outside the
//                          wrapper header common/clock.hpp. Runtime
//                          code stamps time through entk::Clock so the
//                          same code yields virtual seconds on the sim
//                          backend; raw reads silently desynchronise
//                          traces and profiles (docs/OBSERVABILITY.md).
//   own-header-first       A foo.cpp with a sibling foo.hpp includes it
//                          first, proving the header is self-contained.
//   using-namespace-header No `using namespace` at any scope in a
//                          header; it leaks into every includer.
//
// Suppressions (always pair with a justification):
//   // entk-lint: allow(<rule>)        suppress <rule> on this line and
//                                      the next non-comment line
//   // entk-lint: allow-file(<rule>)   suppress <rule> for this file
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  fs::path file;
  std::size_t line = 0;  // 1-based; 0 for file-level findings
  std::string rule;
  std::string message;
};

struct FileReport {
  std::vector<Violation> violations;
  std::size_t suppressions_used = 0;
};

// The token table below necessarily spells the banned names.
// entk-lint: allow-file(raw-mutex)
constexpr const char* kRawMutexTokens[] = {
    "std::mutex",       "std::timed_mutex", "std::recursive_mutex",
    "std::shared_mutex", "std::condition_variable",
    "std::lock_guard",  "std::unique_lock", "std::scoped_lock"};

// The table spells the banned clock names. entk-lint: allow-file(raw-clock)
constexpr const char* kRawClockTokens[] = {
    "steady_clock::now", "system_clock::now",
    "high_resolution_clock::now"};

bool is_header(const fs::path& path) { return path.extension() == ".hpp"; }
bool is_source(const fs::path& path) { return path.extension() == ".cpp"; }

std::string generic(const fs::path& path) { return path.generic_string(); }

bool has_suffix(const fs::path& path, const std::string& suffix) {
  const std::string p = generic(path);
  return p.size() >= suffix.size() &&
         p.rfind(suffix) == p.size() - suffix.size();
}

/// True for the one file allowed to spell out raw std primitives.
bool is_wrapper_header(const fs::path& path) {
  return has_suffix(path, "common/mutex.hpp");
}

/// True for the one file allowed to read std::chrono clocks directly.
bool is_clock_header(const fs::path& path) {
  return has_suffix(path, "common/clock.hpp");
}

/// True when `path` (relative to the scanned root) lives in a runtime
/// directory where timed polling is banned.
bool in_runtime_dir(const fs::path& relative) {
  const std::string p = generic(relative);
  return p.rfind("core/", 0) == 0 || p.rfind("pilot/", 0) == 0 ||
         p.find("/core/") != std::string::npos ||
         p.find("/pilot/") != std::string::npos;
}

/// Strips // and /* */ comments from one line, tracking the block
/// state across lines. String literals are left alone — suppressions
/// exist for the rare literal that mentions a banned token.
std::string strip_comments(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') break;  // rest is a line comment
      if (line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
    }
    out.push_back(line[i]);
  }
  return out;
}

/// Extracts `rule` from `entk-lint: allow(rule)` / allow-file(rule)
/// markers in a raw line. Returns pairs of (rule, is_file_scope).
std::vector<std::pair<std::string, bool>> parse_suppressions(
    const std::string& line) {
  std::vector<std::pair<std::string, bool>> result;
  const std::string tag = "entk-lint: allow";
  std::size_t at = 0;
  while ((at = line.find(tag, at)) != std::string::npos) {
    std::size_t cursor = at + tag.size();
    bool file_scope = false;
    if (line.compare(cursor, 5, "-file") == 0) {
      file_scope = true;
      cursor += 5;
    }
    if (cursor < line.size() && line[cursor] == '(') {
      const std::size_t close = line.find(')', cursor);
      if (close != std::string::npos) {
        result.emplace_back(line.substr(cursor + 1, close - cursor - 1),
                            file_scope);
      }
    }
    at = cursor;
  }
  return result;
}

/// True if the stripped line calls `.detach()` / `->detach()`.
bool calls_detach(const std::string& code) {
  std::size_t at = 0;
  while ((at = code.find("detach", at)) != std::string::npos) {
    const std::size_t after = at + 6;
    const bool called =
        after < code.size() &&
        code.find_first_not_of(" \t", after) != std::string::npos &&
        code[code.find_first_not_of(" \t", after)] == '(';
    const bool member = at > 0 && (code[at - 1] == '.' ||
                                   (at > 1 && code[at - 1] == '>' &&
                                    code[at - 2] == '-'));
    if (called && member) return true;
    at = after;
  }
  return false;
}

/// Returns the include target of an `#include "..."` / `<...>` line,
/// or empty if the line is not an include directive.
std::string include_target(const std::string& code) {
  const std::size_t hash = code.find_first_not_of(" \t");
  if (hash == std::string::npos || code[hash] != '#') return {};
  const std::size_t kw = code.find_first_not_of(" \t", hash + 1);
  if (kw == std::string::npos || code.compare(kw, 7, "include") != 0) {
    return {};
  }
  const std::size_t open = code.find_first_of("\"<", kw + 7);
  if (open == std::string::npos) return {};
  const char close = code[open] == '"' ? '"' : '>';
  const std::size_t end = code.find(close, open + 1);
  if (end == std::string::npos) return {};
  return code.substr(open + 1, end - open - 1);
}

FileReport lint_file(const fs::path& path, const fs::path& relative) {
  FileReport report;
  std::ifstream stream(path);
  if (!stream) {
    report.violations.push_back(
        {path, 0, "io", "cannot open file for reading"});
    return report;
  }

  std::vector<std::string> raw_lines;
  for (std::string line; std::getline(stream, line);) {
    raw_lines.push_back(std::move(line));
  }

  // Pass 1: collect suppressions.
  std::set<std::string> file_allows;
  std::set<std::pair<std::string, std::size_t>> line_allows;  // rule, line#
  {
    bool in_block = false;
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      const bool was_in_block = in_block;
      const std::string code = strip_comments(raw_lines[i], in_block);
      const bool comment_only =
          was_in_block ||
          code.find_first_not_of(" \t") == std::string::npos;
      for (const auto& [rule, file_scope] :
           parse_suppressions(raw_lines[i])) {
        if (file_scope) {
          file_allows.insert(rule);
        } else {
          line_allows.insert({rule, i + 1});
          // A standalone comment suppresses the following line too.
          if (comment_only) line_allows.insert({rule, i + 2});
        }
      }
    }
  }

  auto add = [&](std::size_t line_number, const std::string& rule,
                 std::string message) {
    if (file_allows.count(rule) ||
        line_allows.count({rule, line_number})) {
      ++report.suppressions_used;
      return;
    }
    report.violations.push_back(
        {path, line_number, rule, std::move(message)});
  };

  // Pass 2: per-line token rules.
  bool in_block = false;
  std::string first_include;
  std::size_t first_include_line = 0;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string code = strip_comments(raw_lines[i], in_block);
    const std::size_t line_number = i + 1;

    if (first_include.empty()) {
      const std::string target = include_target(code);
      if (!target.empty()) {
        first_include = target;
        first_include_line = line_number;
      }
    }

    if (!is_wrapper_header(path)) {
      for (const char* token : kRawMutexTokens) {
        if (code.find(token) != std::string::npos) {
          add(line_number, "raw-mutex",
              std::string(token) +
                  " is banned outside common/mutex.hpp; use entk::Mutex"
                  " / entk::MutexLock / entk::CondVar");
          break;  // one finding per line is enough
        }
      }
    }

    if (!is_clock_header(path)) {
      for (const char* token : kRawClockTokens) {
        if (code.find(token) != std::string::npos) {
          add(line_number, "raw-clock",
              std::string(token) +
                  "() is banned outside common/clock.hpp; stamp time "
                  "through entk::Clock (or steady_deadline_after for "
                  "CondVar deadlines)");
          break;
        }
      }
    }

    if (calls_detach(code)) {
      add(line_number, "thread-detach",
          "detach() is banned: detached threads outlive their owner "
          "and race process teardown; join via the owning object");
    }

    if (in_runtime_dir(relative) &&
        (code.find("sleep_for") != std::string::npos ||
         code.find("sleep_until") != std::string::npos)) {
      add(line_number, "sleep-in-runtime",
          "timed sleeps are banned in core/ and pilot/ runtime code; "
          "wait on an entk::CondVar instead");
    }

    if (is_header(path) && code.find("using namespace") != std::string::npos) {
      add(line_number, "using-namespace-header",
          "`using namespace` in a header leaks into every includer; "
          "use explicit qualification or a namespace alias");
    }
  }

  // File-level rule: own header first.
  if (is_source(path)) {
    fs::path header = path;
    header.replace_extension(".hpp");
    if (fs::exists(header)) {
      const std::string expected = header.filename().string();
      const bool ok =
          !first_include.empty() &&
          fs::path(first_include).filename().string() == expected;
      if (!ok) {
        add(first_include_line == 0 ? 1 : first_include_line,
            "own-header-first",
            "first include must be its own header \"" + expected +
                "\" (proves the header is self-contained)");
      }
    }
  }

  return report;
}

int usage() {
  std::fprintf(stderr,
               "usage: entk-lint <source-root> [<source-root>...]\n"
               "Lints .hpp/.cpp files recursively; exits non-zero on "
               "violations.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  std::vector<std::pair<fs::path, fs::path>> files;  // absolute, relative
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (fs::is_regular_file(root)) {
      files.emplace_back(root, root.filename());
      continue;
    }
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "entk-lint: no such file or directory: %s\n",
                   argv[i]);
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& path = entry.path();
      if (is_header(path) || is_source(path)) {
        files.emplace_back(path, fs::relative(path, root));
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  std::size_t suppressions = 0;
  for (const auto& [path, relative] : files) {
    FileReport report = lint_file(path, relative);
    suppressions += report.suppressions_used;
    violations.insert(violations.end(), report.violations.begin(),
                      report.violations.end());
  }

  for (const Violation& violation : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n",
                 generic(violation.file).c_str(), violation.line,
                 violation.rule.c_str(), violation.message.c_str());
  }
  std::printf("entk-lint: %zu files, %zu violations, %zu suppressions\n",
              files.size(), violations.size(), suppressions);
  return violations.empty() ? 0 : 1;
}
