// entk-plan: run the execution strategy from the command line — given
// a kernel, its arguments and the ensemble shape, rank the candidate
// (machine, pilot size) plans by predicted time to completion.
//
//   entk-plan <kernel> <n_tasks> [stages] [key=value ...] [--top N]
//   entk-plan --dot <workload-file>
//
// Example:
//   entk-plan md.simulate 1024 1 steps=300 n_particles=2881 --top 8
//
// With --dot, the workload file's pattern is compiled to its TaskGraph
// and dumped in Graphviz format (pipe into `dot -Tsvg`): the exact
// dependency structure the executor will drive, before running a thing.
#include <cstring>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"

namespace {

int dump_dot(const std::string& path) {
  using namespace entk;
  auto spec = core::load_workload(path);
  if (!spec.ok()) {
    std::cerr << "entk-plan: " << spec.status().to_string() << "\n";
    return 2;
  }
  auto pattern = core::build_pattern(spec.value());
  if (!pattern.ok()) {
    std::cerr << "entk-plan: " << pattern.status().to_string() << "\n";
    return 2;
  }
  core::TaskGraph graph;
  if (Status status = pattern.value()->compile(graph); !status.is_ok()) {
    std::cerr << "entk-plan: " << status.to_string() << "\n";
    return 2;
  }
  std::cout << graph.to_dot();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk;

  if (argc == 3 && std::strcmp(argv[1], "--dot") == 0) {
    return dump_dot(argv[2]);
  }
  if (argc < 3) {
    std::cerr << "usage: entk-plan <kernel> <n_tasks> [stages] "
                 "[key=value ...] [--top N]\n"
                 "       entk-plan --dot <workload-file>\n";
    return 1;
  }
  const std::string kernel_name = argv[1];
  const Count n_tasks = std::atoll(argv[2]);
  Count stages = 1;
  std::size_t top = 10;
  std::vector<std::string> pairs;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<std::size_t>(std::atoll(argv[++i]));
      continue;
    }
    if (std::strchr(argv[i], '=') != nullptr) {
      pairs.emplace_back(argv[i]);
    } else {
      stages = std::atoll(argv[i]);
    }
  }

  auto args = Config::from_pairs(pairs);
  if (!args.ok()) {
    std::cerr << "entk-plan: " << args.status().to_string() << "\n";
    return 2;
  }
  const auto registry = kernels::KernelRegistry::with_builtin_kernels();
  core::TaskSpec sample;
  sample.kernel = kernel_name;
  sample.args = args.value();
  auto workload =
      core::profile_for_ensemble(n_tasks, stages, sample, registry);
  if (!workload.ok()) {
    std::cerr << "entk-plan: " << workload.status().to_string() << "\n";
    return 2;
  }

  const auto catalog = sim::MachineCatalog::with_builtin_profiles();
  core::ExecutionStrategy strategy(catalog);
  core::StrategyObjective objective;
  auto best = strategy.plan(workload.value(), objective);
  if (!best.ok()) {
    std::cerr << "entk-plan: " << best.status().to_string() << "\n";
    return 2;
  }

  std::cout << "workload: " << n_tasks << " x " << kernel_name << " ("
            << stages << " stage" << (stages > 1 ? "s" : "") << ", "
            << format_seconds(workload.value().reference_task_duration)
            << "/task on the reference machine, "
            << workload.value().cores_per_task << " core(s)/task)\n\n";
  Table table({"machine", "pilot cores", "queue wait [s]",
               "makespan [s]", "predicted TTC [s]"});
  std::size_t shown = 0;
  for (const auto& candidate : strategy.last_candidates()) {
    if (shown++ >= top) break;
    table.add_row({candidate.machine,
                   std::to_string(candidate.pilot_cores),
                   format_double(candidate.predicted_queue_wait, 1),
                   format_double(candidate.predicted_makespan, 1),
                   format_double(candidate.predicted_ttc, 1)});
  }
  std::cout << table.to_string() << "\nbest: " << best.value().machine
            << " with " << best.value().pilot_cores
            << " cores (request walltime "
            << format_seconds(best.value().pilot_runtime) << ")\n";
  return 0;
}
