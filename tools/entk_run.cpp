// entk-run: execute a declarative workload file.
//
//   entk-run workload.entk [--profile-prefix out/run1] [--csv]
//            [--trace out.json] [--metrics out.txt]
//            [--checkpoint-dir ckpts [--checkpoint-every 1000]
//             [--checkpoint-interval 600] [--resume ckpts/ckpt-000001.entkckpt]]
//   entk-run --concurrent a.entk b.entk ... [--csv] [--trace out.json]
//            [--metrics out.txt]
//
// --concurrent runs every file as a named session (the file stem) on
// ONE shared backend: all patterns execute together under a single
// wait, sharing the machine. All files must agree on the backend and
// (sim) machine. Checkpointing and profile export are single-workload
// features and are rejected in concurrent mode.
//
// See core/workload_file.hpp for the file format and docs/RESILIENCE.md
// for checkpoint/restart. Exit codes: 0 success (including a SIGTERM/
// SIGINT stop after a final snapshot), 1 usage error, 2 load/parse
// error, 3 run failure.
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "ckpt/checkpointed_run.hpp"
#include "common/atomic_file.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entk.hpp"
#include "core/workload_file.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

void print_usage() {
  std::cerr
      << "usage: entk-run <workload-file> [options]\n"
         "options:\n"
         "  --profile-prefix <prefix>  write <prefix>_units.csv and\n"
         "                             <prefix>_overheads.csv\n"
         "  --csv                      print the summary as CSV\n"
         "  --trace <path>             record the run and write a\n"
         "                             Chrome trace-event JSON file\n"
         "  --metrics <path>           write runtime metrics as text\n"
         "                             ('-' for stdout)\n"
         "  --checkpoint-dir <dir>     write crash-consistent snapshots\n"
         "                             into <dir> (sim backend only);\n"
         "                             SIGTERM/SIGINT write a final\n"
         "                             snapshot and exit cleanly\n"
         "  --checkpoint-every <n>     snapshot every <n> settled units\n"
         "                             (default 1000)\n"
         "  --checkpoint-interval <s>  also snapshot every <s> virtual\n"
         "                             seconds (default off)\n"
         "  --resume <snapshot>        resume the workload from a\n"
         "                             snapshot written by an earlier\n"
         "                             checkpointed run\n"
         "  --concurrent               run every given workload file as\n"
         "                             a named session on one shared\n"
         "                             backend (all files must agree on\n"
         "                             backend/machine)\n"
         "  --help                     this text\n";
}

// Events per thread retained while tracing; big enough that even a
// 100k-unit sim run keeps every event (each unit emits ~10).
constexpr std::size_t kTraceCapacity = std::size_t{1} << 21;

// async-signal-safe: the handler only sets the flag; the coordinator
// polls it at engine-step boundaries and writes the final snapshot
// from the main thread.
std::atomic<bool> g_stop_requested{false};

extern "C" void handle_stop_signal(int) {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk;

  std::string workload_path;
  std::vector<std::string> workload_paths;
  std::string profile_prefix;
  std::string trace_path;
  std::string metrics_path;
  std::string checkpoint_dir;
  std::string resume_path;
  std::uint64_t checkpoint_every = 1000;
  double checkpoint_interval = 0.0;
  bool csv = false;
  bool concurrent = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    }
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
      continue;
    }
    if (std::strcmp(argv[i], "--concurrent") == 0) {
      concurrent = true;
      continue;
    }
    if (std::strcmp(argv[i], "--profile-prefix") == 0) {
      if (i + 1 >= argc) {
        print_usage();
        return 1;
      }
      profile_prefix = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        print_usage();
        return 1;
      }
      trace_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      if (i + 1 >= argc) {
        print_usage();
        return 1;
      }
      metrics_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
      if (i + 1 >= argc) {
        print_usage();
        return 1;
      }
      checkpoint_dir = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      if (i + 1 >= argc) {
        print_usage();
        return 1;
      }
      checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    if (std::strcmp(argv[i], "--checkpoint-interval") == 0) {
      if (i + 1 >= argc) {
        print_usage();
        return 1;
      }
      checkpoint_interval = std::strtod(argv[++i], nullptr);
      continue;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      if (i + 1 >= argc) {
        print_usage();
        return 1;
      }
      resume_path = argv[++i];
      continue;
    }
    if (argv[i][0] != '-') {
      workload_paths.emplace_back(argv[i]);
      continue;
    }
    print_usage();
    return 1;
  }
  if (workload_paths.empty()) {
    print_usage();
    return 1;
  }
  if (!concurrent && workload_paths.size() > 1) {
    print_usage();
    return 1;
  }
  if (!workload_paths.empty()) workload_path = workload_paths.front();
  if (concurrent &&
      (!checkpoint_dir.empty() || !resume_path.empty() ||
       !profile_prefix.empty())) {
    std::cerr << "entk-run: --concurrent does not support checkpointing "
                 "or --profile-prefix (single-workload features)\n";
    return 1;
  }
  if (!resume_path.empty() && checkpoint_dir.empty()) {
    std::cerr << "entk-run: --resume needs --checkpoint-dir (the resumed "
                 "run keeps checkpointing into it)\n";
    return 1;
  }

  if (concurrent) {
    auto registry = kernels::KernelRegistry::with_builtin_kernels();
    std::vector<core::ConcurrentWorkload> workloads;
    for (const std::string& path : workload_paths) {
      auto spec = core::load_workload(path);
      if (!spec.ok()) {
        std::cerr << "entk-run: " << spec.status().to_string() << "\n";
        return 2;
      }
      // Session name = file stem, suffixed on collision so two files
      // named runs/a.entk and other/a.entk can still run together.
      std::string name = std::filesystem::path(path).stem().string();
      if (name.empty()) name = "workload";
      std::string candidate = name;
      for (int suffix = 2;; ++suffix) {
        bool taken = false;
        for (const auto& workload : workloads) {
          if (workload.session == candidate) {
            taken = true;
            break;
          }
        }
        if (!taken) break;
        candidate = name + "-" + std::to_string(suffix);
      }
      workloads.push_back({std::move(candidate), spec.take()});
    }
    if (!trace_path.empty()) {
      auto& recorder = obs::TraceRecorder::instance();
      recorder.set_capacity_per_thread(kTraceCapacity);
      recorder.set_enabled(true);
    }
    auto reports = core::run_workloads_concurrent(workloads, registry);
    if (!trace_path.empty()) {
      auto& recorder = obs::TraceRecorder::instance();
      recorder.set_enabled(false);
      if (Status status = obs::write_chrome_trace(trace_path,
                                                  recorder.snapshot());
          !status.is_ok()) {
        std::cerr << "entk-run: trace export failed: "
                  << status.to_string() << "\n";
        return 3;
      }
    }
    if (!metrics_path.empty()) {
      const std::string text = obs::Metrics::instance().to_text();
      if (metrics_path == "-") {
        std::cout << text;
      } else if (Status status = write_file_atomic(metrics_path, text);
                 !status.is_ok()) {
        std::cerr << "entk-run: cannot write metrics to " << metrics_path
                  << ": " << status.to_string() << "\n";
        return 3;
      }
    }
    if (!reports.ok()) {
      std::cerr << "entk-run: " << reports.status().to_string() << "\n";
      return 3;
    }
    bool any_failed = false;
    if (csv) {
      std::cout << "session,tasks,ttc,execution_time,outcome\n";
    }
    Table table({"session", "tasks", "TTC", "execution time", "outcome"});
    for (const core::RunReport& report : reports.value()) {
      const core::OverheadProfile& overheads = report.overheads;
      const bool failed = !report.outcome.is_ok();
      any_failed = any_failed || failed;
      if (csv) {
        std::cout << report.session << "," << overheads.n_units << ","
                  << overheads.ttc << "," << overheads.execution_time
                  << "," << (failed ? "failed" : "ok") << "\n";
      } else {
        table.add_row({report.session, std::to_string(overheads.n_units),
                       format_seconds(overheads.ttc),
                       format_seconds(overheads.execution_time),
                       failed ? report.outcome.to_string() : "ok"});
      }
    }
    if (!csv) {
      std::cout << workload_paths.size()
                << " workloads ran concurrently on one backend\n\n"
                << table.to_string();
    }
    if (any_failed) {
      std::cerr << "entk-run: at least one session finished with "
                   "failures\n";
      return 3;
    }
    return 0;
  }

  auto spec = core::load_workload(workload_path);
  if (!spec.ok()) {
    std::cerr << "entk-run: " << spec.status().to_string() << "\n";
    return 2;
  }
  auto registry = kernels::KernelRegistry::with_builtin_kernels();
  auto resolved = core::resolve_workload(spec.value(), registry);
  if (!resolved.ok()) {
    std::cerr << "entk-run: " << resolved.status().to_string() << "\n";
    return 2;
  }
  if (spec.value().auto_cores || spec.value().auto_machine) {
    std::cerr << "entk-run: strategy selected " << resolved.value().machine
              << " with " << resolved.value().cores << " cores\n";
  }
  if (!trace_path.empty()) {
    if (!obs::tracing_compiled_in()) {
      std::cerr << "entk-run: this build was compiled with "
                   "ENTK_ENABLE_TRACING=0; the trace will only contain "
                   "run bookkeeping\n";
    }
    auto& recorder = obs::TraceRecorder::instance();
    recorder.set_capacity_per_thread(kTraceCapacity);
    recorder.set_enabled(true);
  }
  Result<core::RunReport> report =
      make_error(Errc::kInternal, "run not attempted");
  bool checkpoint_stop = false;
  std::string last_snapshot;
  if (!checkpoint_dir.empty()) {
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    ckpt::CheckpointedRunOptions ckpt_options;
    ckpt_options.directory = checkpoint_dir;
    ckpt_options.policy.every_settled = checkpoint_every;
    ckpt_options.policy.every_interval = checkpoint_interval;
    ckpt_options.resume_path = resume_path;
    ckpt_options.stop_requested = [] {
      return g_stop_requested.load(std::memory_order_relaxed);
    };
    auto run = ckpt::run_workload_with_checkpoints(resolved.value(),
                                                   registry, ckpt_options);
    if (run.ok()) {
      checkpoint_stop = run.value().checkpoint_stop;
      last_snapshot = run.value().last_snapshot_path;
      report = std::move(run.value().report);
    } else {
      report = run.status();
    }
  } else {
    report = core::run_workload(resolved.value(), registry);
  }
  if (!trace_path.empty()) {
    auto& recorder = obs::TraceRecorder::instance();
    recorder.set_enabled(false);
    const auto stats = recorder.stats();
    if (Status status = obs::write_chrome_trace(trace_path,
                                                recorder.snapshot());
        !status.is_ok()) {
      std::cerr << "entk-run: trace export failed: " << status.to_string()
                << "\n";
      return 3;
    }
    std::cerr << "entk-run: wrote " << stats.recorded << " trace events ("
              << stats.dropped << " dropped) to " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    const std::string text = obs::Metrics::instance().to_text();
    if (metrics_path == "-") {
      std::cout << text;
    } else if (Status status = write_file_atomic(metrics_path, text);
               !status.is_ok()) {
      std::cerr << "entk-run: cannot write metrics to " << metrics_path
                << ": " << status.to_string() << "\n";
      return 3;
    }
  }
  if (!report.ok()) {
    std::cerr << "entk-run: " << report.status().to_string() << "\n";
    return 3;
  }

  const core::OverheadProfile& overheads = report.value().overheads;
  const auto utilization = core::compute_utilization(
      report.value().units, resolved.value().cores);
  if (csv) {
    std::cout << core::overheads_csv(overheads);
  } else {
    std::cout << "workload: " << workload_path << " (pattern "
              << resolved.value().pattern << ", backend "
              << resolved.value().backend << " on "
              << resolved.value().machine << ", "
              << resolved.value().cores << " cores)\n\n";
    Table table({"metric", "value"});
    table.add_row({"tasks", std::to_string(overheads.n_units)});
    table.add_row({"TTC", format_seconds(overheads.ttc)});
    table.add_row({"core overhead", format_seconds(overheads.core_overhead)});
    table.add_row(
        {"pattern overhead", format_seconds(overheads.pattern_overhead)});
    table.add_row(
        {"execution time", format_seconds(overheads.execution_time)});
    table.add_row(
        {"runtime overhead", format_seconds(overheads.runtime_overhead)});
    table.add_row({"utilization",
                   format_double(100.0 * utilization.average_utilization,
                                 1) +
                       " %"});
    std::cout << table.to_string();
  }
  if (!profile_prefix.empty()) {
    if (Status status =
            core::export_run_profile(report.value(), profile_prefix);
        !status.is_ok()) {
      std::cerr << "entk-run: profile export failed: "
                << status.to_string() << "\n";
      return 3;
    }
  }
  if (checkpoint_stop) {
    std::cerr << "entk-run: stopped on request after writing "
              << last_snapshot << "\n"
              << "entk-run: resume with: entk-run " << workload_path
              << " --checkpoint-dir " << checkpoint_dir << " --resume "
              << last_snapshot << "\n";
    return 0;
  }
  if (!report.value().outcome.is_ok()) {
    std::cerr << "entk-run: workload finished with failures: "
              << report.value().outcome.to_string() << "\n";
    return 3;
  }
  return 0;
}
