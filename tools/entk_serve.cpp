// entk-serve: the multi-tenant ensemble service daemon.
//
//   entk-serve [--socket path.sock] [--port N] [--machine name]
//              [--queue-capacity N] [--max-active N] [--quantum N]
//              [--runtime-threads N]
//              [--tenant name=weight[:max_sessions[:max_inflight]]]...
//
// Binds a Unix-domain socket and/or a loopback TCP port (default:
// ./entk-serve.sock when neither is given; --port 0 picks an
// ephemeral port) and serves the newline-delimited JSON protocol
// (docs/SERVICE.md). Workloads from N tenants run as concurrent
// sessions over one shared simulated machine with admission control,
// per-tenant quotas and weighted fair-share dispatch.
//
// SIGINT/SIGTERM (or a SHUTDOWN request) stop the service cleanly:
// queued workloads are cancelled, running ones aborted and settled,
// then the final STATS document is printed to stdout. Exit codes:
// 0 clean shutdown, 1 usage error, 2 startup failure.
#include <atomic>
#include <csignal>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_runtime.hpp"
#include "serve/listener.hpp"
#include "serve/service.hpp"

namespace {

void print_usage() {
  std::cerr
      << "usage: entk-serve [options]\n"
         "options:\n"
         "  --socket <path>        bind a unix-domain socket\n"
         "  --port <n>             bind loopback TCP port n (0 = pick)\n"
         "  --machine <name>       simulated machine (default localhost)\n"
         "  --queue-capacity <n>   admission queue bound (default 256)\n"
         "  --max-active <n>       max concurrent sessions (default\n"
         "                         max(4, 2*runtime-threads))\n"
         "  --quantum <n>          fair-share quantum in frontier nodes\n"
         "                         (default 8)\n"
         "  --runtime-threads <n>  work-stealing pool size (default 0 =\n"
         "                         serial)\n"
         "  --tenant <spec>        name=weight[:max_sessions[:max_inflight]]\n"
         "                         (repeatable)\n"
         "  --help                 this text\n";
}

std::atomic<bool> g_stop_requested{false};

extern "C" void handle_stop_signal(int) {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

bool parse_size(const std::string& text, std::size_t& out) {
  try {
    std::size_t end = 0;
    const unsigned long long value = std::stoull(text, &end);
    if (end != text.size()) return false;
    out = static_cast<std::size_t>(value);
    return true;
  } catch (...) {
    return false;
  }
}

/// name=weight[:max_sessions[:max_inflight]]
bool parse_tenant_spec(const std::string& spec, std::string& name,
                       entk::serve::TenantConfig& config) {
  const std::size_t equals = spec.find('=');
  if (equals == std::string::npos || equals == 0) return false;
  name = spec.substr(0, equals);
  std::vector<std::string> parts;
  std::size_t start = equals + 1;
  while (start <= spec.size()) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.empty() || parts.size() > 3) return false;
  try {
    std::size_t end = 0;
    config.weight = std::stod(parts[0], &end);
    if (end != parts[0].size()) return false;
  } catch (...) {
    return false;
  }
  if (parts.size() > 1 && !parse_size(parts[1], config.max_sessions)) {
    return false;
  }
  if (parts.size() > 2 &&
      !parse_size(parts[2], config.max_inflight_units)) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  entk::serve::ServiceConfig config;
  entk::serve::Listener::Options listen;
  std::size_t runtime_threads = 0;
  std::vector<std::pair<std::string, entk::serve::TenantConfig>> tenants;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "entk-serve: " << flag << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--socket") {
      listen.unix_path = next("--socket");
    } else if (arg == "--port") {
      std::size_t port = 0;
      if (!parse_size(next("--port"), port) || port > 65535) {
        std::cerr << "entk-serve: bad --port\n";
        return 1;
      }
      listen.tcp_port = static_cast<int>(port);
    } else if (arg == "--machine") {
      config.machine = next("--machine");
    } else if (arg == "--queue-capacity") {
      if (!parse_size(next("--queue-capacity"), config.queue_capacity)) {
        std::cerr << "entk-serve: bad --queue-capacity\n";
        return 1;
      }
    } else if (arg == "--max-active") {
      if (!parse_size(next("--max-active"), config.max_active_sessions)) {
        std::cerr << "entk-serve: bad --max-active\n";
        return 1;
      }
    } else if (arg == "--quantum") {
      if (!parse_size(next("--quantum"), config.drr_quantum)) {
        std::cerr << "entk-serve: bad --quantum\n";
        return 1;
      }
    } else if (arg == "--runtime-threads") {
      if (!parse_size(next("--runtime-threads"), runtime_threads)) {
        std::cerr << "entk-serve: bad --runtime-threads\n";
        return 1;
      }
    } else if (arg == "--tenant") {
      std::string name;
      entk::serve::TenantConfig tenant;
      if (!parse_tenant_spec(next("--tenant"), name, tenant)) {
        std::cerr << "entk-serve: bad --tenant (want "
                     "name=weight[:max_sessions[:max_inflight]])\n";
        return 1;
      }
      tenants.emplace_back(std::move(name), tenant);
    } else {
      std::cerr << "entk-serve: unknown option " << arg << "\n";
      print_usage();
      return 1;
    }
  }
  if (listen.unix_path.empty() && listen.tcp_port < 0) {
    listen.unix_path = "entk-serve.sock";
  }

  if (runtime_threads > 0) {
    entk::core::set_parallel_threads(runtime_threads);
  }

  auto service = entk::serve::Service::create(config);
  if (!service.ok()) {
    std::cerr << "entk-serve: " << service.status().to_string() << "\n";
    return 2;
  }
  entk::serve::Service& daemon = *service.value();
  for (const auto& [name, tenant] : tenants) {
    const entk::Status configured = daemon.configure_tenant(name, tenant);
    if (!configured.is_ok()) {
      std::cerr << "entk-serve: --tenant " << name << ": "
                << configured.to_string() << "\n";
      return 1;
    }
  }

  auto listener = entk::serve::Listener::start(daemon, listen);
  if (!listener.ok()) {
    std::cerr << "entk-serve: " << listener.status().to_string() << "\n";
    return 2;
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::cout << "entk-serve: machine " << daemon.machine_name() << " ("
            << daemon.machine_cores() << " cores)";
  if (!listener.value()->unix_path().empty()) {
    std::cout << ", socket " << listener.value()->unix_path();
  }
  if (listener.value()->tcp_port() >= 0) {
    std::cout << ", port " << listener.value()->tcp_port();
  }
  std::cout << std::endl;  // flush: scripts wait for this line

  // The drive loop owns this thread; a watcher maps process signals
  // onto the service's own shutdown path.
  std::thread watcher([&daemon] {
    while (!daemon.shutting_down()) {
      if (g_stop_requested.load(std::memory_order_relaxed)) {
        daemon.shutdown();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  daemon.run();
  watcher.join();
  listener.value()->stop();

  std::cout << daemon.handle_line("{\"verb\":\"STATS\"}") << std::endl;
  return 0;
}
