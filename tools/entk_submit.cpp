// entk-submit: command-line client for an entk-serve daemon.
//
//   entk-submit [--socket path | --port N [--host 127.0.0.1]] <verb> ...
//
//   verbs:
//     submit <workload.entk> --tenant <name> [--name label]
//            [--wait] [--id-only]
//     status <id>
//     cancel <id>
//     results <id>
//     stats
//     shutdown
//
// Speaks one newline-delimited JSON request per line and prints the
// reply line to stdout. `submit --wait` polls STATUS until the
// workload settles. Exit codes: 0 ok (submit --wait: workload DONE),
// 1 usage error, 2 connect/protocol failure, 3 request refused or
// workload failed/cancelled.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace {

using entk::serve::Json;

void print_usage() {
  std::cerr
      << "usage: entk-submit [--socket path | --port n [--host h]] "
         "<verb> ...\n"
         "verbs:\n"
         "  submit <file> --tenant <name> [--name label] [--wait]\n"
         "         [--id-only]\n"
         "  status <id> | cancel <id> | results <id> | stats | "
         "shutdown\n";
}

int connect_unix(const std::string& path) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One request, one reply. Returns false on transport failure.
bool round_trip(int fd, const std::string& request, std::string& reply) {
  const std::string framed = request + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  reply.clear();
  char c = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (c == '\n') return true;
    reply.push_back(c);
  }
}

/// ok:false replies exit 3; malformed replies exit 2.
int reply_exit_code(const std::string& reply) {
  auto parsed = Json::parse(reply);
  if (!parsed.ok() || !parsed.value().is_object()) return 2;
  const Json* ok = parsed.value().find("ok");
  return (ok != nullptr && ok->as_bool()) ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;
  std::vector<std::string> positional;
  std::string tenant;
  std::string label;
  bool wait = false;
  bool id_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "entk-submit: " << flag << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--socket") {
      socket_path = next("--socket");
    } else if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--tenant") {
      tenant = next("--tenant");
    } else if (arg == "--name") {
      label = next("--name");
    } else if (arg == "--wait") {
      wait = true;
    } else if (arg == "--id-only") {
      id_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "entk-submit: unknown option " << arg << "\n";
      return 1;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    print_usage();
    return 1;
  }
  if (socket_path.empty() && port < 0) {
    socket_path = "entk-serve.sock";
  }

  const int fd = socket_path.empty() ? connect_tcp(host, port)
                                     : connect_unix(socket_path);
  if (fd < 0) {
    std::cerr << "entk-submit: cannot connect to "
              << (socket_path.empty()
                      ? host + ":" + std::to_string(port)
                      : socket_path)
              << "\n";
    return 2;
  }

  const std::string& verb = positional[0];
  std::string request;
  if (verb == "submit") {
    if (positional.size() != 2 || tenant.empty()) {
      std::cerr << "entk-submit: submit needs a workload file and "
                   "--tenant\n";
      ::close(fd);
      return 1;
    }
    std::ifstream in(positional[1]);
    if (!in) {
      std::cerr << "entk-submit: cannot read " << positional[1] << "\n";
      ::close(fd);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Json body = Json::object();
    body.set("verb", Json::string("SUBMIT"));
    body.set("tenant", Json::string(tenant));
    if (!label.empty()) body.set("name", Json::string(label));
    body.set("workload", Json::string(text.str()));
    request = body.dump();
  } else if (verb == "status" || verb == "cancel" || verb == "results") {
    if (positional.size() != 2) {
      std::cerr << "entk-submit: " << verb << " needs an id\n";
      ::close(fd);
      return 1;
    }
    Json body = Json::object();
    std::string wire = verb;
    for (char& c : wire) c = static_cast<char>(::toupper(c));
    body.set("verb", Json::string(wire));
    body.set("id", Json::number(std::atof(positional[1].c_str())));
    request = body.dump();
  } else if (verb == "stats" || verb == "shutdown") {
    Json body = Json::object();
    body.set("verb",
             Json::string(verb == "stats" ? "STATS" : "SHUTDOWN"));
    request = body.dump();
  } else {
    std::cerr << "entk-submit: unknown verb " << verb << "\n";
    ::close(fd);
    return 1;
  }

  std::string reply;
  if (!round_trip(fd, request, reply)) {
    std::cerr << "entk-submit: connection failed\n";
    ::close(fd);
    return 2;
  }

  if (verb != "submit" || (!wait && !id_only)) {
    std::cout << reply << std::endl;
    ::close(fd);
    return reply_exit_code(reply);
  }

  // submit --wait / --id-only: pull the id out of the reply.
  auto parsed = Json::parse(reply);
  if (!parsed.ok() || !parsed.value().is_object()) {
    std::cout << reply << std::endl;
    ::close(fd);
    return 2;
  }
  const Json* ok = parsed.value().find("ok");
  const Json* id = parsed.value().find("id");
  if (ok == nullptr || !ok->as_bool() || id == nullptr) {
    std::cout << reply << std::endl;
    ::close(fd);
    return 3;
  }
  if (id_only) {
    std::cout << static_cast<std::uint64_t>(id->as_number())
              << std::endl;
    if (!wait) {
      ::close(fd);
      return 0;
    }
  }

  Json poll_request = Json::object();
  poll_request.set("verb", Json::string("STATUS"));
  poll_request.set("id", *id);
  const std::string poll_line = poll_request.dump();
  for (;;) {
    if (!round_trip(fd, poll_line, reply)) {
      std::cerr << "entk-submit: connection lost while waiting\n";
      ::close(fd);
      return 2;
    }
    auto snapshot = Json::parse(reply);
    if (!snapshot.ok() || !snapshot.value().is_object()) {
      std::cout << reply << std::endl;
      ::close(fd);
      return 2;
    }
    const Json* state = snapshot.value().find("state");
    const std::string name =
        state != nullptr ? state->as_string() : std::string();
    if (name == "DONE" || name == "FAILED" || name == "CANCELLED") {
      if (!id_only) std::cout << reply << std::endl;
      ::close(fd);
      return name == "DONE" ? 0 : 3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}
