#!/usr/bin/env bash
# End-to-end smoke of the entk-serve daemon.
#
#   tools/serve_e2e.sh [build-dir]    (default build-dev)
#
# Starts the daemon on a unix socket with three tenants, drives the
# whole verb set through entk-submit from two of them, cancels a
# deliberately-throttled workload mid-run from the third, and shuts
# the daemon down cleanly. Every step checks the client exit code
# (0 ok / 3 refused-or-cancelled per entk-submit's contract) and the
# daemon must exit 0. No sleeps on the happy path: the script polls
# the daemon's own replies.
set -euo pipefail

BUILD="${1:-build-dev}"
SERVE="$BUILD/tools/entk-serve"
SUBMIT="$BUILD/tools/entk-submit"
for tool in "$SERVE" "$SUBMIT"; do
  if [[ ! -x "$tool" ]]; then
    echo "serve_e2e: missing $tool (build the tools target first)" >&2
    exit 2
  fi
done

WORK="$(mktemp -d)"
SOCK="$WORK/entk-serve.sock"
LOG="$WORK/serve.log"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# carol's 1-unit in-flight cap turns her bag into a long trickle, so
# the cancel below deterministically lands while it is RUNNING.
"$SERVE" --socket "$SOCK" --machine xsede.comet \
  --tenant alice=1 --tenant bob=2 --tenant carol=1:2:1 \
  >"$LOG" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  grep -q "entk-serve: machine" "$LOG" 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || {
    echo "serve_e2e: daemon died during startup:" >&2
    cat "$LOG" >&2
    exit 2
  }
  sleep 0.1
done
grep -q "entk-serve: machine" "$LOG" || {
  echo "serve_e2e: daemon never announced startup" >&2
  exit 2
}
echo "serve_e2e: daemon up on $SOCK"

# A throttled bag for carol: big enough that 1-unit-at-a-time dispatch
# cannot finish before the cancel arrives.
cat >"$WORK/trickle.entk" <<'EOF'
backend  = sim
machine  = xsede.comet
cores    = 1
runtime  = 360000
pattern  = bag
tasks    = 20000

[task]
kernel   = misc.sleep
duration = 1
EOF

# Two tenants run the shipped example to completion.
"$SUBMIT" --socket "$SOCK" submit examples/bag.entk \
  --tenant alice --name e2e-alice --wait
echo "serve_e2e: alice's workload DONE"
"$SUBMIT" --socket "$SOCK" submit examples/bag.entk \
  --tenant bob --name e2e-bob --wait
echo "serve_e2e: bob's workload DONE"

# Third tenant: submit the trickle, wait for RUNNING, cancel mid-run.
CAROL_ID="$("$SUBMIT" --socket "$SOCK" submit "$WORK/trickle.entk" \
  --tenant carol --name e2e-carol --id-only)"
echo "serve_e2e: carol's workload id=$CAROL_ID"
for _ in $(seq 1 200); do
  "$SUBMIT" --socket "$SOCK" status "$CAROL_ID" | grep -q '"RUNNING"' &&
    break
  sleep 0.05
done
"$SUBMIT" --socket "$SOCK" status "$CAROL_ID" | grep -q '"RUNNING"' || {
  echo "serve_e2e: carol's workload never reached RUNNING" >&2
  exit 2
}
"$SUBMIT" --socket "$SOCK" cancel "$CAROL_ID"
for _ in $(seq 1 200); do
  "$SUBMIT" --socket "$SOCK" status "$CAROL_ID" | grep -q '"CANCELLED"' &&
    break
  sleep 0.05
done
"$SUBMIT" --socket "$SOCK" status "$CAROL_ID" | grep -q '"CANCELLED"' || {
  echo "serve_e2e: cancel never settled" >&2
  exit 2
}
echo "serve_e2e: carol's workload CANCELLED mid-run"

# Terminal RESULTS carries the cancelled outcome; a bogus id is
# refused at the client (exit 3).
"$SUBMIT" --socket "$SOCK" results "$CAROL_ID" | grep -q 'cancelled' || {
  echo "serve_e2e: results of the cancelled workload lacks the" \
    "cancelled outcome" >&2
  exit 2
}
set +e
"$SUBMIT" --socket "$SOCK" results 999999 >/dev/null 2>&1
RESULTS_RC=$?
set -e
if [[ "$RESULTS_RC" -ne 3 ]]; then
  echo "serve_e2e: results of an unknown id exited" \
    "$RESULTS_RC, want 3" >&2
  exit 2
fi

STATS="$("$SUBMIT" --socket "$SOCK" stats)"
echo "serve_e2e: stats: $STATS"
for needle in '"completed":2' '"cancelled":1' '"rejected":0'; do
  if ! grep -q "$needle" <<<"$STATS"; then
    echo "serve_e2e: stats missing $needle" >&2
    exit 2
  fi
done

"$SUBMIT" --socket "$SOCK" shutdown
wait "$DAEMON_PID"
DAEMON_RC=$?
DAEMON_PID=""
if [[ "$DAEMON_RC" -ne 0 ]]; then
  echo "serve_e2e: daemon exited $DAEMON_RC, want 0" >&2
  cat "$LOG" >&2
  exit 2
fi
echo "serve_e2e: clean shutdown, all checks passed"
